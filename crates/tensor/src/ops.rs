//! Numerically careful tensor operations used by losses and metrics.

use crate::tensor::Tensor;

/// Row-wise softmax of a 2-D tensor, computed with the max-subtraction trick.
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
///
/// # Examples
///
/// ```
/// use blockfed_tensor::{ops::softmax_rows, Tensor};
///
/// let logits = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2]);
/// let p = softmax_rows(&logits);
/// assert!((p.get(&[0, 0]) - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax_rows requires a 2-D tensor");
    let (rows, cols) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    if rows == 0 || cols == 0 {
        return out;
    }
    // Rows are independent, so the normalization parallelizes row-chunked
    // with results identical at any worker count.
    let kernel = |_off: usize, chunk: &mut [f32]| {
        for row in chunk.chunks_exact_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                denom += *v;
            }
            if denom > 0.0 {
                for v in row.iter_mut() {
                    *v /= denom;
                }
            } else {
                let uniform = 1.0 / cols as f32;
                for v in row.iter_mut() {
                    *v = uniform;
                }
            }
        }
    };
    if blockfed_compute::worth_parallelizing(rows * cols) {
        blockfed_compute::par_chunks_mut(out.as_mut_slice(), cols, kernel);
    } else {
        kernel(0, out.as_mut_slice());
    }
    out
}

/// Row-wise log-softmax (softmax in log space; used by cross-entropy).
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "log_softmax_rows requires a 2-D tensor");
    let (rows, cols) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    if rows == 0 || cols == 0 {
        return out;
    }
    let kernel = |_off: usize, chunk: &mut [f32]| {
        for row in chunk.chunks_exact_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_denom = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= log_denom;
            }
        }
    };
    if blockfed_compute::worth_parallelizing(rows * cols) {
        blockfed_compute::par_chunks_mut(out.as_mut_slice(), cols, kernel);
    } else {
        kernel(0, out.as_mut_slice());
    }
    out
}

/// Applies a pure elementwise function in parallel chunks (each element's
/// value depends only on the corresponding inputs, so any chunking yields
/// identical results).
fn elementwise(src: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = src.to_vec();
    if blockfed_compute::worth_parallelizing(out.len()) {
        blockfed_compute::par_chunks_mut(&mut out, 1, |_off, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    } else {
        for v in &mut out {
            *v = f(*v);
        }
    }
    out
}

/// Rectified linear unit, elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    Tensor::from_vec(elementwise(x.as_slice(), |v| v.max(0.0)), x.shape())
}

/// Gradient mask of ReLU: passes `grad` where the forward input was positive.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relu_backward(grad: &Tensor, input: &Tensor) -> Tensor {
    assert_eq!(grad.shape(), input.shape(), "shape mismatch");
    let iv = input.as_slice();
    let mut out = grad.as_slice().to_vec();
    let kernel = |off: usize, chunk: &mut [f32]| {
        for (li, g) in chunk.iter_mut().enumerate() {
            *g = if iv[off + li] > 0.0 { *g } else { 0.0 };
        }
    };
    if blockfed_compute::worth_parallelizing(out.len()) {
        blockfed_compute::par_chunks_mut(&mut out, 1, kernel);
    } else if !out.is_empty() {
        kernel(0, &mut out);
    }
    Tensor::from_vec(out, grad.shape())
}

/// Clamps every element into `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn clip(x: &Tensor, lo: f32, hi: f32) -> Tensor {
    assert!(lo <= hi, "clip bounds inverted");
    Tensor::from_vec(elementwise(x.as_slice(), |v| v.clamp(lo, hi)), x.shape())
}

/// Fraction of rows of `predictions` (2-D logits or probabilities) whose argmax
/// equals the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the row count.
pub fn accuracy(predictions: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(predictions.shape()[0], labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = predictions.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = a.map(|v| v + 100.0);
        assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-6);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]);
        let p = softmax_rows(&logits);
        assert!(p.all_finite());
        assert!((p.get(&[0, 0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0, 0.1, 0.2], &[2, 3]);
        let a = log_softmax_rows(&logits);
        let b = softmax_rows(&logits).map(|v| v.ln());
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
        let g = Tensor::from_vec(vec![5.0, 5.0, 5.0], &[3]);
        assert_eq!(relu_backward(&g, &x).as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn clip_bounds() {
        let x = Tensor::from_vec(vec![-10.0, 0.5, 10.0], &[3]);
        assert_eq!(clip(&x, -1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "clip bounds inverted")]
    fn clip_rejects_inverted_bounds() {
        let _ = clip(&Tensor::zeros(&[1]), 1.0, -1.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let preds = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert!((accuracy(&preds, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }
}
