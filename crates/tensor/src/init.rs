//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Uniform initialization in `[-limit, limit]`.
///
/// # Panics
///
/// Panics if `limit` is not positive and finite.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], limit: f32) -> Tensor {
    assert!(limit > 0.0 && limit.is_finite(), "limit must be positive");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-limit..=limit)).collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a dense layer with the given fan-in
/// and fan-out.
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, limit)
}

/// He/Kaiming initialization (normal, std `sqrt(2/fan_in)`), suited to ReLU nets.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| gaussian(rng) * std).collect();
    Tensor::from_vec(data, shape)
}

/// A standard-normal sample via Box–Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[100], 0.5);
        assert!(t.as_slice().iter().all(|&v| (-0.5..=0.5).contains(&v)));
        assert!(t.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = xavier_uniform(&mut rng, &[1000], 10_000, 10_000);
        let narrow = xavier_uniform(&mut rng, &[1000], 4, 4);
        let max_wide = wide.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let max_narrow = narrow
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max_wide < max_narrow);
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = he_normal(&mut rng, &[20_000], 50);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.numel() as f32;
        let expected = 2.0 / 50.0;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(9), &[8], 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(9), &[8], 1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn uniform_rejects_bad_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform(&mut rng, &[1], 0.0);
    }
}
