//! Dense `f32` tensor math for the `blockfed` neural-network stack.
//!
//! Provides the [`Tensor`] type (row-major, shape-checked), matrix
//! multiplication kernels tuned for dense-layer forward/backward passes,
//! im2col convolution, weight initializers, and the numerically careful
//! softmax/accuracy operations the federated-learning evaluation relies on.
//!
//! # Examples
//!
//! ```
//! use blockfed_tensor::{matmul, ops::softmax_rows, Tensor};
//!
//! let x = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
//! let w = Tensor::from_vec(vec![0.5, -0.5, 1.0, 2.0], &[2, 2]);
//! let logits = matmul(&x, &w);
//! let probs = softmax_rows(&logits);
//! assert!((probs.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod tensor;

pub use conv::{conv2d_forward, global_avg_pool, im2col, Conv2dSpec};
pub use matmul::{matmul, matmul_at, matmul_bt};
pub use tensor::Tensor;
