//! Matrix multiplication kernels.
//!
//! Three variants cover forward and backward passes of dense layers without
//! materializing transposes: `A·B`, `A·Bᵀ` and `Aᵀ·B`.
//!
//! Each public kernel is cache-blocked over the shared dimension and
//! row-parallel over [`blockfed_compute`]: output rows are split into one
//! contiguous chunk per worker, and within a row every output element
//! accumulates its products in exactly the same (ascending-`k`) order as the
//! scalar kernels retained in [`reference`]. Because f32 addition happens in
//! an identical order, the parallel kernels are **bit-identical** to the
//! reference at every thread count — enforced by tests here and in
//! `tests/parallel_equivalence.rs`.

use crate::tensor::Tensor;

/// Cache block length along the shared (`k`) dimension for the
/// accumulate-into-rows kernels (`A·B`, `Aᵀ·B`): a `K_BLOCK × n` slab of `B`
/// stays cache-resident while a worker sweeps its output rows.
const K_BLOCK: usize = 512;

/// Cache block width over `B`'s rows for the dot-product kernel (`A·Bᵀ`): a
/// `J_BLOCK × k` slab of `B` stays cache-resident while a worker sweeps its
/// output rows.
const J_BLOCK: usize = 64;

/// Scalar reference kernels: the original single-threaded implementations,
/// kept as the ground truth the parallel kernels must reproduce bit-for-bit.
pub mod reference {
    use crate::tensor::Tensor;

    /// Scalar reference for [`matmul`](super::matmul).
    ///
    /// # Panics
    ///
    /// Panics if either input is not 2-D or the inner dimensions disagree.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let (k2, n) = (b.shape()[0], b.shape()[1]);
        assert_eq!(k, k2, "inner dimensions disagree: {k} vs {k2}");
        let av = a.as_slice();
        let bv = b.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = av[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &bv[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bval) in orow.iter_mut().zip(brow) {
                    *o += aip * bval;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Scalar reference for [`matmul_bt`](super::matmul_bt).
    ///
    /// # Panics
    ///
    /// Panics if either input is not 2-D or the shared dimension disagrees.
    pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.ndim(), 2, "matmul_bt lhs must be 2-D");
        assert_eq!(b.ndim(), 2, "matmul_bt rhs must be 2-D");
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let (n, k2) = (b.shape()[0], b.shape()[1]);
        assert_eq!(k, k2, "shared dimensions disagree: {k} vs {k2}");
        let av = a.as_slice();
        let bv = b.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &av[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &bv[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Scalar reference for [`matmul_at`](super::matmul_at).
    ///
    /// # Panics
    ///
    /// Panics if either input is not 2-D or the leading dimensions disagree.
    pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.ndim(), 2, "matmul_at lhs must be 2-D");
        assert_eq!(b.ndim(), 2, "matmul_at rhs must be 2-D");
        let (k, m) = (a.shape()[0], a.shape()[1]);
        let (k2, n) = (b.shape()[0], b.shape()[1]);
        assert_eq!(k, k2, "leading dimensions disagree: {k} vs {k2}");
        let av = a.as_slice();
        let bv = b.as_slice();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &av[p * m..(p + 1) * m];
            let brow = &bv[p * n..(p + 1) * n];
            for i in 0..m {
                let aval = arow[i];
                if aval == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bval) in orow.iter_mut().zip(brow) {
                    *o += aval * bval;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

/// `C = A · B` for 2-D tensors `A: [m, k]`, `B: [k, n]`.
///
/// Cache-blocked over `k` and parallel over output rows; bit-identical to
/// [`reference::matmul`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use blockfed_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions disagree: {k} vs {k2}");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    if n > 0 && m > 0 {
        let kernel = |row0: usize, rows: &mut [f32]| {
            let first_row = row0 / n;
            for kc in (0..k).step_by(K_BLOCK) {
                let kend = (kc + K_BLOCK).min(k);
                for (li, orow) in rows.chunks_exact_mut(n).enumerate() {
                    let i = first_row + li;
                    for p in kc..kend {
                        let aip = av[i * k + p];
                        if aip == 0.0 {
                            continue;
                        }
                        let brow = &bv[p * n..(p + 1) * n];
                        for (o, &bval) in orow.iter_mut().zip(brow) {
                            *o += aip * bval;
                        }
                    }
                }
            }
        };
        if blockfed_compute::worth_parallelizing(m * n * k) {
            blockfed_compute::par_chunks_mut(&mut out, n, kernel);
        } else {
            kernel(0, &mut out);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (dense-layer forward with
/// weights stored `[out, in]`).
///
/// Cache-blocked over `k` and parallel over output rows; bit-identical to
/// [`reference::matmul_bt`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the shared dimension disagrees.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_bt lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_bt rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "shared dimensions disagree: {k} vs {k2}");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    if n > 0 && m > 0 {
        let kernel = |row0: usize, rows: &mut [f32]| {
            let first_row = row0 / n;
            // Block over B's rows: each J_BLOCK × k slab of B is swept once
            // per output-row chunk while cache-hot. Every output element is
            // still one full-length ascending-k dot product, so the result
            // is bit-identical to the reference.
            for jc in (0..n).step_by(J_BLOCK) {
                let jend = (jc + J_BLOCK).min(n);
                for (li, orow) in rows.chunks_exact_mut(n).enumerate() {
                    let i = first_row + li;
                    let arow = &av[i * k..(i + 1) * k];
                    for (j, o) in orow[jc..jend].iter_mut().enumerate() {
                        let brow = &bv[(jc + j) * k..(jc + j + 1) * k];
                        let mut acc = 0.0f32;
                        for (x, y) in arow.iter().zip(brow) {
                            acc += x * y;
                        }
                        *o = acc;
                    }
                }
            }
        };
        if blockfed_compute::worth_parallelizing(m * n * k) {
            blockfed_compute::par_chunks_mut(&mut out, n, kernel);
        } else {
            kernel(0, &mut out);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (weight-gradient kernel).
///
/// Cache-blocked over `k` and parallel over output rows; bit-identical to
/// [`reference::matmul_at`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_at lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_at rhs must be 2-D");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "leading dimensions disagree: {k} vs {k2}");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    if n > 0 && m > 0 {
        let kernel = |row0: usize, rows: &mut [f32]| {
            let first_row = row0 / n;
            for kc in (0..k).step_by(K_BLOCK) {
                let kend = (kc + K_BLOCK).min(k);
                for (li, orow) in rows.chunks_exact_mut(n).enumerate() {
                    let i = first_row + li;
                    for p in kc..kend {
                        let aval = av[p * m + i];
                        if aval == 0.0 {
                            continue;
                        }
                        let brow = &bv[p * n..(p + 1) * n];
                        for (o, &bval) in orow.iter_mut().zip(brow) {
                            *o += aval * bval;
                        }
                    }
                }
            }
        };
        if blockfed_compute::worth_parallelizing(m * n * k) {
            blockfed_compute::par_chunks_mut(&mut out, n, kernel);
        } else {
            kernel(0, &mut out);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn small_known_product() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[2, 3]);
        let via_bt = matmul_bt(&a, &b);
        let via_t = matmul(&a, &b.transpose());
        assert!(via_bt.max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn at_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[3, 2]);
        let via_at = matmul_at(&a, &b);
        let via_t = matmul(&a.transpose(), &b);
        assert!(via_at.max_abs_diff(&via_t) < 1e-6);
    }

    #[test]
    fn associativity_on_random_like_data() {
        let a = t(
            &(0..12).map(|x| (x as f32) * 0.25 - 1.0).collect::<Vec<_>>(),
            &[3, 4],
        );
        let b = t(
            &(0..20).map(|x| (x as f32) * 0.1 - 1.0).collect::<Vec<_>>(),
            &[4, 5],
        );
        let c = t(
            &(0..10).map(|x| (x as f32) * 0.3 - 1.5).collect::<Vec<_>>(),
            &[5, 2],
        );
        let lhs = matmul(&matmul(&a, &b), &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_dims_panic() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    #[should_panic(expected = "must be 2-D")]
    fn non_2d_rejected() {
        let _ = matmul(&Tensor::zeros(&[2]), &Tensor::zeros(&[2, 2]));
    }

    #[test]
    fn zero_dimension_edge_cases() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[0, 2]);
        assert!(c.is_empty());
    }

    fn pseudo_tensor(shape: &[usize], salt: u64) -> Tensor {
        // Cheap deterministic pseudo-random data without an RNG dependency.
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let mut x = (i as u64)
                    .wrapping_add(salt)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 29;
                ((x % 2000) as f32 - 1000.0) / 250.0
            })
            .collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn parallel_kernels_bit_match_reference_across_thread_counts() {
        // Shapes straddling the parallel threshold and tile boundaries,
        // including 1×N, N×1 and non-multiple-of-K_BLOCK dims.
        let shapes: &[(usize, usize, usize)] = &[
            (1, 7, 5),
            (5, 1, 3),
            (3, 300, 2),
            (64, 257, 33),
            (33, 512, 17),
            (128, 80, 96),
        ];
        for &(m, k, n) in shapes {
            let a = pseudo_tensor(&[m, k], 1);
            let b = pseudo_tensor(&[k, n], 2);
            let bt = pseudo_tensor(&[n, k], 3);
            let at = pseudo_tensor(&[k, m], 4);
            let want = reference::matmul(&a, &b);
            let want_bt = reference::matmul_bt(&a, &bt);
            let want_at = reference::matmul_at(&at, &b);
            for threads in [1usize, 2, 8] {
                blockfed_compute::set_threads(threads);
                assert_eq!(matmul(&a, &b), want, "matmul {m}x{k}x{n} @{threads}");
                assert_eq!(
                    matmul_bt(&a, &bt),
                    want_bt,
                    "matmul_bt {m}x{k}x{n} @{threads}"
                );
                assert_eq!(
                    matmul_at(&at, &b),
                    want_at,
                    "matmul_at {m}x{k}x{n} @{threads}"
                );
            }
            blockfed_compute::set_threads(0);
        }
    }
}
