//! 2-D convolution via im2col, plus average pooling.
//!
//! Used by the image-like models in `blockfed-nn`. Layout is NCHW
//! (`[batch, channels, height, width]`) flattened row-major.

use crate::matmul::matmul_bt;
use crate::tensor::Tensor;

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let eff_h = h + 2 * self.padding;
        let eff_w = w + 2 * self.padding;
        assert!(
            eff_h >= self.kernel && eff_w >= self.kernel,
            "kernel {} larger than padded input {eff_h}x{eff_w}",
            self.kernel
        );
        (
            (eff_h - self.kernel) / self.stride + 1,
            (eff_w - self.kernel) / self.stride + 1,
        )
    }
}

/// Unfolds image patches into rows: input `[n, c, h, w]` becomes
/// `[n * oh * ow, c * k * k]`.
///
/// # Panics
///
/// Panics if the input is not 4-D or the channel count disagrees with `spec`.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Tensor {
    assert_eq!(input.ndim(), 4, "im2col requires NCHW input");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let (oh, ow) = spec.output_size(h, w);
    let k = spec.kernel;
    let cols = c * k * k;
    let mut out = vec![0.0f32; n * oh * ow * cols];
    let iv = input.as_slice();
    // Every output row is an independent patch copy, so rows parallelize
    // freely: chunk the row range across workers, identical at any count.
    let fill_rows = |row0: usize, rows: &mut [f32]| {
        let first_row = row0 / cols;
        for (li, patch) in rows.chunks_exact_mut(cols).enumerate() {
            let row = first_row + li;
            let img = row / (oh * ow);
            let oy = (row / ow) % oh;
            let ox = row % ow;
            for ch in 0..c {
                for ky in 0..k {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    for kx in 0..k {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        let dst = ch * k * k + ky * k + kx;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            let src = ((img * c + ch) * h + iy as usize) * w + ix as usize;
                            patch[dst] = iv[src];
                        }
                    }
                }
            }
        }
    };
    if cols > 0 && blockfed_compute::worth_parallelizing(out.len()) {
        blockfed_compute::par_chunks_mut(&mut out, cols, fill_rows);
    } else if cols > 0 {
        fill_rows(0, &mut out);
    }
    Tensor::from_vec(out, &[n * oh * ow, cols])
}

/// Convolution forward pass: weights `[out_channels, c*k*k]`, bias
/// `[out_channels]`, input `[n, c, h, w]` → output `[n, out_channels, oh, ow]`.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    spec: &Conv2dSpec,
) -> Tensor {
    let (n, h, w) = (input.shape()[0], input.shape()[2], input.shape()[3]);
    let (oh, ow) = spec.output_size(h, w);
    assert_eq!(
        weights.shape(),
        &[
            spec.out_channels,
            spec.in_channels * spec.kernel * spec.kernel
        ]
    );
    assert_eq!(bias.numel(), spec.out_channels, "bias length mismatch");
    let cols = im2col(input, spec); // [n*oh*ow, c*k*k]
    let prod = matmul_bt(&cols, weights); // [n*oh*ow, out_channels]
    let biased = prod.add_row_broadcast(bias);
    // Rearrange [n*oh*ow, oc] -> [n, oc, oh, ow]; each (img, channel) plane
    // is an independent gather, so planes parallelize across workers.
    let oc = spec.out_channels;
    let mut out = vec![0.0f32; n * oc * oh * ow];
    let bv = biased.as_slice();
    let plane = oh * ow;
    let gather = |plane0: usize, planes: &mut [f32]| {
        let first = plane0 / plane;
        for (li, dst) in planes.chunks_exact_mut(plane).enumerate() {
            let img = (first + li) / oc;
            let ch = (first + li) % oc;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (img * oh + oy) * ow + ox;
                    dst[oy * ow + ox] = bv[row * oc + ch];
                }
            }
        }
    };
    if plane > 0 && blockfed_compute::worth_parallelizing(out.len()) {
        blockfed_compute::par_chunks_mut(&mut out, plane, gather);
    } else if plane > 0 {
        gather(0, &mut out);
    }
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.ndim(), 4, "global_avg_pool requires NCHW input");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let hw = (h * w) as f32;
    let iv = input.as_slice();
    let mut out = vec![0.0f32; n * c];
    let pool = |off: usize, slots: &mut [f32]| {
        for (li, slot) in slots.iter_mut().enumerate() {
            let base = (off + li) * h * w;
            let s: f32 = iv[base..base + h * w].iter().sum();
            *slot = s / hw;
        }
    };
    if blockfed_compute::worth_parallelizing(n * c * h * w) && !out.is_empty() {
        blockfed_compute::par_chunks_mut(&mut out, 1, pool);
    } else if !out.is_empty() {
        pool(0, &mut out);
    }
    Tensor::from_vec(out, &[n, c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_math() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(spec.output_size(8, 8), (8, 8));
        let spec2 = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            padding: 0,
        };
        assert_eq!(spec2.output_size(7, 7), (3, 3));
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn kernel_too_big_panics() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        let _ = spec.output_size(3, 3);
    }

    #[test]
    fn im2col_identity_kernel_layout() {
        // 1 image, 1 channel, 3x3 input, 2x2 kernel, stride 1, no padding.
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let cols = im2col(&input, &spec);
        assert_eq!(cols.shape(), &[4, 4]);
        // First patch is the top-left 2x2 block.
        assert_eq!(cols.row(0), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(cols.row(3), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn conv_with_averaging_kernel() {
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let weights = Tensor::full(&[1, 4], 0.25);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weights, &bias, &spec);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[3.0, 4.0, 6.0, 7.0]);
    }

    #[test]
    fn conv_bias_is_added_per_channel() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 3,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let weights = Tensor::zeros(&[3, 1]);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = conv2d_forward(&input, &weights, &bias, &spec);
        assert_eq!(out.shape(), &[1, 3, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(out.get(&[0, 1, 1, 1]), 2.0);
        assert_eq!(out.get(&[0, 2, 0, 1]), 3.0);
    }

    #[test]
    fn padding_adds_zeros() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let weights = Tensor::ones(&[1, 9]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weights, &bias, &spec);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        // Every output sums the 4 ones (corners of the padded window).
        assert_eq!(out.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let input = Tensor::from_vec(
            vec![1.0, 3.0, 5.0, 7.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let out = global_avg_pool(&input);
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.as_slice(), &[4.0, 25.0]);
    }

    #[test]
    fn batch_dimension_is_respected() {
        let mut data = vec![0.0f32; 2 * 2 * 2];
        data[4..].copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        let input = Tensor::from_vec(data, &[2, 1, 2, 2]);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let weights = Tensor::ones(&[1, 4]);
        let bias = Tensor::zeros(&[1]);
        let out = conv2d_forward(&input, &weights, &bias, &spec);
        assert_eq!(out.shape(), &[2, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[0.0, 4.0]);
    }
}
