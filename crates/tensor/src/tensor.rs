//! The dense row-major `f32` tensor.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use blockfed_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Wraps a flat vector with a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} != shape volume {}",
            data.len(),
            expected
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} of size {dim}"
            );
            flat = flat * dim + ix;
        }
        flat
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let i = self.flat_index(idx);
        self.data[i] = value;
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape volume mismatch");
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// A view of row `r` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        assert!(r < self.shape[0], "row {r} out of range");
        &self.data[r * cols..(r + 1) * cols]
    }

    /// A mutable view of row `r` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.ndim(), 2, "row_mut() requires a 2-D tensor");
        let cols = self.shape[1];
        assert!(r < self.shape[0], "row {r} out of range");
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies a set of rows of a 2-D tensor into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if not 2-D or any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows() requires a 2-D tensor");
        let cols = self.shape[1];
        let mut out = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            out.extend_from_slice(self.row(i));
        }
        Tensor::from_vec(out, &[indices.len(), cols])
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other * factor` (the axpy kernel under FedAvg and SGD).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, factor: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
    }

    /// Adds a 1-D bias vector to every row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D or the bias length differs from the column count.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "add_row_broadcast() requires a 2-D tensor");
        assert_eq!(bias.numel(), self.shape[1], "bias length mismatch");
        let mut out = self.clone();
        let cols = self.shape[1];
        for r in 0..self.shape[0] {
            for c in 0..cols {
                out.data[r * cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column sums of a 2-D tensor (used for bias gradients).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_rows() requires a 2-D tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows() requires a 2-D tensor");
        assert!(self.shape[1] > 0, "argmax over zero columns");
        (0..self.shape[0])
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose() requires a 2-D tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols, rows])
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements, mean {:.4}]", self.numel(), self.mean())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.ndim(), 2);
        assert!(Tensor::zeros(&[0]).is_empty());
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2], 2.5).as_slice(), &[2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_wrong_volume() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
        t.set(&[1, 0], 9.0);
        assert_eq!(t.get(&[1, 0]), 9.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        t.row_mut(0)[1] = 8.0;
        assert_eq!(t.get(&[0, 1]), 8.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_rejects_out_of_range() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).as_slice(), &[9.0, 18.0]);
        assert_eq!(a.mul(&b).as_slice(), &[10.0, 40.0]);
        assert_eq!(a.scale(3.0).as_slice(), &[3.0, 6.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[21.0, 42.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let bias = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let y = x.add_row_broadcast(&bias);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
        assert!((t.norm_sq() - 30.0).abs() < 1e-6);
        assert!((t.norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max_on_tie() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.5, 0.2, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(t.transpose().shape(), &[3, 2]);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().get(&[2, 1]), t.get(&[1, 2]));
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[4]);
    }

    #[test]
    #[should_panic(expected = "reshape volume mismatch")]
    fn reshape_rejects_volume_change() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[3]);
    }

    #[test]
    fn gather_rows_copies_selected() {
        let t = Tensor::from_vec((0..9).map(|x| x as f32).collect(), &[3, 3]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.shape(), &[2, 3]);
        assert_eq!(g.row(0), &[6.0, 7.0, 8.0]);
        assert_eq!(g.row(1), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn finiteness_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut b = a.clone();
        assert!(a.all_finite());
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.as_mut_slice()[1] = 5.0;
        assert_eq!(a.max_abs_diff(&b), 3.0);
        b.as_mut_slice()[0] = f32::NAN;
        assert!(!b.all_finite());
    }

    #[test]
    fn debug_is_nonempty() {
        let small = Tensor::ones(&[2]);
        assert!(format!("{small:?}").contains("Tensor"));
        let big = Tensor::ones(&[100]);
        assert!(format!("{big:?}").contains("elements"));
    }

    #[test]
    fn map_variants() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        assert_eq!(t.map(|x| x.max(0.0)).as_slice(), &[0.0, 2.0]);
        let mut u = t.clone();
        u.map_inplace(|x| x * 2.0);
        assert_eq!(u.as_slice(), &[-2.0, 4.0]);
        assert_eq!(t.into_vec(), vec![-1.0, 2.0]);
    }
}
