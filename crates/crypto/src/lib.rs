//! Cryptographic primitives for the `blockfed` workspace, implemented from scratch.
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (the hash under everything else),
//! * [`hash`] — fixed-size [`H256`] / [`H160`] digest and address newtypes,
//! * [`u256`] — 256-bit integers used for proof-of-work targets and field math,
//! * [`secp`] — secp256k1 group arithmetic,
//! * [`keys`] — Schnorr signatures providing the paper's non-repudiation property,
//! * [`merkle`] — binary merkle trees for block transaction commitments.
//!
//! # Examples
//!
//! ```
//! use blockfed_crypto::{sha256::sha256, KeyPair};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let kp = KeyPair::generate(&mut rng);
//! let digest = sha256(b"local model, round 3");
//! let sig = kp.sign(digest.as_bytes());
//! assert!(kp.public().verify(digest.as_bytes(), &sig).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod keys;
pub mod merkle;
pub mod secp;
pub mod sha256;
pub mod u256;

pub use hash::{H160, H256};
pub use keys::{KeyPair, PublicKey, Signature, SignatureError};
pub use merkle::{merkle_root, MerkleProof, MerkleTree};
pub use u256::{U256, U512};
