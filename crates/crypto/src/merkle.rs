//! Binary merkle trees over SHA-256.
//!
//! Blocks commit to their transaction set with a merkle root; light verification
//! of "model X was included in block B" uses [`MerkleProof`].

use serde::{Deserialize, Serialize};

use crate::hash::H256;
use crate::sha256::sha256_pair;

/// A full merkle tree, retaining all levels so proofs can be extracted.
///
/// Odd nodes at any level are paired with themselves (Bitcoin-style duplication).
///
/// # Examples
///
/// ```
/// use blockfed_crypto::merkle::MerkleTree;
/// use blockfed_crypto::sha256::sha256;
///
/// let leaves = vec![sha256(b"a"), sha256(b"b"), sha256(b"c")];
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let proof = tree.proof(2).unwrap();
/// assert!(proof.verify(&leaves[2], &tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    levels: Vec<Vec<H256>>,
}

/// An inclusion proof: the sibling path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Sibling hashes from leaf level upward, with the side the sibling sits on.
    steps: Vec<ProofStep>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ProofStep {
    sibling: H256,
    sibling_on_left: bool,
}

impl MerkleTree {
    /// Builds a tree over the given leaf hashes.
    ///
    /// An empty leaf set produces the all-zero root, distinguishing it from any
    /// real tree.
    pub fn from_leaves(leaves: Vec<H256>) -> Self {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![]],
            };
        }
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(sha256_pair(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment (all-zero for an empty tree).
    pub fn root(&self) -> H256 {
        self.levels
            .last()
            .unwrap()
            .first()
            .copied()
            .unwrap_or_else(H256::zero)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The inclusion proof for leaf `index`, or `None` if out of range.
    pub fn proof(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut steps = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_index = if i.is_multiple_of(2) { i + 1 } else { i - 1 };
            let sibling = *level.get(sibling_index).unwrap_or(&level[i]);
            steps.push(ProofStep {
                sibling,
                sibling_on_left: i % 2 == 1,
            });
            i /= 2;
        }
        Some(MerkleProof { steps })
    }
}

impl MerkleProof {
    /// Verifies that `leaf` hashes up to `root` along this proof.
    pub fn verify(&self, leaf: &H256, root: &H256) -> bool {
        let mut acc = *leaf;
        for step in &self.steps {
            acc = if step.sibling_on_left {
                sha256_pair(&step.sibling, &acc)
            } else {
                sha256_pair(&acc, &step.sibling)
            };
        }
        acc == *root
    }

    /// Proof length in tree levels.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the proof is empty (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Computes just the merkle root of a leaf list without retaining the tree.
pub fn merkle_root(leaves: &[H256]) -> H256 {
    MerkleTree::from_leaves(leaves.to_vec()).root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<H256> {
        (0..n)
            .map(|i| sha256(format!("leaf-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::from_leaves(vec![]);
        assert_eq!(tree.root(), H256::zero());
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.proof(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_the_leaf() {
        let l = sha256(b"only");
        let tree = MerkleTree::from_leaves(vec![l]);
        assert_eq!(tree.root(), l);
        let proof = tree.proof(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(&l, &tree.root()));
    }

    #[test]
    fn two_leaves_root_is_pair_hash() {
        let ls = leaves(2);
        let tree = MerkleTree::from_leaves(ls.clone());
        assert_eq!(tree.root(), sha256_pair(&ls[0], &ls[1]));
    }

    #[test]
    fn odd_leaf_duplication() {
        let ls = leaves(3);
        let tree = MerkleTree::from_leaves(ls.clone());
        let right = sha256_pair(&ls[2], &ls[2]);
        let left = sha256_pair(&ls[0], &ls[1]);
        assert_eq!(tree.root(), sha256_pair(&left, &right));
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let ls = leaves(n);
            let tree = MerkleTree::from_leaves(ls.clone());
            for (i, leaf) in ls.iter().enumerate() {
                let proof = tree.proof(i).unwrap();
                assert!(proof.verify(leaf, &tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let ls = leaves(8);
        let tree = MerkleTree::from_leaves(ls.clone());
        let proof = tree.proof(3).unwrap();
        assert!(!proof.verify(&ls[4], &tree.root()));
        assert!(!proof.verify(&ls[3], &sha256(b"wrong root")));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::from_leaves(leaves(4));
        assert!(tree.proof(4).is_none());
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let ls = leaves(6);
        let base = merkle_root(&ls);
        for i in 0..ls.len() {
            let mut modified = ls.clone();
            modified[i] = sha256(b"modified");
            assert_ne!(merkle_root(&modified), base, "leaf {i}");
        }
    }

    #[test]
    fn proof_len_is_log_depth() {
        let tree = MerkleTree::from_leaves(leaves(16));
        assert_eq!(tree.proof(0).unwrap().len(), 4);
        let tree9 = MerkleTree::from_leaves(leaves(9));
        assert_eq!(tree9.proof(8).unwrap().len(), 4);
    }
}
