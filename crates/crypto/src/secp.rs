//! secp256k1 elliptic-curve arithmetic, implemented from scratch on [`U256`].
//!
//! The curve is `y² = x³ + 7` over the prime field `GF(p)` with
//! `p = 2^256 − 2^32 − 977`. Points are manipulated in Jacobian coordinates so a
//! scalar multiplication needs only one field inversion. The group order `n`
//! is exposed for scalar arithmetic in the signature scheme ([`crate::keys`]).

use crate::u256::{U256, U512};

/// The field prime `p = 2^256 − 2^32 − 977`.
pub fn field_prime() -> U256 {
    U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f").unwrap()
}

/// The group order `n`.
pub fn group_order() -> U256 {
    U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141").unwrap()
}

/// The standard generator point `G`.
pub fn generator() -> Point {
    Point::Affine {
        x: U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
            .unwrap(),
        y: U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
            .unwrap(),
    }
}

/// `2^256 ≡ C (mod p)` with `C = 2^32 + 977`, which makes reduction cheap.
const C: u64 = 0x1_0000_03D1;

/// Reduces a 512-bit product modulo the field prime using the special form of `p`.
fn reduce_p(wide: U512) -> U256 {
    let p = field_prime();
    let (hi, lo) = wide.split_halves();
    // value ≡ hi*C + lo (mod p)
    let (t, t_carry) = hi.mul_u64_carry(C);
    let (sum, c1) = t.overflowing_add(lo);
    let extra = t_carry + u64::from(c1); // ≤ C + 1, tiny
    let add = U256::from_u128(u128::from(extra) * u128::from(C));
    let (mut r, c2) = sum.overflowing_add(add);
    if c2 {
        // One more wrap: + 2^256 ≡ + C.  r is tiny after wrapping, no overflow.
        r = r.wrapping_add(U256::from_u64(C));
    }
    while r >= p {
        r = r.wrapping_sub(p);
    }
    r
}

fn fmul(a: U256, b: U256) -> U256 {
    reduce_p(a.mul_wide(b))
}

fn fsq(a: U256) -> U256 {
    fmul(a, a)
}

fn fadd(a: U256, b: U256) -> U256 {
    a.add_mod(b, field_prime())
}

fn fsub(a: U256, b: U256) -> U256 {
    a.sub_mod(b, field_prime())
}

fn fneg(a: U256) -> U256 {
    if a.is_zero() {
        a
    } else {
        field_prime().wrapping_sub(a)
    }
}

/// Field inversion via Fermat's little theorem (`a^(p−2)`).
fn finv(a: U256) -> U256 {
    assert!(!a.is_zero(), "inversion of zero");
    let p = field_prime();
    let exp = p.wrapping_sub(U256::from_u64(2));
    let mut result = U256::ONE;
    let mut base = a;
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = fmul(result, base);
        }
        base = fsq(base);
    }
    result
}

/// A point on secp256k1, either the identity or an affine coordinate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Point {
    /// The identity element (point at infinity).
    Infinity,
    /// A finite point with affine coordinates.
    Affine {
        /// x coordinate.
        x: U256,
        /// y coordinate.
        y: U256,
    },
}

/// Internal Jacobian representation `(X, Y, Z)` with `x = X/Z²`, `y = Y/Z³`.
#[derive(Debug, Clone, Copy)]
struct Jacobian {
    x: U256,
    y: U256,
    z: U256,
}

impl Jacobian {
    const INFINITY: Jacobian = Jacobian {
        x: U256::ONE,
        y: U256::ONE,
        z: U256::ZERO,
    };

    fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    fn from_affine(p: Point) -> Jacobian {
        match p {
            Point::Infinity => Jacobian::INFINITY,
            Point::Affine { x, y } => Jacobian { x, y, z: U256::ONE },
        }
    }

    fn to_affine(self) -> Point {
        if self.is_infinity() {
            return Point::Infinity;
        }
        let zinv = finv(self.z);
        let zinv2 = fsq(zinv);
        let zinv3 = fmul(zinv2, zinv);
        Point::Affine {
            x: fmul(self.x, zinv2),
            y: fmul(self.y, zinv3),
        }
    }

    /// Point doubling (a = 0 curve).
    fn double(self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let y2 = fsq(self.y);
        let s = fmul(fmul(U256::from_u64(4), self.x), y2);
        let m = fmul(U256::from_u64(3), fsq(self.x));
        let x3 = fsub(fsq(m), fadd(s, s));
        let y3 = fsub(fmul(m, fsub(s, x3)), fmul(U256::from_u64(8), fsq(y2)));
        let z3 = fmul(fadd(self.y, self.y), self.z);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    fn add(self, other: Jacobian) -> Jacobian {
        if self.is_infinity() {
            return other;
        }
        if other.is_infinity() {
            return self;
        }
        let z1z1 = fsq(self.z);
        let z2z2 = fsq(other.z);
        let u1 = fmul(self.x, z2z2);
        let u2 = fmul(other.x, z1z1);
        let s1 = fmul(fmul(self.y, z2z2), other.z);
        let s2 = fmul(fmul(other.y, z1z1), self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = fsub(u2, u1);
        let r = fsub(s2, s1);
        let h2 = fsq(h);
        let h3 = fmul(h2, h);
        let u1h2 = fmul(u1, h2);
        let x3 = fsub(fsub(fsq(r), h3), fadd(u1h2, u1h2));
        let y3 = fsub(fmul(r, fsub(u1h2, x3)), fmul(s1, h3));
        let z3 = fmul(fmul(self.z, other.z), h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

impl Point {
    /// Whether this is the identity element.
    pub fn is_infinity(&self) -> bool {
        matches!(self, Point::Infinity)
    }

    /// The affine coordinates, or `None` for the identity.
    pub fn coordinates(&self) -> Option<(U256, U256)> {
        match self {
            Point::Infinity => None,
            Point::Affine { x, y } => Some((*x, *y)),
        }
    }

    /// Whether the point satisfies the curve equation `y² = x³ + 7`.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let lhs = fsq(*y);
                let rhs = fadd(fmul(fsq(*x), *x), U256::from_u64(7));
                lhs == rhs
            }
        }
    }

    /// Point addition.
    pub fn add(&self, other: &Point) -> Point {
        Jacobian::from_affine(*self)
            .add(Jacobian::from_affine(*other))
            .to_affine()
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        Jacobian::from_affine(*self).double().to_affine()
    }

    /// The additive inverse `(x, −y)`.
    pub fn negate(&self) -> Point {
        match self {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => Point::Affine { x: *x, y: fneg(*y) },
        }
    }

    /// Scalar multiplication `k·P` by double-and-add.
    pub fn mul_scalar(&self, k: U256) -> Point {
        if k.is_zero() || self.is_infinity() {
            return Point::Infinity;
        }
        let base = Jacobian::from_affine(*self);
        let mut acc = Jacobian::INFINITY;
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(base);
            }
        }
        acc.to_affine()
    }

    /// Serializes the point as 64 bytes (`x ‖ y` big-endian), or 64 zero bytes
    /// for the identity.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        if let Point::Affine { x, y } = self {
            out[..32].copy_from_slice(&x.to_be_bytes());
            out[32..].copy_from_slice(&y.to_be_bytes());
        }
        out
    }

    /// Deserializes a point from [`Point::to_bytes`] output, validating that it
    /// lies on the curve.
    ///
    /// # Errors
    ///
    /// Returns `None` if the coordinates are not on the curve.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Point> {
        if bytes.iter().all(|&b| b == 0) {
            return Some(Point::Infinity);
        }
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        let p = Point::Affine {
            x: U256::from_be_bytes(xb),
            y: U256::from_be_bytes(yb),
        };
        p.is_on_curve().then_some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn identity_laws() {
        let g = generator();
        assert_eq!(g.add(&Point::Infinity), g);
        assert_eq!(Point::Infinity.add(&g), g);
        assert_eq!(g.add(&g.negate()), Point::Infinity);
        assert!(Point::Infinity.is_on_curve());
    }

    #[test]
    fn doubling_matches_addition() {
        let g = generator();
        assert_eq!(g.double(), g.add(&g));
        let g2 = g.double();
        assert!(g2.is_on_curve());
        assert_ne!(g2, g);
    }

    #[test]
    fn scalar_multiplication_distributes() {
        let g = generator();
        // (a + b)G == aG + bG
        let a = U256::from_u64(123456789);
        let b = U256::from_u64(987654321);
        let lhs = g.mul_scalar(a.wrapping_add(b));
        let rhs = g.mul_scalar(a).add(&g.mul_scalar(b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn small_scalar_multiples_agree_with_repeated_addition() {
        let g = generator();
        let mut acc = Point::Infinity;
        for k in 1..=8u64 {
            acc = acc.add(&g);
            assert_eq!(g.mul_scalar(U256::from_u64(k)), acc, "k = {k}");
            assert!(acc.is_on_curve());
        }
    }

    #[test]
    fn order_times_generator_is_identity() {
        let g = generator();
        assert_eq!(g.mul_scalar(group_order()), Point::Infinity);
        // (n-1)G = -G
        let n_minus_1 = group_order().wrapping_sub(U256::ONE);
        assert_eq!(g.mul_scalar(n_minus_1), g.negate());
    }

    #[test]
    fn scalar_mul_associativity_via_composition() {
        // (ab)G == a(bG)
        let g = generator();
        let a = U256::from_u64(31337);
        let b = U256::from_u64(271828);
        let ab = a.mul_mod(b, group_order());
        assert_eq!(g.mul_scalar(ab), g.mul_scalar(b).mul_scalar(a));
    }

    #[test]
    fn point_serialization_roundtrip() {
        let p = generator().mul_scalar(U256::from_u64(42));
        let bytes = p.to_bytes();
        assert_eq!(Point::from_bytes(&bytes), Some(p));
        assert_eq!(Point::from_bytes(&[0u8; 64]), Some(Point::Infinity));
        // Corrupt a byte: no longer on the curve.
        let mut bad = bytes;
        bad[5] ^= 1;
        assert_eq!(Point::from_bytes(&bad), None);
    }

    #[test]
    fn reduce_p_agrees_with_generic_reduction() {
        let p = field_prime();
        let a = U256::from_hex("deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef")
            .unwrap();
        let b = U256::from_hex("cafebabecafebabecafebabecafebabecafebabecafebabecafebabecafebabe")
            .unwrap();
        let fast = fmul(a, b);
        let slow = a.mul_mod(b, p);
        assert_eq!(fast, slow);
    }

    #[test]
    fn field_inverse() {
        let a = U256::from_u64(1234567);
        assert_eq!(fmul(a, finv(a)), U256::ONE);
        assert_eq!(finv(U256::ONE), U256::ONE);
    }

    #[test]
    #[should_panic(expected = "inversion of zero")]
    fn zero_inverse_panics() {
        let _ = finv(U256::ZERO);
    }

    #[test]
    fn negation_is_involutive() {
        let p = generator().mul_scalar(U256::from_u64(7));
        assert_eq!(p.negate().negate(), p);
        assert_eq!(Point::Infinity.negate(), Point::Infinity);
    }

    #[test]
    fn coordinates_accessor() {
        assert_eq!(Point::Infinity.coordinates(), None);
        let (x, _) = generator().coordinates().unwrap();
        assert_eq!(
            x,
            U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
                .unwrap()
        );
    }
}
