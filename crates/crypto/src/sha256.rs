//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The whole `blockfed` stack — block hashes, transaction ids, merkle trees,
//! addresses, signature challenges, model fingerprints — is built on this one
//! primitive, so it is implemented here rather than pulled in as a dependency,
//! and validated against the official test vectors.

use crate::hash::H256;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use blockfed_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

/// A snapshot of the compression state at a 64-byte block boundary.
///
/// Hashing many messages that share a long fixed prefix (the proof-of-work
/// hot path: every nonce attempt re-hashes the same header prefix) wastes a
/// compression call per shared block. Capture the state once with
/// [`Sha256::midstate`] and resume per message with
/// [`Sha256::from_midstate`]; the digest is identical to hashing the whole
/// message from scratch.
///
/// # Examples
///
/// ```
/// use blockfed_crypto::sha256::{sha256, Sha256};
///
/// let prefix = [0xAB; 64]; // one full block
/// let mut h = Sha256::new();
/// h.update(&prefix);
/// let mid = h.midstate().expect("on a block boundary");
/// for suffix in [b"one", b"two"] {
///     let mut resumed = Sha256::from_midstate(mid);
///     resumed.update(suffix);
///     let mut scratch = Vec::from(prefix);
///     scratch.extend_from_slice(suffix);
///     assert_eq!(resumed.finalize(), sha256(&scratch));
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Midstate {
    state: [u32; 8],
    processed: u64,
}

impl Midstate {
    /// Bytes already absorbed into this state (a multiple of 64).
    pub fn processed_bytes(&self) -> u64 {
        self.processed
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Captures the compression state, or `None` if unabsorbed bytes sit in
    /// the buffer (midstates only exist at 64-byte boundaries).
    pub fn midstate(&self) -> Option<Midstate> {
        (self.buffer_len == 0).then_some(Midstate {
            state: self.state,
            processed: self.total_len,
        })
    }

    /// Resumes hashing from a captured [`Midstate`].
    pub fn from_midstate(mid: Midstate) -> Self {
        debug_assert_eq!(mid.processed % 64, 0, "midstate off a block boundary");
        Sha256 {
            state: mid.state,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: mid.processed,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> H256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        H256::from_bytes(out)
    }

    fn update_padding(&mut self, data: &[u8]) {
        // Like `update` but does not count towards the message length.
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hashes `data` in one shot.
///
/// # Examples
///
/// ```
/// use blockfed_crypto::sha256::sha256;
///
/// let d = sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> H256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of two digests — the merkle-tree combiner.
pub fn sha256_pair(left: &H256, right: &H256) -> H256 {
    let mut h = Sha256::new();
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        for chunk_size in [1usize, 3, 63, 64, 65, 127, 999] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding boundaries must all differ.
        let mut digests = Vec::new();
        for len in 50..70usize {
            digests.push(sha256(&vec![0xAAu8; len]));
        }
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j]);
            }
        }
    }

    #[test]
    fn million_a() {
        // FIPS long vector: one million 'a'.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn midstate_resume_matches_oneshot() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 7 % 251) as u8).collect();
        for boundary in [64usize, 128, 256, 448] {
            let mut h = Sha256::new();
            h.update(&data[..boundary]);
            let mid = h.midstate().expect("block boundary");
            assert_eq!(mid.processed_bytes(), boundary as u64);
            let mut resumed = Sha256::from_midstate(mid);
            resumed.update(&data[boundary..]);
            assert_eq!(resumed.finalize(), sha256(&data), "boundary {boundary}");
        }
    }

    #[test]
    fn midstate_unavailable_off_boundary() {
        let mut h = Sha256::new();
        h.update(&[1, 2, 3]);
        assert!(h.midstate().is_none());
        h.update(&[0u8; 61]);
        assert!(h.midstate().is_some());
    }

    #[test]
    fn fresh_hasher_midstate_is_initial() {
        // Resuming a virgin midstate behaves exactly like a fresh hasher.
        let mid = Sha256::new().midstate().expect("empty buffer");
        let mut h = Sha256::from_midstate(mid);
        h.update(b"abc");
        assert_eq!(h.finalize(), sha256(b"abc"));
    }

    #[test]
    fn pair_combiner_is_concatenation() {
        let a = sha256(b"left");
        let b = sha256(b"right");
        let mut cat = Vec::new();
        cat.extend_from_slice(a.as_bytes());
        cat.extend_from_slice(b.as_bytes());
        assert_eq!(sha256_pair(&a, &b), sha256(&cat));
        assert_ne!(sha256_pair(&a, &b), sha256_pair(&b, &a));
    }
}
