//! Fixed-size hash and address types.

use std::fmt;

use serde::{Deserialize, Serialize};

fn hex_encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(TABLE[(b >> 4) as usize] as char);
        s.push(TABLE[(b & 0xf) as usize] as char);
    }
    s
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

fn hex_decode(s: &str, out: &mut [u8]) -> Result<(), ParseHashError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if s.len() != out.len() * 2 {
        return Err(ParseHashError::Length {
            expected: out.len() * 2,
            got: s.len(),
        });
    }
    let b = s.as_bytes();
    for i in 0..out.len() {
        let hi = hex_val(b[2 * i]).ok_or(ParseHashError::Digit)?;
        let lo = hex_val(b[2 * i + 1]).ok_or(ParseHashError::Digit)?;
        out[i] = (hi << 4) | lo;
    }
    Ok(())
}

/// Error parsing a hash from hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHashError {
    /// Wrong number of hex digits.
    Length {
        /// Digits expected.
        expected: usize,
        /// Digits provided.
        got: usize,
    },
    /// A character was not a hex digit.
    Digit,
}

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHashError::Length { expected, got } => {
                write!(f, "expected {expected} hex digits, got {got}")
            }
            ParseHashError::Digit => write!(f, "invalid hex digit"),
        }
    }
}

impl std::error::Error for ParseHashError {}

macro_rules! hash_type {
    ($(#[$doc:meta])* $name:ident, $len:expr) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name([u8; $len]);

        impl $name {
            /// Byte width of this hash type.
            pub const LEN: usize = $len;

            /// The all-zero value.
            pub const fn zero() -> Self {
                $name([0u8; $len])
            }

            /// Wraps a byte array.
            pub const fn from_bytes(bytes: [u8; $len]) -> Self {
                $name(bytes)
            }

            /// Borrows the raw bytes.
            pub fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }

            /// Copies out the raw bytes.
            pub fn to_bytes(self) -> [u8; $len] {
                self.0
            }

            /// Whether every byte is zero.
            pub fn is_zero(&self) -> bool {
                self.0.iter().all(|&b| b == 0)
            }

            /// Lowercase hex without a `0x` prefix.
            pub fn to_hex(&self) -> String {
                hex_encode(&self.0)
            }

            /// Parses from hex, with or without a `0x` prefix.
            ///
            /// # Errors
            ///
            /// Returns [`ParseHashError`] if the digit count is wrong or a
            /// character is not hexadecimal.
            pub fn from_hex(s: &str) -> Result<Self, ParseHashError> {
                let mut out = [0u8; $len];
                hex_decode(s, &mut out)?;
                Ok($name(out))
            }

            /// A short prefix (4 bytes of hex) for human-readable logs.
            pub fn short(&self) -> String {
                hex_encode(&self.0[..4])
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(0x{})", stringify!($name), self.to_hex())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "0x{}", self.to_hex())
            }
        }

        impl From<[u8; $len]> for $name {
            fn from(bytes: [u8; $len]) -> Self {
                $name(bytes)
            }
        }

        impl AsRef<[u8]> for $name {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }

        impl std::str::FromStr for $name {
            type Err = ParseHashError;
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                Self::from_hex(s)
            }
        }
    };
}

hash_type!(
    /// A 256-bit hash (block hashes, transaction ids, model fingerprints).
    ///
    /// # Examples
    ///
    /// ```
    /// use blockfed_crypto::H256;
    ///
    /// let h = H256::from_hex("0x0000000000000000000000000000000000000000000000000000000000000001")?;
    /// assert!(!h.is_zero());
    /// # Ok::<(), blockfed_crypto::hash::ParseHashError>(())
    /// ```
    H256,
    32
);

hash_type!(
    /// A 160-bit account address, derived from a public key.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockfed_crypto::H160;
    ///
    /// assert!(H160::zero().is_zero());
    /// ```
    H160,
    20
);

impl H256 {
    /// Interprets the hash as a big-endian 256-bit integer and compares it to
    /// another — used for proof-of-work target checks.
    pub fn meets_target(&self, target: &crate::u256::U256) -> bool {
        &crate::u256::U256::from_be_bytes(self.0) <= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let h = H256::from_bytes(bytes);
        let parsed = H256::from_hex(&h.to_hex()).unwrap();
        assert_eq!(h, parsed);
        let prefixed = H256::from_hex(&format!("0x{}", h.to_hex())).unwrap();
        assert_eq!(h, prefixed);
    }

    #[test]
    fn rejects_bad_lengths_and_digits() {
        assert!(matches!(
            H256::from_hex("ab"),
            Err(ParseHashError::Length { .. })
        ));
        let bad = "zz".repeat(32);
        assert!(matches!(H256::from_hex(&bad), Err(ParseHashError::Digit)));
        assert!(H160::from_hex(&"00".repeat(20)).is_ok());
        assert!(H160::from_hex(&"00".repeat(32)).is_err());
    }

    #[test]
    fn zero_checks() {
        assert!(H256::zero().is_zero());
        let mut b = [0u8; 32];
        b[31] = 1;
        assert!(!H256::from_bytes(b).is_zero());
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let h = H160::zero();
        assert!(h.to_string().starts_with("0x"));
        assert!(format!("{h:?}").contains("H160"));
        assert_eq!(h.short().len(), 8);
    }

    #[test]
    fn ordering_is_bytewise() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        a[0] = 1;
        b[0] = 2;
        assert!(H256::from_bytes(a) < H256::from_bytes(b));
    }

    #[test]
    fn parse_error_display() {
        let e = H256::from_hex("12").unwrap_err();
        assert!(e.to_string().contains("64"));
        assert_eq!(ParseHashError::Digit.to_string(), "invalid hex digit");
    }
}
