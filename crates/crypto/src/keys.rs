//! Schnorr signatures over secp256k1, providing the non-repudiation property the
//! paper's Case 3 relies on: a peer that published a (possibly abnormal) model
//! cannot later deny authorship, because the model transaction carries a
//! signature only that peer's secret key could have produced.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::hash::{H160, H256};
use crate::secp::{generator, group_order, Point};
use crate::sha256::Sha256;
use crate::u256::U256;

/// A secret/public key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    secret: U256,
    public: PublicKey,
}

/// A public key (a point on secp256k1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    x: [u8; 32],
    y: [u8; 32],
}

/// A Schnorr signature `(R, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    rx: [u8; 32],
    ry: [u8; 32],
    s: [u8; 32],
}

/// Error verifying or decoding signature material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The public key bytes are not a curve point.
    InvalidPublicKey,
    /// The signature bytes are malformed (R not on curve or s out of range).
    MalformedSignature,
    /// The signature does not verify for this key and message.
    VerificationFailed,
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::InvalidPublicKey => write!(f, "public key is not a curve point"),
            SignatureError::MalformedSignature => write!(f, "signature bytes are malformed"),
            SignatureError::VerificationFailed => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

fn join64(a: &[u8; 32], b: &[u8; 32]) -> [u8; 64] {
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(a);
    out[32..].copy_from_slice(b);
    out
}

fn split64(bytes: &[u8; 64]) -> ([u8; 32], [u8; 32]) {
    let mut a = [0u8; 32];
    let mut b = [0u8; 32];
    a.copy_from_slice(&bytes[..32]);
    b.copy_from_slice(&bytes[32..]);
    (a, b)
}

fn hash_to_scalar(parts: &[&[u8]]) -> U256 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    let digest = h.finalize();
    U256::from_be_bytes(digest.to_bytes())
        .div_rem(group_order())
        .1
}

impl KeyPair {
    /// Generates a key pair from an RNG.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockfed_crypto::KeyPair;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let kp = KeyPair::generate(&mut rng);
    /// let sig = kp.sign(b"hello");
    /// assert!(kp.public().verify(b"hello", &sig).is_ok());
    /// ```
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes);
            let candidate = U256::from_be_bytes(bytes);
            if !candidate.is_zero() && candidate < group_order() {
                return Self::from_secret(candidate);
            }
        }
    }

    /// Builds a key pair from a secret scalar.
    ///
    /// # Panics
    ///
    /// Panics if the scalar is zero or not below the group order.
    pub fn from_secret(secret: U256) -> Self {
        assert!(
            !secret.is_zero() && secret < group_order(),
            "secret out of range"
        );
        let point = generator().mul_scalar(secret);
        let (x, y) = split64(&point.to_bytes());
        KeyPair {
            secret,
            public: PublicKey { x, y },
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The address derived from the public key.
    pub fn address(&self) -> H160 {
        self.public.address()
    }

    /// Signs a message (deterministic nonce derived from the secret and message).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let n = group_order();
        // Deterministic nonce: k = H(secret ‖ message) mod n, nonzero by re-hash.
        let mut k = hash_to_scalar(&[&self.secret.to_be_bytes(), message]);
        while k.is_zero() {
            k = hash_to_scalar(&[&k.to_be_bytes(), message, b"retry"]);
        }
        let r_point = generator().mul_scalar(k);
        let (rx, ry) = split64(&r_point.to_bytes());
        let e = hash_to_scalar(&[&rx, &ry, &self.public.x, &self.public.y, message]);
        let s = k.add_mod(e.mul_mod(self.secret, n), n);
        Signature {
            rx,
            ry,
            s: s.to_be_bytes(),
        }
    }
}

impl PublicKey {
    /// The 64-byte (x ‖ y) encoding.
    pub fn to_point_bytes(&self) -> [u8; 64] {
        join64(&self.x, &self.y)
    }

    /// Reconstructs a public key from its encoding.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::InvalidPublicKey`] if the bytes are not a
    /// curve point.
    pub fn from_bytes(bytes: [u8; 64]) -> Result<Self, SignatureError> {
        match Point::from_bytes(&bytes) {
            Some(p) if !p.is_infinity() => {
                let (x, y) = split64(&p.to_bytes());
                Ok(PublicKey { x, y })
            }
            _ => Err(SignatureError::InvalidPublicKey),
        }
    }

    /// The account address: the low 20 bytes of `sha256(x ‖ y)`.
    pub fn address(&self) -> H160 {
        let mut h = Sha256::new();
        h.update(&self.x);
        h.update(&self.y);
        let digest = h.finalize();
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.as_bytes()[12..]);
        H160::from_bytes(out)
    }

    /// Verifies a signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] if the key or signature is malformed or the
    /// equation `s·G = R + e·P` does not hold.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        let pk_point =
            Point::from_bytes(&self.to_point_bytes()).ok_or(SignatureError::InvalidPublicKey)?;
        if pk_point.is_infinity() {
            return Err(SignatureError::InvalidPublicKey);
        }
        let r_point = Point::from_bytes(&join64(&sig.rx, &sig.ry))
            .ok_or(SignatureError::MalformedSignature)?;
        let s = U256::from_be_bytes(sig.s);
        if s >= group_order() {
            return Err(SignatureError::MalformedSignature);
        }
        let e = hash_to_scalar(&[&sig.rx, &sig.ry, &self.x, &self.y, message]);
        let lhs = generator().mul_scalar(s);
        let rhs = r_point.add(&pk_point.mul_scalar(e));
        if lhs == rhs {
            Ok(())
        } else {
            Err(SignatureError::VerificationFailed)
        }
    }
}

impl Signature {
    /// A compact digest of the signature, suitable for embedding in receipts.
    pub fn digest(&self) -> H256 {
        let mut h = Sha256::new();
        h.update(&self.rx);
        h.update(&self.ry);
        h.update(&self.s);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> KeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        KeyPair::generate(&mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(1);
        let sig = kp.sign(b"model update round 3");
        assert!(kp.public().verify(b"model update round 3", &sig).is_ok());
    }

    #[test]
    fn tampered_message_fails() {
        let kp = keypair(2);
        let sig = kp.sign(b"original");
        assert_eq!(
            kp.public().verify(b"tampered", &sig),
            Err(SignatureError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = keypair(3);
        let kp2 = keypair(4);
        let sig = kp1.sign(b"msg");
        assert_eq!(
            kp2.public().verify(b"msg", &sig),
            Err(SignatureError::VerificationFailed)
        );
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = keypair(5);
        assert_eq!(kp.sign(b"x"), kp.sign(b"x"));
        assert_ne!(kp.sign(b"x"), kp.sign(b"y"));
    }

    #[test]
    fn addresses_are_stable_and_distinct() {
        let a = keypair(6);
        let b = keypair(7);
        assert_eq!(a.address(), a.public().address());
        assert_ne!(a.address(), b.address());
        assert!(!a.address().is_zero());
    }

    #[test]
    fn public_key_decoding_validates_curve_membership() {
        let kp = keypair(8);
        let ok = PublicKey::from_bytes(kp.public().to_point_bytes());
        assert_eq!(ok, Ok(kp.public()));
        let mut bad = kp.public().to_point_bytes();
        bad[0] ^= 0xFF;
        assert_eq!(
            PublicKey::from_bytes(bad),
            Err(SignatureError::InvalidPublicKey)
        );
        assert_eq!(
            PublicKey::from_bytes([0u8; 64]),
            Err(SignatureError::InvalidPublicKey)
        );
    }

    #[test]
    fn malformed_signature_detected() {
        let kp = keypair(9);
        let mut sig = kp.sign(b"m");
        sig.rx[1] ^= 1; // knock R off the curve
        assert_eq!(
            kp.public().verify(b"m", &sig),
            Err(SignatureError::MalformedSignature)
        );
    }

    #[test]
    fn oversized_s_rejected() {
        let kp = keypair(10);
        let mut sig = kp.sign(b"m");
        sig.s = [0xFF; 32]; // >= group order
        assert_eq!(
            kp.public().verify(b"m", &sig),
            Err(SignatureError::MalformedSignature)
        );
    }

    #[test]
    fn signature_digest_is_stable() {
        let kp = keypair(11);
        let sig = kp.sign(b"m");
        assert_eq!(sig.digest(), sig.digest());
        assert_ne!(sig.digest(), kp.sign(b"n").digest());
    }

    #[test]
    #[should_panic(expected = "secret out of range")]
    fn zero_secret_rejected() {
        let _ = KeyPair::from_secret(U256::ZERO);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SignatureError::InvalidPublicKey
            .to_string()
            .contains("public key"));
        assert!(SignatureError::MalformedSignature
            .to_string()
            .contains("malformed"));
        assert!(SignatureError::VerificationFailed
            .to_string()
            .contains("failed"));
    }
}
