//! 256-bit unsigned integers (with a 512-bit helper for products).
//!
//! Used for proof-of-work difficulty targets and as the limb arithmetic under the
//! secp256k1 implementation in [`crate::secp`]. Little-endian `u64` limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Not, Shl, Shr, Sub};

use serde::{Deserialize, Serialize};

/// A 256-bit unsigned integer.
///
/// # Examples
///
/// ```
/// use blockfed_crypto::U256;
///
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(6);
/// assert_eq!(a + b, U256::from_u64(13));
/// assert_eq!((a * b).low_u64(), 42);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct U256(pub(crate) [u64; 4]);

/// A 512-bit unsigned integer, produced by [`U256::mul_wide`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct U512(pub(crate) [u64; 8]);

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a value from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// The little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// The low 64 bits.
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// The low 128 bits.
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Parses from big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[8 * (3 - i)..8 * (3 - i) + 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serializes to big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * (3 - i)..8 * (3 - i) + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a hexadecimal string (with or without `0x`), up to 64 digits.
    ///
    /// # Errors
    ///
    /// Returns `None` for empty input, more than 64 digits, or non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let mut v = U256::ZERO;
        for c in s.bytes() {
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return None,
            };
            v = (v << 4) | U256::from_u64(u64::from(d));
        }
        Some(v)
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Whether the value is even.
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// The value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Addition reporting overflow.
    #[allow(clippy::needless_range_loop)] // lockstep carry chain reads clearest indexed
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtraction reporting borrow.
    #[allow(clippy::needless_range_loop)] // lockstep borrow chain reads clearest indexed
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping (mod 2^256) addition.
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping (mod 2^256) subtraction.
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 256×256 → 512-bit multiplication.
    pub fn mul_wide(self, rhs: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        U512(out)
    }

    /// Wrapping (mod 2^256) multiplication.
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        let wide = self.mul_wide(rhs);
        U256([wide.0[0], wide.0[1], wide.0[2], wide.0[3]])
    }

    /// Multiplication by a `u64`, returning the 320-bit result as
    /// `(low 256 bits, high limb)`.
    #[allow(clippy::needless_range_loop)] // lockstep carry chain reads clearest indexed
    pub fn mul_u64_carry(self, rhs: u64) -> (U256, u64) {
        let mut out = [0u64; 4];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let cur = (self.0[i] as u128) * (rhs as u128) + carry;
            out[i] = cur as u64;
            carry = cur >> 64;
        }
        (U256(out), carry as u64)
    }

    /// Division with remainder.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(self, divisor: U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (U256::ZERO, self);
        }
        if divisor.bits() <= 64 {
            let (q, r) = self.div_rem_u64(divisor.low_u64());
            return (q, U256::from_u64(r));
        }
        // Restoring binary long division.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= divisor {
                remainder = remainder.wrapping_sub(divisor);
                quotient.0[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// Division with remainder by a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(self, divisor: u64) -> (U256, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = [0u64; 4];
        let mut rem: u128 = 0;
        for i in (0..4).rev() {
            let cur = (rem << 64) | self.0[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (U256(out), rem as u64)
    }

    /// Modular addition: `(self + rhs) mod m`.
    ///
    /// Inputs must already be reduced below `m`.
    pub fn add_mod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum >= m {
            sum.wrapping_sub(m)
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod m`.
    ///
    /// Inputs must already be reduced below `m`.
    pub fn sub_mod(self, rhs: U256, m: U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        if self >= rhs {
            self.wrapping_sub(rhs)
        } else {
            m.wrapping_sub(rhs).wrapping_add(self)
        }
    }

    /// Modular multiplication: `(self * rhs) mod m`.
    pub fn mul_mod(self, rhs: U256, m: U256) -> U256 {
        self.mul_wide(rhs).rem(m)
    }

    /// Modular exponentiation by square-and-multiply.
    pub fn pow_mod(self, exp: U256, m: U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m == U256::ONE {
            return U256::ZERO;
        }
        let mut result = U256::ONE;
        let mut base = self.div_rem(m).1;
        let n = exp.bits();
        for i in 0..n {
            if exp.bit(i) {
                result = result.mul_mod(base, m);
            }
            base = base.mul_mod(base, m);
        }
        result
    }

    /// Leading (most-significant) zero bits.
    pub fn leading_zeros(&self) -> u32 {
        256 - self.bits()
    }
}

impl U512 {
    /// Zero.
    pub const ZERO: U512 = U512([0; 8]);

    /// Builds a 512-bit value as `hi * 2^256 + lo`.
    pub fn from_halves(hi: U256, lo: U256) -> Self {
        U512([
            lo.0[0], lo.0[1], lo.0[2], lo.0[3], hi.0[0], hi.0[1], hi.0[2], hi.0[3],
        ])
    }

    /// Splits into `(hi, lo)` halves.
    pub fn split_halves(&self) -> (U256, U256) {
        (
            U256([self.0[4], self.0[5], self.0[6], self.0[7]]),
            U256([self.0[0], self.0[1], self.0[2], self.0[3]]),
        )
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 8]
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// The value of bit `i`.
    pub fn bit(&self, i: u32) -> bool {
        if i >= 512 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Remainder modulo a 256-bit value, via restoring binary division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[allow(clippy::should_implement_trait)] // named like the math, not the operator
    pub fn rem(self, m: U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        let n = self.bits();
        if n <= 256 {
            let (_, lo) = self.split_halves();
            return lo.div_rem(m).1;
        }
        let mut rem = U256::ZERO;
        for i in (0..n).rev() {
            // rem = rem * 2 + bit; rem may transiently reach 2m-1 < 2^257,
            // tracked by the shift-out carry.
            let carry = rem.bit(255);
            rem = rem << 1;
            if self.bit(i) {
                rem.0[0] |= 1;
            }
            if carry || rem >= m {
                rem = rem.wrapping_sub(m);
            }
        }
        rem
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).expect("U256 overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 underflow")
    }
}

impl std::ops::Mul for U256 {
    type Output = U256;
    /// Multiplication that panics on overflow (use [`U256::mul_wide`] or
    /// [`U256::wrapping_mul`] when the product may exceed 256 bits).
    fn mul(self, rhs: U256) -> U256 {
        let wide = self.mul_wide(rhs);
        let (hi, lo) = wide.split_halves();
        assert!(hi.is_zero(), "U256 multiplication overflow");
        lo
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            if i >= limb_shift {
                out[i] = self.0[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i > limb_shift {
                    out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
                }
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    #[allow(clippy::needless_range_loop)] // cross-limb carry reads clearest indexed
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in 0..4 {
            if i + limb_shift < 4 {
                out[i] = self.0[i + limb_shift] >> bit_shift;
                if bit_shift > 0 && i + limb_shift + 1 < 4 {
                    out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
                }
            }
        }
        U256(out)
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal via repeated division by 10^19 (largest power of ten in u64).
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut parts = Vec::new();
        let mut v = *self;
        while !v.is_zero() {
            let (q, r) = v.div_rem_u64(10_000_000_000_000_000_000);
            parts.push(r);
            v = q;
        }
        write!(f, "{}", parts.pop().unwrap())?;
        for p in parts.iter().rev() {
            write!(f, "{p:019}")?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.0[i])?;
            } else if self.0[i] != 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(u(2) + u(3), u(5));
        assert_eq!(u(7) - u(3), u(4));
        assert_eq!(u(6) * u(7), u(42));
        assert_eq!(u(100).div_rem(u(7)), (u(14), u(2)));
    }

    #[test]
    fn carries_propagate_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        assert_eq!(a + U256::ONE, U256([0, 1, 0, 0]));
        let b = U256([0, 1, 0, 0]);
        assert_eq!(b - U256::ONE, U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn overflow_detection() {
        assert!(U256::MAX.checked_add(U256::ONE).is_none());
        assert!(U256::ZERO.checked_sub(U256::ONE).is_none());
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
    }

    #[test]
    fn wide_multiplication() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1, which still fits in 256 bits.
        let a = U256::from_u128(u128::MAX);
        let wide = a.mul_wide(a);
        let (hi, lo) = wide.split_halves();
        let expected_lo = U256::ONE.wrapping_sub(U256::ONE << 129);
        assert_eq!(lo, expected_lo);
        assert_eq!(hi, U256::ZERO);
        // (2^255)^2 = 2^510: hi = 2^254.
        let b = U256::ONE << 255;
        let (hi2, lo2) = b.mul_wide(b).split_halves();
        assert_eq!(lo2, U256::ZERO);
        assert_eq!(hi2, U256::ONE << 254);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
            .unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        assert_eq!(v.to_be_bytes()[0], 0x01);
        assert_eq!(v.to_be_bytes()[31], 0xef);
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(U256::from_hex("ff"), Some(u(255)));
        assert_eq!(U256::from_hex("0xff"), Some(u(255)));
        assert_eq!(U256::from_hex(""), None);
        assert_eq!(U256::from_hex("xyz"), None);
        assert_eq!(U256::from_hex(&"f".repeat(65)), None);
        assert_eq!(U256::from_hex(&"f".repeat(64)), Some(U256::MAX));
    }

    #[test]
    fn shifts() {
        assert_eq!(u(1) << 64, U256([0, 1, 0, 0]));
        assert_eq!(U256([0, 1, 0, 0]) >> 64, u(1));
        assert_eq!(u(1) << 255 >> 255, u(1));
        assert_eq!(u(1) << 256, U256::ZERO);
        assert_eq!(U256::MAX >> 256, U256::ZERO);
        assert_eq!(u(0b1010) >> 1, u(0b101));
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!((U256::ONE << 200).bits(), 201);
        assert_eq!(U256::MAX.bits(), 256);
        assert!(U256::ONE.bit(0));
        assert!(!U256::ONE.bit(1));
        assert!((U256::ONE << 200).bit(200));
        assert!(!U256::MAX.bit(300));
        assert_eq!(U256::MAX.leading_zeros(), 0);
        assert_eq!(U256::ONE.leading_zeros(), 255);
    }

    #[test]
    fn div_rem_large() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff")
            .unwrap();
        let b = U256::from_hex("100000000000000000000000000000000").unwrap(); // 2^128
        let (q, r) = a.div_rem(b);
        assert_eq!(q, U256::from_u128(u128::MAX));
        assert_eq!(r, U256::from_u128(u128::MAX));
        // Reconstruct: q*b + r == a
        assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(U256::ZERO);
    }

    #[test]
    fn u512_rem_matches_div_rem_for_small_values() {
        let a = u(123456789);
        let b = u(1000);
        let wide = U512::from_halves(U256::ZERO, a);
        assert_eq!(wide.rem(b), u(123456789 % 1000));
    }

    #[test]
    fn u512_rem_large() {
        // (m + 5) * m + 7 mod m == 7
        let m = U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
            .unwrap();
        let a = m.wrapping_add(u(5));
        let wide = a.mul_wide(m);
        let (lo_sum, carry) = wide.split_halves().1.overflowing_add(u(7));
        let mut limbs = [
            lo_sum.0[0],
            lo_sum.0[1],
            lo_sum.0[2],
            lo_sum.0[3],
            0,
            0,
            0,
            0,
        ];
        let (hi, _) = wide.split_halves();
        limbs[4] = hi.0[0].wrapping_add(u64::from(carry));
        limbs[5] = hi.0[1];
        limbs[6] = hi.0[2];
        limbs[7] = hi.0[3];
        assert_eq!(U512(limbs).rem(m), u(7));
    }

    #[test]
    fn modular_arithmetic() {
        let m = u(97);
        assert_eq!(u(90).add_mod(u(20), m), u(13));
        assert_eq!(u(5).sub_mod(u(20), m), u(82));
        assert_eq!(u(50).mul_mod(u(60), m), u(3000 % 97));
        assert_eq!(u(2).pow_mod(u(96), m), U256::ONE); // Fermat
        assert_eq!(u(3).pow_mod(U256::ZERO, m), U256::ONE);
        assert_eq!(u(3).pow_mod(u(5), U256::ONE), U256::ZERO);
    }

    #[test]
    fn pow_mod_large_modulus() {
        // Fermat's little theorem with the secp256k1 field prime.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        let a = u(123456789);
        assert_eq!(a.pow_mod(p.wrapping_sub(U256::ONE), p), U256::ONE);
        // Inverse via Fermat: a * a^(p-2) == 1.
        let inv = a.pow_mod(p.wrapping_sub(u(2)), p);
        assert_eq!(a.mul_mod(inv, p), U256::ONE);
    }

    #[test]
    fn mul_u64_carry_matches_wide() {
        let a = U256::MAX;
        let (lo, hi) = a.mul_u64_carry(u64::MAX);
        let wide = a.mul_wide(u(u64::MAX));
        let (whi, wlo) = wide.split_halves();
        assert_eq!(lo, wlo);
        assert_eq!(U256::from_u64(hi), whi);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(U256::ZERO.to_string(), "0");
        assert_eq!(u(12345).to_string(), "12345");
        // 2^64 = 18446744073709551616
        assert_eq!((U256::ONE << 64).to_string(), "18446744073709551616");
        // 10^19 boundary handling
        assert_eq!(
            u(10_000_000_000_000_000_000).to_string(),
            "10000000000000000000"
        );
    }

    #[test]
    fn lower_hex_formatting() {
        assert_eq!(format!("{:x}", U256::ZERO), "0");
        assert_eq!(format!("{:x}", u(0xdeadbeef)), "deadbeef");
        let v = U256::ONE << 64;
        assert_eq!(format!("{v:x}"), "10000000000000000");
    }

    #[test]
    fn bitwise_ops() {
        let a = u(0b1100);
        let b = u(0b1010);
        assert_eq!(a & b, u(0b1000));
        assert_eq!(a | b, u(0b1110));
        assert_eq!(a ^ b, u(0b0110));
        assert_eq!(!U256::ZERO, U256::MAX);
    }

    #[test]
    fn ordering() {
        assert!(U256::ZERO < U256::ONE);
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert_eq!(u(5).cmp(&u(5)), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "U256 multiplication overflow")]
    fn mul_overflow_panics() {
        let big = U256::ONE << 200;
        let _ = big * big;
    }
}
