//! Timed fault and churn injection for the decentralized orchestrator.
//!
//! The paper measures a fixed, healthy 3-peer network; its future-work section
//! asks what happens under "an arbitrary number of local updates on each peer
//! in asynchronous communication". The fault timeline answers the operational
//! half of that question: a run can now include network partitions, peers
//! leaving and joining mid-run, and hash-rate shocks — the regimes analysed by
//! Kim et al. (BlockFL) and Ren & Yan for consortium-chain FL.
//!
//! A [`TimedFault`] fires at a virtual instant inside the discrete-event run;
//! the orchestrator applies it atomically between events:
//!
//! * [`Fault::Partition`] severs every link between two peer groups through
//!   `blockfed-net`. Deliveries already in flight whose relay path crosses the
//!   cut are dropped at their arrival time (see
//!   [`blockfed_net::Network::path_open`]).
//! * [`Fault::HealAll`] restores every severed link.
//! * [`Fault::PeerLeave`] deactivates a peer: it stops training, mining, and
//!   receiving. Wait policies immediately re-evaluate against the reduced
//!   active population so no `WaitPolicy::All` waiter deadlocks.
//! * [`Fault::PeerJoin`] activates a peer that has been dormant since genesis:
//!   it first syncs the chain (imports every block sealed so far), registers
//!   on the registry, and only then starts training for the current round.
//! * [`Fault::HashRateShock`] multiplies a peer's hash rate (a miner
//!   upgrading, throttling, or being DoS'd).
//! * [`Fault::PeerCrash`] / [`Fault::PeerRestart`] model a process crash
//!   rather than a departure: the crashed peer keeps its identity and
//!   on-chain state but loses every in-flight fetch and its mempool, and on
//!   restart resyncs the chain before resuming where its round left off.

use blockfed_sim::SimDuration;

/// One fault scheduled on the run's virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault {
    /// When the fault fires (offset from the run's start).
    pub at: SimDuration,
    /// What happens.
    pub fault: Fault,
}

impl TimedFault {
    /// Creates a fault firing `at` seconds of virtual time into the run.
    pub fn at_secs(secs: f64, fault: Fault) -> Self {
        TimedFault {
            at: SimDuration::from_secs_f64(secs),
            fault,
        }
    }
}

/// The fault kinds the orchestrator can inject mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Severs every link between the two peer groups (indices into the run's
    /// peer list). Groups need not cover all peers; links within a group and
    /// among unlisted peers stay up.
    Partition {
        /// One side of the cut.
        left: Vec<usize>,
        /// The other side.
        right: Vec<usize>,
    },
    /// Restores every severed link.
    HealAll,
    /// The peer leaves the network permanently (crash-stop).
    PeerLeave {
        /// The departing peer.
        peer: usize,
    },
    /// A peer dormant since genesis joins: syncs the chain, registers, then
    /// participates from the round the network is currently in.
    PeerJoin {
        /// The joining peer.
        peer: usize,
    },
    /// Multiplies the peer's hash rate by `factor` for the rest of the run
    /// (compounding with earlier shocks).
    HashRateShock {
        /// The affected peer.
        peer: usize,
        /// Multiplier, must be positive and finite.
        factor: f64,
    },
    /// The peer's process crashes: it stops training, mining, and receiving,
    /// and loses its volatile state (mempool, in-flight fetches) — but keeps
    /// its key, records, and round position for a later
    /// [`Fault::PeerRestart`].
    PeerCrash {
        /// The crashing peer.
        peer: usize,
    },
    /// A crashed peer comes back: it resyncs the chain from its gossip
    /// neighbours, then resumes the round it was in when it crashed.
    PeerRestart {
        /// The restarting peer.
        peer: usize,
    },
}

impl Fault {
    /// Every peer index the fault references.
    pub fn peers(&self) -> Vec<usize> {
        match self {
            Fault::Partition { left, right } => left.iter().chain(right.iter()).copied().collect(),
            Fault::HealAll => Vec::new(),
            Fault::PeerLeave { peer }
            | Fault::PeerJoin { peer }
            | Fault::PeerCrash { peer }
            | Fault::PeerRestart { peer } => vec![*peer],
            Fault::HashRateShock { peer, .. } => vec![*peer],
        }
    }

    /// Validates the fault against a peer count.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        for p in self.peers() {
            if p >= n {
                return Err(format!(
                    "fault references peer {p}, but only {n} peers exist"
                ));
            }
        }
        match self {
            Fault::Partition { left, right } => {
                if left.is_empty() || right.is_empty() {
                    return Err("partition needs peers on both sides".into());
                }
                if left.iter().any(|p| right.contains(p)) {
                    return Err("partition sides must be disjoint".into());
                }
                Ok(())
            }
            Fault::HashRateShock { factor, .. } => {
                if !factor.is_finite() || *factor <= 0.0 {
                    return Err("hash-rate shock factor must be positive and finite".into());
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Partition { left, right } => {
                write!(f, "partition {left:?} | {right:?}")
            }
            Fault::HealAll => write!(f, "heal-all"),
            Fault::PeerLeave { peer } => write!(f, "leave peer={peer}"),
            Fault::PeerJoin { peer } => write!(f, "join peer={peer}"),
            Fault::HashRateShock { peer, factor } => {
                write!(f, "hash-shock peer={peer} x{factor}")
            }
            Fault::PeerCrash { peer } => write!(f, "crash peer={peer}"),
            Fault::PeerRestart { peer } => write!(f, "restart peer={peer}"),
        }
    }
}

/// Validates a whole timeline against a peer count: every fault must be
/// individually valid, a peer may join at most once and never act (leave,
/// shock, partition membership) before its join instant, and each peer's
/// crash/restart entries must alternate in time starting with a crash (no
/// restarting a peer that is up, no crashing one that is already down).
///
/// # Errors
///
/// Describes the first violated constraint.
pub fn validate_timeline(faults: &[TimedFault], n: usize) -> Result<(), String> {
    for tf in faults {
        tf.fault.validate(n)?;
    }
    for (i, tf) in faults.iter().enumerate() {
        if let Fault::PeerJoin { peer } = tf.fault {
            if faults
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.fault == Fault::PeerJoin { peer })
            {
                return Err(format!("peer {peer} joins more than once"));
            }
            if faults.iter().any(|other| {
                other.at < tf.at
                    && !matches!(other.fault, Fault::PeerJoin { .. })
                    && other.fault.peers().contains(&peer)
            }) {
                return Err(format!("peer {peer} is referenced before its join"));
            }
        }
    }
    // Per-peer crash/restart alternation, in timeline-entry order for equal
    // timestamps (the order the orchestrator applies them).
    for p in 0..n {
        let mut crashed = false;
        let mut entries: Vec<(SimDuration, usize, bool)> = faults
            .iter()
            .enumerate()
            .filter_map(|(i, tf)| match tf.fault {
                Fault::PeerCrash { peer } if peer == p => Some((tf.at, i, true)),
                Fault::PeerRestart { peer } if peer == p => Some((tf.at, i, false)),
                _ => None,
            })
            .collect();
        entries.sort();
        for (at, _, is_crash) in entries {
            if is_crash && crashed {
                return Err(format!("peer {p} crashes at {at} while already down"));
            }
            if !is_crash && !crashed {
                return Err(format!("peer {p} restarts at {at} without a prior crash"));
            }
            crashed = is_crash;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_out_of_range_and_degenerate_faults() {
        assert!(Fault::PeerLeave { peer: 3 }.validate(3).is_err());
        assert!(Fault::PeerLeave { peer: 2 }.validate(3).is_ok());
        assert!(Fault::Partition {
            left: vec![0],
            right: vec![]
        }
        .validate(3)
        .is_err());
        assert!(Fault::Partition {
            left: vec![0, 1],
            right: vec![1, 2]
        }
        .validate(3)
        .is_err());
        assert!(Fault::HashRateShock {
            peer: 0,
            factor: 0.0
        }
        .validate(3)
        .is_err());
        assert!(Fault::HashRateShock {
            peer: 0,
            factor: 2.0
        }
        .validate(3)
        .is_ok());
    }

    #[test]
    fn timeline_rejects_double_join_and_premature_references() {
        let double = vec![
            TimedFault::at_secs(1.0, Fault::PeerJoin { peer: 1 }),
            TimedFault::at_secs(2.0, Fault::PeerJoin { peer: 1 }),
        ];
        assert!(validate_timeline(&double, 3).is_err());

        let premature = vec![
            TimedFault::at_secs(1.0, Fault::PeerLeave { peer: 1 }),
            TimedFault::at_secs(2.0, Fault::PeerJoin { peer: 1 }),
        ];
        assert!(validate_timeline(&premature, 3).is_err());

        let fine = vec![
            TimedFault::at_secs(1.0, Fault::PeerJoin { peer: 2 }),
            TimedFault::at_secs(5.0, Fault::PeerLeave { peer: 2 }),
            TimedFault::at_secs(
                3.0,
                Fault::Partition {
                    left: vec![0],
                    right: vec![1],
                },
            ),
        ];
        assert!(validate_timeline(&fine, 3).is_ok());
    }

    #[test]
    fn timeline_enforces_crash_restart_alternation() {
        let restart_first = vec![TimedFault::at_secs(1.0, Fault::PeerRestart { peer: 1 })];
        assert!(validate_timeline(&restart_first, 3).is_err());

        let double_crash = vec![
            TimedFault::at_secs(1.0, Fault::PeerCrash { peer: 1 }),
            TimedFault::at_secs(2.0, Fault::PeerCrash { peer: 1 }),
        ];
        assert!(validate_timeline(&double_crash, 3).is_err());

        let fine = vec![
            TimedFault::at_secs(1.0, Fault::PeerCrash { peer: 1 }),
            TimedFault::at_secs(3.0, Fault::PeerRestart { peer: 1 }),
            TimedFault::at_secs(5.0, Fault::PeerCrash { peer: 1 }),
            TimedFault::at_secs(2.0, Fault::PeerCrash { peer: 2 }),
        ];
        assert!(validate_timeline(&fine, 3).is_ok());

        // Crash of a dormant joiner before its join is still premature.
        let premature = vec![
            TimedFault::at_secs(1.0, Fault::PeerCrash { peer: 2 }),
            TimedFault::at_secs(4.0, Fault::PeerJoin { peer: 2 }),
        ];
        assert!(validate_timeline(&premature, 3).is_err());
        assert!(Fault::PeerCrash { peer: 9 }.validate(3).is_err());
    }

    #[test]
    fn fault_display_is_informative() {
        assert_eq!(Fault::HealAll.to_string(), "heal-all");
        assert_eq!(Fault::PeerJoin { peer: 4 }.to_string(), "join peer=4");
        assert!(Fault::Partition {
            left: vec![0],
            right: vec![1]
        }
        .to_string()
        .contains("partition"));
        assert_eq!(Fault::PeerCrash { peer: 1 }.to_string(), "crash peer=1");
        assert_eq!(Fault::PeerRestart { peer: 1 }.to_string(), "restart peer=1");
    }
}
