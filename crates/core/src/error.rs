//! Typed configuration errors for the decentralized orchestrator.
//!
//! Oversize or inconsistent configurations used to die on `assert!`s deep in
//! [`crate::orchestrator::Decentralized::new`]; callers that assemble runs
//! from external input (the scenario engine, benches, services) need a value
//! they can match on and surface instead. [`ConfigError`]'s `Display` forms
//! are stable prefixes — `ScenarioSpec::validate` mirrors them so a spec and
//! the orchestrator reject the same configuration with the same words.

use crate::orchestrator::MAX_PEERS;

/// Why a [`crate::DecentralizedConfig`] (plus its data) cannot be run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer than two peers.
    TooFewPeers {
        /// The offending peer count.
        got: usize,
    },
    /// More peers than the orchestrator supports.
    TooManyPeers {
        /// The offending peer count.
        got: usize,
    },
    /// Train-shard and test-set counts disagree.
    ShardTestMismatch {
        /// Number of training shards.
        shards: usize,
        /// Number of per-peer test sets.
        tests: usize,
    },
    /// The fault/churn timeline references peers that do not exist or is
    /// otherwise inconsistent.
    InvalidTimeline(String),
    /// A compute profile failed validation.
    InvalidCompute(String),
    /// `per_peer_compute` is set but its length differs from the peer count.
    PerPeerComputeMismatch {
        /// Profiles provided.
        profiles: usize,
        /// Peers configured.
        peers: usize,
    },
    /// Zero communication rounds requested.
    ZeroRounds,
    /// The link profile is invalid (e.g. a loss rate outside `[0, 1]`).
    /// Carries the link error's rendered form so the variant stays `Eq`.
    InvalidLink(String),
    /// The adaptive policy controller is misconfigured (e.g. a bandit with no
    /// arms or an exploration rate outside `[0, 1]`).
    InvalidController(String),
    /// The committee layout is inconsistent with the peer count (e.g. more
    /// committees than peers).
    InvalidCommittees(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewPeers { got } => {
                write!(f, "need at least two peers (got {got})")
            }
            ConfigError::TooManyPeers { got } => write!(
                f,
                "at most {MAX_PEERS} peers are supported (got {got}); combination masks cap at {MAX_PEERS} bits"
            ),
            ConfigError::ShardTestMismatch { shards, tests } => {
                write!(f, "shard/test count mismatch ({shards} shards, {tests} tests)")
            }
            ConfigError::InvalidTimeline(e) => write!(f, "invalid fault timeline: {e}"),
            ConfigError::InvalidCompute(e) => write!(f, "invalid compute profile: {e}"),
            ConfigError::PerPeerComputeMismatch { profiles, peers } => write!(
                f,
                "per-peer compute count mismatch ({profiles} profiles, {peers} peers)"
            ),
            ConfigError::ZeroRounds => write!(f, "need at least one round"),
            ConfigError::InvalidLink(e) => write!(f, "invalid link profile: {e}"),
            ConfigError::InvalidController(e) => write!(f, "invalid policy controller: {e}"),
            ConfigError::InvalidCommittees(e) => write!(f, "invalid committee spec: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_are_stable() {
        // The panic-path tests and ScenarioSpec::validate match on these.
        assert!(ConfigError::TooFewPeers { got: 1 }
            .to_string()
            .starts_with("need at least two peers"));
        let many = ConfigError::TooManyPeers { got: 1025 }.to_string();
        assert!(many.contains("at most 1024 peers"), "{many}");
        assert!(ConfigError::InvalidTimeline("x".into())
            .to_string()
            .starts_with("invalid fault timeline"));
        assert!(ConfigError::InvalidCompute("x".into())
            .to_string()
            .starts_with("invalid compute profile"));
        assert!(ConfigError::ZeroRounds
            .to_string()
            .contains("at least one round"));
        assert!(ConfigError::ShardTestMismatch {
            shards: 3,
            tests: 2
        }
        .to_string()
        .contains("shard/test count mismatch"));
        assert!(ConfigError::PerPeerComputeMismatch {
            profiles: 2,
            peers: 3
        }
        .to_string()
        .contains("per-peer compute count mismatch"));
        assert!(ConfigError::InvalidLink("loss".into())
            .to_string()
            .starts_with("invalid link profile"));
        assert!(ConfigError::InvalidCommittees("x".into())
            .to_string()
            .starts_with("invalid committee spec"));
    }
}
