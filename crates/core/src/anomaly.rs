//! Abnormal-model detection.
//!
//! The paper: "abnormalities do not necessarily imply malicious intent …; they
//! may arise from the natural data heterogeneity across clients". Two
//! complementary detectors are provided: a statistical one on parameter norms
//! (catches scaled/poisoned weights without needing data) and the paper's
//! fitness-threshold test on a local test set.

use blockfed_fl::ModelUpdate;

/// Verdict of a detector for one update.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyReport {
    /// Index into the inspected update slice.
    pub index: usize,
    /// Why the update was flagged.
    pub reason: AnomalyReason,
}

/// Why an update was flagged.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyReason {
    /// NaN or infinite parameters.
    NonFinite,
    /// Parameter norm is a statistical outlier (|z| above the threshold).
    NormOutlier {
        /// The update's z-score.
        z: f64,
    },
    /// Standalone accuracy below the fitness threshold.
    BelowFitness {
        /// The measured accuracy.
        accuracy: f64,
        /// The configured threshold.
        threshold: f64,
    },
    /// The model predicts (almost) a single class — the free-rider
    /// fingerprint, which accuracy alone can miss when the constant class is
    /// over-represented in the test data.
    Degenerate {
        /// How many distinct classes the model predicted.
        predicted_classes: usize,
    },
}

/// Flags updates whose L2 parameter norm deviates from the cohort by more than
/// `z_threshold` standard deviations, plus any non-finite update.
///
/// With fewer than three updates the norm statistics are meaningless, so only
/// non-finite updates are flagged.
pub fn detect_norm_outliers(updates: &[&ModelUpdate], z_threshold: f64) -> Vec<AnomalyReport> {
    assert!(z_threshold > 0.0, "z threshold must be positive");
    let mut reports = Vec::new();
    let mut norms = Vec::with_capacity(updates.len());
    for (i, u) in updates.iter().enumerate() {
        if !u.is_finite() {
            reports.push(AnomalyReport {
                index: i,
                reason: AnomalyReason::NonFinite,
            });
            norms.push(None);
        } else {
            let norm: f64 = u
                .params
                .iter()
                .map(|&p| f64::from(p) * f64::from(p))
                .sum::<f64>()
                .sqrt();
            norms.push(Some(norm));
        }
    }
    let clean: Vec<f64> = norms.iter().flatten().copied().collect();
    if clean.len() < 3 {
        return reports;
    }
    let mean = clean.iter().sum::<f64>() / clean.len() as f64;
    let var = clean.iter().map(|n| (n - mean) * (n - mean)).sum::<f64>() / clean.len() as f64;
    let std = var.sqrt();
    if std < 1e-12 {
        return reports;
    }
    for (i, norm) in norms.iter().enumerate() {
        if let Some(n) = norm {
            let z = (n - mean) / std;
            if z.abs() > z_threshold {
                reports.push(AnomalyReport {
                    index: i,
                    reason: AnomalyReason::NormOutlier { z },
                });
            }
        }
    }
    reports.sort_by_key(|r| r.index);
    reports
}

/// Flags updates whose standalone fitness (via `evaluate`) is below
/// `threshold` — the paper's §III test-set gate.
pub fn detect_unfit(
    updates: &[&ModelUpdate],
    threshold: f64,
    mut evaluate: impl FnMut(&ModelUpdate) -> f64,
) -> Vec<AnomalyReport> {
    let mut reports = Vec::new();
    for (i, u) in updates.iter().enumerate() {
        if !u.is_finite() {
            reports.push(AnomalyReport {
                index: i,
                reason: AnomalyReason::NonFinite,
            });
            continue;
        }
        let accuracy = evaluate(u);
        if accuracy < threshold {
            reports.push(AnomalyReport {
                index: i,
                reason: AnomalyReason::BelowFitness {
                    accuracy,
                    threshold,
                },
            });
        }
    }
    reports
}

/// Flags updates whose predictions on a test set are degenerate (at most
/// `min_classes - 1` distinct predicted classes) — catches free-riders
/// submitting constant models, which can sit *above* a chance-level fitness
/// threshold whenever their constant class is over-represented locally.
///
/// `confusion` maps an update to its confusion matrix on the inspecting
/// peer's test data (see `blockfed_nn::Sequential::evaluate_confusion`).
pub fn detect_degenerate(
    updates: &[&ModelUpdate],
    min_classes: usize,
    mut confusion: impl FnMut(&ModelUpdate) -> blockfed_nn::ConfusionMatrix,
) -> Vec<AnomalyReport> {
    assert!(min_classes >= 2, "a one-class requirement flags nothing");
    let mut reports = Vec::new();
    for (i, u) in updates.iter().enumerate() {
        if !u.is_finite() {
            reports.push(AnomalyReport {
                index: i,
                reason: AnomalyReason::NonFinite,
            });
            continue;
        }
        let cm = confusion(u);
        let predicted = cm.predicted_class_count();
        if cm.total() > 1 && predicted < min_classes {
            reports.push(AnomalyReport {
                index: i,
                reason: AnomalyReason::Degenerate {
                    predicted_classes: predicted,
                },
            });
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_fl::ClientId;

    fn upd(i: usize, params: Vec<f32>) -> ModelUpdate {
        ModelUpdate::new(ClientId(i), 0, params, 10)
    }

    #[test]
    fn scaled_weights_are_norm_outliers() {
        let normal1 = upd(0, vec![0.1, -0.2, 0.3]);
        let normal2 = upd(1, vec![0.12, -0.18, 0.29]);
        let normal3 = upd(2, vec![0.09, -0.22, 0.31]);
        let poisoned = upd(3, vec![50.0, -80.0, 90.0]);
        let all = [&normal1, &normal2, &normal3, &poisoned];
        let reports = detect_norm_outliers(&all, 1.4);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].index, 3);
        assert!(matches!(reports[0].reason, AnomalyReason::NormOutlier { z } if z > 1.4));
    }

    #[test]
    fn non_finite_always_flagged() {
        let a = upd(0, vec![f32::NAN]);
        let b = upd(1, vec![1.0]);
        let reports = detect_norm_outliers(&[&a, &b], 3.0);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].reason, AnomalyReason::NonFinite);
    }

    #[test]
    fn small_cohorts_skip_norm_statistics() {
        let a = upd(0, vec![1.0]);
        let b = upd(1, vec![100.0]);
        assert!(detect_norm_outliers(&[&a, &b], 1.0).is_empty());
    }

    #[test]
    fn identical_norms_never_flag() {
        let a = upd(0, vec![1.0, 0.0]);
        let b = upd(1, vec![0.0, 1.0]);
        let c = upd(2, vec![-1.0, 0.0]);
        assert!(detect_norm_outliers(&[&a, &b, &c], 1.0).is_empty());
    }

    #[test]
    fn fitness_gate_flags_below_threshold() {
        let good = upd(0, vec![1.0]);
        let bad = upd(1, vec![2.0]);
        let reports = detect_unfit(&[&good, &bad], 0.5, |u| {
            if u.client == ClientId(0) {
                0.8
            } else {
                0.2
            }
        });
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].index, 1);
        assert!(matches!(
            reports[0].reason,
            AnomalyReason::BelowFitness { accuracy, threshold }
                if (accuracy - 0.2).abs() < 1e-12 && threshold == 0.5
        ));
    }

    #[test]
    fn fitness_gate_flags_non_finite_without_evaluating() {
        let bad = upd(0, vec![f32::INFINITY]);
        let reports = detect_unfit(&[&bad], 0.0, |_| panic!("must not evaluate non-finite"));
        assert_eq!(reports[0].reason, AnomalyReason::NonFinite);
    }

    #[test]
    #[should_panic(expected = "z threshold must be positive")]
    fn invalid_threshold_panics() {
        let _ = detect_norm_outliers(&[], 0.0);
    }

    #[test]
    fn degenerate_constant_model_is_flagged() {
        use blockfed_nn::ConfusionMatrix;
        let free_rider = upd(0, vec![0.0; 4]);
        let honest = upd(1, vec![0.3, -0.2, 0.4, 0.1]);
        let all = [&free_rider, &honest];
        let reports = detect_degenerate(&all, 2, |u| {
            // Free-rider predicts one class; honest model spreads out.
            if u.client == ClientId(0) {
                ConfusionMatrix::from_predictions(4, &[0, 1, 2, 3], &[2, 2, 2, 2])
            } else {
                ConfusionMatrix::from_predictions(4, &[0, 1, 2, 3], &[0, 1, 2, 2])
            }
        });
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].index, 0);
        assert_eq!(
            reports[0].reason,
            AnomalyReason::Degenerate {
                predicted_classes: 1
            }
        );
    }

    #[test]
    fn degenerate_detector_flags_non_finite_without_scoring() {
        let bad = upd(0, vec![f32::NAN]);
        let reports = detect_degenerate(&[&bad], 2, |_| panic!("must not evaluate non-finite"));
        assert_eq!(reports[0].reason, AnomalyReason::NonFinite);
    }

    #[test]
    fn single_example_matrices_are_not_judged_degenerate() {
        use blockfed_nn::ConfusionMatrix;
        let u = upd(0, vec![1.0]);
        let reports = detect_degenerate(&[&u], 2, |_| {
            ConfusionMatrix::from_predictions(3, &[1], &[1])
        });
        assert!(reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "one-class requirement")]
    fn degenerate_requires_sane_min_classes() {
        let _ = detect_degenerate(&[], 1, |_| blockfed_nn::ConfusionMatrix::new(2));
    }
}
