//! Non-repudiation auditing (the paper's Case 3).
//!
//! "The integration of blockchain technology in our system ensures participants
//! cannot deny their authorship, providing strong evidence against detected
//! abnormal clients." The audit trail for a model is: a signed transaction,
//! included under a merkle root, in a proof-of-work block, carrying the model's
//! fingerprint. This module assembles and verifies that evidence.

use blockfed_chain::{Block, Blockchain};
use blockfed_crypto::{MerkleProof, MerkleTree, H160, H256};
use blockfed_fl::ModelUpdate;

use crate::coupling::{confirmed_submissions, model_fingerprint};

/// The complete evidence bundle tying a model to its author.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The accused/credited author.
    pub author: H160,
    /// Communication round.
    pub round: u32,
    /// The model fingerprint anchored on chain.
    pub model_hash: H256,
    /// The carrying transaction's hash.
    pub tx_hash: H256,
    /// The including block's hash.
    pub block_hash: H256,
    /// Merkle inclusion proof of the transaction in the block.
    pub inclusion: MerkleProof,
}

/// Why evidence verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// No confirmed submission matches the update.
    NotOnChain,
    /// The block the evidence points at is unknown.
    UnknownBlock,
    /// The transaction is missing from the referenced block.
    TxNotInBlock,
    /// The transaction's signature does not verify.
    BadSignature,
    /// The signer does not match the claimed author.
    AuthorMismatch,
    /// The on-chain fingerprint does not match the model parameters.
    FingerprintMismatch,
    /// The merkle inclusion proof is invalid.
    BadInclusionProof,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            AuditError::NotOnChain => "no confirmed submission matches the update",
            AuditError::UnknownBlock => "referenced block is unknown",
            AuditError::TxNotInBlock => "transaction missing from referenced block",
            AuditError::BadSignature => "transaction signature invalid",
            AuditError::AuthorMismatch => "signer does not match claimed author",
            AuditError::FingerprintMismatch => "model fingerprint mismatch",
            AuditError::BadInclusionProof => "merkle inclusion proof invalid",
        };
        write!(f, "{msg}")
    }
}

impl std::error::Error for AuditError {}

fn tx_merkle_proof(block: &Block, tx_hash: &H256) -> Option<(usize, MerkleProof)> {
    let leaves: Vec<H256> = block.transactions.iter().map(|t| t.hash()).collect();
    let index = leaves.iter().position(|h| h == tx_hash)?;
    let tree = MerkleTree::from_leaves(leaves);
    tree.proof(index).map(|p| (index, p))
}

/// Collects the evidence bundle proving `update` was published by `author`.
///
/// # Errors
///
/// Returns [`AuditError::NotOnChain`] if no matching confirmed submission
/// exists on the peer's canonical chain.
pub fn collect_evidence(
    chain: &Blockchain,
    registry: H160,
    author: H160,
    update: &ModelUpdate,
) -> Result<Evidence, AuditError> {
    let fingerprint = model_fingerprint(update);
    let submission = confirmed_submissions(chain, registry, update.round)
        .into_iter()
        .find(|s| s.sender == author && s.model_hash == fingerprint)
        .ok_or(AuditError::NotOnChain)?;
    let block = chain
        .block(&submission.block_hash)
        .ok_or(AuditError::UnknownBlock)?;
    let (_, inclusion) =
        tx_merkle_proof(block, &submission.tx_hash).ok_or(AuditError::TxNotInBlock)?;
    Ok(Evidence {
        author,
        round: update.round,
        model_hash: fingerprint,
        tx_hash: submission.tx_hash,
        block_hash: submission.block_hash,
        inclusion,
    })
}

/// Independently verifies an evidence bundle against a chain and the model
/// parameters it claims to cover.
///
/// # Errors
///
/// Returns the first [`AuditError`] found.
pub fn verify_evidence(
    chain: &Blockchain,
    evidence: &Evidence,
    update: &ModelUpdate,
) -> Result<(), AuditError> {
    if model_fingerprint(update) != evidence.model_hash {
        return Err(AuditError::FingerprintMismatch);
    }
    let block = chain
        .block(&evidence.block_hash)
        .ok_or(AuditError::UnknownBlock)?;
    let tx = block
        .transactions
        .iter()
        .find(|t| t.hash() == evidence.tx_hash)
        .ok_or(AuditError::TxNotInBlock)?;
    tx.verify_signature()
        .map_err(|_| AuditError::BadSignature)?;
    if tx.from != evidence.author {
        return Err(AuditError::AuthorMismatch);
    }
    if !evidence
        .inclusion
        .verify(&evidence.tx_hash, &block.header.tx_root)
    {
        return Err(AuditError::BadInclusionProof);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::{register_tx, submit_model_tx};
    use blockfed_chain::{GenesisSpec, SealPolicy};
    use blockfed_crypto::KeyPair;
    use blockfed_fl::ClientId;
    use blockfed_vm::BlockfedRuntime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        chain: Blockchain,
        registry: H160,
        keys: Vec<KeyPair>,
        update: ModelUpdate,
    }

    fn fixture() -> Fixture {
        let keys: Vec<KeyPair> = (1..=2)
            .map(|s| KeyPair::generate(&mut StdRng::seed_from_u64(s)))
            .collect();
        let addrs: Vec<H160> = keys.iter().map(KeyPair::address).collect();
        let mut reg_bytes = [0u8; 20];
        reg_bytes[0] = 0xEE;
        let registry = H160::from_bytes(reg_bytes);
        let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
            .with_code(registry, blockfed_vm::NATIVE_REGISTRY_CODE.to_vec());
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let mut runtime = BlockfedRuntime::new();
        runtime.register_native(registry, blockfed_vm::NativeContract::FlRegistry);

        let update = ModelUpdate::new(ClientId(0), 1, vec![0.1, 0.2, 0.3], 50);
        let txs = vec![
            register_tx(registry, &keys[0], 0),
            register_tx(registry, &keys[1], 0),
            submit_model_tx(&update, registry, &keys[0], 1),
        ];
        let block = chain.build_candidate(addrs[0], txs, 1_000, &mut runtime);
        chain.import(block, &mut runtime).unwrap();
        Fixture {
            chain,
            registry,
            keys,
            update,
        }
    }

    #[test]
    fn evidence_roundtrip() {
        let fx = fixture();
        let author = fx.keys[0].address();
        let ev = collect_evidence(&fx.chain, fx.registry, author, &fx.update).unwrap();
        assert_eq!(ev.author, author);
        assert_eq!(ev.round, 1);
        verify_evidence(&fx.chain, &ev, &fx.update).unwrap();
    }

    #[test]
    fn wrong_author_cannot_be_framed() {
        let fx = fixture();
        let not_author = fx.keys[1].address();
        assert_eq!(
            collect_evidence(&fx.chain, fx.registry, not_author, &fx.update),
            Err(AuditError::NotOnChain)
        );
    }

    #[test]
    fn tampered_model_fails_fingerprint() {
        let fx = fixture();
        let author = fx.keys[0].address();
        let ev = collect_evidence(&fx.chain, fx.registry, author, &fx.update).unwrap();
        let mut tampered = fx.update.clone();
        tampered.params[0] = 9.9;
        assert_eq!(
            verify_evidence(&fx.chain, &ev, &tampered),
            Err(AuditError::FingerprintMismatch)
        );
    }

    #[test]
    fn tampered_evidence_fields_fail() {
        let fx = fixture();
        let author = fx.keys[0].address();
        let ev = collect_evidence(&fx.chain, fx.registry, author, &fx.update).unwrap();

        let mut wrong_block = ev.clone();
        wrong_block.block_hash = blockfed_crypto::sha256::sha256(b"nope");
        assert_eq!(
            verify_evidence(&fx.chain, &wrong_block, &fx.update),
            Err(AuditError::UnknownBlock)
        );

        let mut wrong_tx = ev.clone();
        wrong_tx.tx_hash = blockfed_crypto::sha256::sha256(b"nope");
        assert_eq!(
            verify_evidence(&fx.chain, &wrong_tx, &fx.update),
            Err(AuditError::TxNotInBlock)
        );

        let mut wrong_author = ev.clone();
        wrong_author.author = fx.keys[1].address();
        // The tx exists but was signed by keys[0]: author mismatch.
        assert_eq!(
            verify_evidence(&fx.chain, &wrong_author, &fx.update),
            Err(AuditError::AuthorMismatch)
        );
    }

    #[test]
    fn unsubmitted_update_has_no_evidence() {
        let fx = fixture();
        let ghost = ModelUpdate::new(ClientId(0), 2, vec![1.0], 10);
        assert_eq!(
            collect_evidence(&fx.chain, fx.registry, fx.keys[0].address(), &ghost),
            Err(AuditError::NotOnChain)
        );
    }

    #[test]
    fn audit_error_display() {
        assert!(AuditError::NotOnChain.to_string().contains("no confirmed"));
        assert!(AuditError::BadInclusionProof.to_string().contains("merkle"));
    }
}
