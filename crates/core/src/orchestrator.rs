//! The fully coupled blockchain-based FL orchestrator.
//!
//! Every peer simultaneously (i) trains on its local shard, (ii) mines, and
//! (iii) aggregates: exactly the paper's §III architecture where "worker node,
//! as well as the aggregator, are merged into one layer". The whole run is a
//! deterministic discrete-event simulation:
//!
//! 1. at `t=0` every peer signs a registry `register` transaction and starts
//!    training round 1;
//! 2. when training finishes, the peer publishes its model: a signed
//!    `submit_model` transaction whose declared payload is the full model
//!    artifact (248 KB / 21.2 MB), gossiped to every peer together with the
//!    parameters themselves;
//! 3. miners race continuously — the winner of each exponential race (rate
//!    proportional to its contention-adjusted hash rate) builds a block from
//!    its mempool and floods it;
//! 4. a peer whose [`WaitPolicy`] is satisfied *by submissions confirmed on
//!    its own chain* evaluates every model combination on its own test set
//!    (the "consider" search), adopts the best one, records the choice on
//!    chain, and starts the next round.
//!
//! The per-peer, per-round combination accuracies are exactly the rows of the
//! paper's Tables II–IV; the wait times quantify the title's
//! "wait or not to wait" trade-off.

use std::collections::HashMap;

use blockfed_chain::{
    Blockchain, ChainStore, DifficultyController, GenesisSpec, Mempool, RetargetRule, SealPolicy,
    Transaction,
};
use blockfed_crypto::{KeyPair, H160, H256};
use blockfed_data::{Batcher, Dataset};
use blockfed_fl::{
    aggregate_with, Adversary, CandidateEvaluator, ClientId, Combination, ModelUpdate,
    StalenessDecay, Strategy, WaitPolicy,
};
use blockfed_net::{FloodScratch, GossipMode, LinkSpec, Network, NodeId, Topology, ANNOUNCE_BYTES};
use blockfed_nn::{Sequential, Sgd};
use blockfed_sim::{RngHub, Scheduler, SimDuration, SimTime, Trace};
use blockfed_telemetry::{MetricSet, NoopSink, Telemetry, TraceSink};
use blockfed_vm::{BlockfedRuntime, ComboMask, NativeContract, NATIVE_REGISTRY_CODE};
use rand::Rng;

use crate::compute::ComputeProfile;
use crate::coupling::{
    confirmed_aggregates, confirmed_submissions, record_aggregate_tx, register_tx, submit_model_tx,
    ConfirmedAggregate,
};
use crate::error::ConfigError;
use crate::faults::{validate_timeline, Fault, TimedFault};
use crate::policy::{ControllerSpec, PolicyController, PolicyDecision, PolicyEvent};

/// The orchestrator's peer ceiling: the combination mask's native width
/// ([`blockfed_vm::MAX_MASK_BITS`]). Every peer — joiners included, since a
/// joiner is dormant rather than re-registered — registers exactly once, so
/// registry indices stay inside the mask domain even at full occupancy.
/// Announce/fetch gossip plus the scratch-buffer flood router keep runs at
/// this scale tractable (the old binding constraint was event-loop cost, not
/// the on-chain encoding).
pub const MAX_PEERS: usize = blockfed_vm::MAX_MASK_BITS;

/// The fixed address the FL registry contract is deployed at in every run's
/// genesis. Public so tooling that re-imports a run's blocks (fork replay,
/// audits) can register the same native at the same address — matching the
/// runtime fingerprint the run's peers used.
pub fn registry_address() -> H160 {
    let mut bytes = [0u8; 20];
    bytes[0] = 0xFE;
    bytes[19] = 0xED;
    H160::from_bytes(bytes)
}

/// Configuration of a decentralized run.
#[derive(Debug, Clone)]
pub struct DecentralizedConfig {
    /// Communication rounds (paper: 10).
    pub rounds: u32,
    /// Local epochs per round (paper: 5).
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// When a peer stops waiting for more models (the title question).
    pub wait_policy: WaitPolicy,
    /// How a peer aggregates once its wait policy is satisfied. The paper's
    /// decentralized setting uses [`Strategy::Consider`] (the full
    /// combination search, default); [`Strategy::BestK`] caps how many local
    /// updates enter the aggregate at linear cost; and
    /// [`Strategy::NotConsider`] always averages everything usable.
    pub strategy: Strategy,
    /// Declared size of the full model artifact on chain.
    pub payload_bytes: u64,
    /// Proof-of-work difficulty (sets the block cadence together with the
    /// compute profiles).
    pub difficulty: u128,
    /// Per-peer compute (hash rate, training rate, contention).
    pub compute: ComputeProfile,
    /// Optional per-peer override of `compute` — the realistic heterogeneous
    /// setting ("stragglers") where asynchronous aggregation actually pays.
    /// Must match the peer count when set.
    pub per_peer_compute: Option<Vec<ComputeProfile>>,
    /// The paper's §III fitness gate: a received model whose standalone
    /// accuracy on the peer's own test data falls below this threshold is
    /// ignored during aggregation ("otherwise, it will be ignored"). `None`
    /// disables the gate. If every model fails the gate once all peers have
    /// reported, the single best-scoring model is used as a fallback so a
    /// round can always complete.
    pub fitness_threshold: Option<f64>,
    /// Statistical anomaly gate: drop received models whose parameter-norm
    /// z-score across the round's cohort exceeds this threshold (see
    /// [`crate::anomaly::detect_norm_outliers`]). `None` disables the gate.
    /// Non-finite (malformed) models are always dropped regardless.
    pub norm_z_threshold: Option<f64>,
    /// Degeneracy gate: drop models that predict fewer than this many
    /// distinct classes on the peer's own test data (see
    /// [`crate::anomaly::detect_degenerate`]) — the free-rider fingerprint a
    /// chance-level fitness threshold can miss. `None` disables the gate. If
    /// the gate would drop *every* candidate, it is skipped for that
    /// aggregation so rounds always stay live.
    pub degeneracy_min_classes: Option<usize>,
    /// Compromised peers and the model-poisoning attacks they mount (the
    /// paper's future-work evaluation). Applied to the peer's update after
    /// honest training, before signing and publication — so the signed
    /// transaction binds the attacker to the poisoned artefact.
    pub adversaries: Vec<Adversary>,
    /// Link profile between peers.
    pub link: LinkSpec,
    /// Network topology between peers (the paper's testbed is a full mesh).
    pub topology: Topology,
    /// How model artifacts disseminate: the default two-phase
    /// [`GossipMode::AnnounceFetch`] (digest-sized announcement floods, one
    /// targeted payload pull per peer), the legacy [`GossipMode::Full`]
    /// payload flooding, or peer-sampled [`GossipMode::Epidemic`] rumor
    /// spreading whose announcement traffic stops scaling with edge count.
    /// All modes drive bit-identical simulations — artifacts arrive over the
    /// same shortest paths at the same virtual instants — and differ only in
    /// what the traffic meters record (see
    /// [`DecentralizedRun::gossip_bytes`] and
    /// [`DecentralizedRun::fetch_bytes`]). Blocks and control transactions
    /// are digest-sized already and stay push-gossip under `Full` and
    /// `AnnounceFetch`; under `Epidemic` *everything* larger than an
    /// announcement is announced and pulled.
    pub gossip: GossipMode,
    /// Optional hierarchical aggregation: shard peers into committees that
    /// aggregate locally (tier 1, the configured [`WaitPolicy`] applied
    /// against the peer's own committee) and publish one committee-level
    /// aggregate each, which every peer merges deterministically across
    /// committees (tier 2) before advancing its round. `None` — and any spec
    /// with `count <= 1`, which the orchestrator normalizes away — is the
    /// flat topology and reproduces the unsharded run byte for byte.
    pub committees: Option<crate::committee::CommitteeSpec>,
    /// Optional staleness-aware re-weighting of aggregated updates: an
    /// update's FedAvg weight is scaled by `decay.factor(s)` where `s` is how
    /// many blocks its submission is buried under at aggregation time (the
    /// age-of-block staleness). `None` keeps the paper's uniform weighting.
    pub staleness_decay: Option<StalenessDecay>,
    /// Timed fault and churn events injected into the run (partitions, peer
    /// join/leave, hash-rate shocks). A peer with a [`Fault::PeerJoin`] entry
    /// is dormant from genesis until its join fires.
    pub faults: Vec<TimedFault>,
    /// How mining difficulty retargets as block intervals drift from the
    /// cadence `difficulty` implies at genesis. The default
    /// [`RetargetRule::Homestead`] takes the fixed ±1/2048 step per block —
    /// effectively the legacy constant-difficulty behaviour — while the
    /// adaptive rules ([`RetargetRule::Pi`], [`RetargetRule::MovingAverage`])
    /// restore the configured cadence after hash-rate shocks instead of
    /// letting them shift block production permanently.
    pub retarget: RetargetRule,
    /// Liveness watchdog: if no progress (a training completion, a first-time
    /// artifact arrival, or a round aggregation — block seals do not count,
    /// they continue through a stall) happens for this much virtual time
    /// while no fault is still pending, the run stops with a diagnostic in
    /// [`DecentralizedRun::stall`] instead of spinning until the event cap.
    /// `None` disables the monitor. The watchdog draws no randomness and a
    /// run that makes progress never observes it, so enabling it cannot
    /// perturb a healthy simulation.
    pub watchdog: Option<SimDuration>,
    /// Mid-run aggregation-strategy switch: `Some((r, s))` makes every round
    /// ≥ `r` aggregate under `s` instead of
    /// [`DecentralizedConfig::strategy`]. The fork-replay API uses this to
    /// re-run a suffix of a finished run under a different strategy (e.g.
    /// "replay round 40 under BestK instead of Consider") while the shared
    /// [`ChainStore`] serves the unchanged prefix from its memo.
    pub strategy_switch: Option<(u32, Strategy)>,
    /// The chain store the run's peers share: `None` (the default) gives the
    /// run a fresh private store dropped with it; `Some(handle)` lets a
    /// caller share one store across *sequential* runs (fork replay, memory
    /// checks) or inspect entry counts afterwards. The orchestrator calls
    /// [`ChainStore::begin_epoch`] at run start, so entries untouched for a
    /// full run age out instead of accumulating.
    pub store: Option<ChainStore>,
    /// State-snapshot cadence of every peer's chain (see
    /// [`Blockchain::with_snapshot_interval`]). `None` keeps the chain's
    /// default interval. Part of the store configuration, so two otherwise
    /// identical runs differing only here are distinct configurations.
    pub snapshot_interval: Option<u64>,
    /// Opt-in state pruning depth of every peer's chain (see
    /// [`Blockchain::with_prune_depth`]). `None` disables pruning.
    pub prune_depth: Option<u64>,
    /// Optional adaptive policy controller (see [`ControllerSpec`]): observes
    /// each round's wait time, staleness, fork rate, straggler spread, and
    /// accuracy delta and may switch the wait policy, aggregation strategy,
    /// or staleness decay **from the next round on**. Decisions land in
    /// [`DecentralizedRun::policy_events`] and draw randomness only from the
    /// dedicated `"policy-controller"` RNG stream, so a controller that never
    /// fires reproduces the static run bit for bit.
    pub controller: Option<ControllerSpec>,
    /// Master seed.
    pub seed: u64,
}

impl Default for DecentralizedConfig {
    fn default() -> Self {
        DecentralizedConfig {
            rounds: 10,
            local_epochs: 5,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            wait_policy: WaitPolicy::All,
            strategy: Strategy::Consider,
            payload_bytes: 253_952, // SimpleNN's 248 KB
            difficulty: 3_000_000,  // ≈13 s blocks with 3 paper_vm miners
            compute: ComputeProfile::paper_vm(),
            per_peer_compute: None,
            fitness_threshold: None,
            norm_z_threshold: None,
            degeneracy_min_classes: None,
            adversaries: Vec::new(),
            link: LinkSpec::lan(),
            topology: Topology::FullMesh,
            gossip: GossipMode::AnnounceFetch,
            committees: None,
            staleness_decay: None,
            faults: Vec::new(),
            retarget: RetargetRule::Homestead,
            watchdog: Some(SimDuration::from_secs(600)),
            strategy_switch: None,
            store: None,
            snapshot_interval: None,
            prune_depth: None,
            controller: None,
            seed: 42,
        }
    }
}

/// One peer's record of one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerRoundRecord {
    /// 1-based round.
    pub round: u32,
    /// Accuracy of every evaluated combination on this peer's own test set,
    /// labelled owner-first as in the paper's tables (`"B,A"` etc.).
    pub combos: Vec<(String, f64)>,
    /// The combination this peer adopted.
    pub chosen: String,
    /// Its accuracy.
    pub chosen_accuracy: f64,
    /// How long the peer waited between finishing local training and
    /// aggregating (propagation + mining + policy wait).
    pub wait: SimDuration,
    /// Virtual time of the aggregation.
    pub aggregated_at: SimTime,
    /// How many confirmed updates entered the aggregation.
    pub updates_used: usize,
    /// Mean age of the aggregated updates — the time between a model being
    /// published and this peer consuming it (Wilhelmi et al.'s age-of-block
    /// freshness metric).
    pub update_age_mean: SimDuration,
    /// Maximum update age in this aggregation.
    pub update_age_max: SimDuration,
    /// Clients whose models this peer dropped before aggregation, with the
    /// reason (`"A:malformed"`, `"B:norm-outlier"`, `"C:degenerate"`,
    /// `"C:unfit"`).
    pub dropped: Vec<String>,
}

impl PeerRoundRecord {
    /// Looks up a combination's accuracy by its label.
    pub fn accuracy_of(&self, label: &str) -> Option<f64> {
        self.combos
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, a)| *a)
    }
}

/// Chain-side statistics of a run (measured on peer 0's canonical chain).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStats {
    /// Canonical blocks (excluding genesis).
    pub blocks: usize,
    /// Mean interval between canonical blocks.
    pub mean_block_interval: Option<SimDuration>,
    /// Successful transactions included.
    pub total_txs: usize,
    /// Total gas used.
    pub total_gas: u64,
    /// Total declared model payload bytes carried.
    pub total_payload_bytes: u64,
}

/// Post-run non-repudiation audit of one published model update: whether a
/// signed, merkle-anchored, proof-of-work-buried evidence bundle binding the
/// update to its author could be collected from peer 0's canonical chain and
/// independently verified (see [`crate::nonrepudiation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditRecord {
    /// The update's author.
    pub client: ClientId,
    /// Communication round of the update.
    pub round: u32,
    /// Whether evidence was collected and verified.
    pub verified: bool,
}

/// The complete result of a decentralized run.
#[derive(Debug)]
pub struct DecentralizedRun {
    /// Per-peer, per-round records (`peer_records[peer][round-1]`).
    pub peer_records: Vec<Vec<PeerRoundRecord>>,
    /// Chain statistics.
    pub chain: ChainStats,
    /// Timestamped event log.
    pub trace: Trace,
    /// Virtual time at which the last peer finished the last round.
    pub finished_at: SimTime,
    /// Every model update published during the run (poisoned ones included —
    /// the attack mutates parameters *before* signing, so authorship binds).
    pub published_updates: Vec<ModelUpdate>,
    /// One non-repudiation audit per published update, against peer 0's
    /// canonical chain. Updates a wait-`k` policy left unconfirmed at the end
    /// of the final round audit as `verified: false`.
    pub audits: Vec<AuditRecord>,
    /// Total blocks sealed anywhere during the run (canonical or not).
    pub blocks_sealed: usize,
    /// Total bytes crossing links during gossip *floods* (each message
    /// counted once per relay edge it traverses). Under
    /// [`GossipMode::AnnounceFetch`] artifact floods carry only digest-sized
    /// announcements, so this is the O(edges × digest) term; the payload
    /// movement lands in [`DecentralizedRun::fetch_bytes`]. Under
    /// [`GossipMode::Full`] everything — payload floods and recovery fetches
    /// — folds in here, reproducing the legacy accounting byte for byte.
    pub gossip_bytes: u64,
    /// Total bytes of targeted payload pulls under
    /// [`GossipMode::AnnounceFetch`]: one artifact copy per receiving peer
    /// over its shortest open path, recovery fetches included. Bytes are
    /// counted per relay edge the pull crosses (payload × path hops), so on
    /// a full mesh this is exactly `payload × (N−1)` per artifact — the
    /// O(N) term — while sparse topologies additionally pay their relay
    /// distances. Always zero under [`GossipMode::Full`].
    pub fetch_bytes: u64,
    /// Per-peer artifact inventory at run end: the sorted fingerprints of
    /// every model payload the peer holds. The gossip-mode equivalence suite
    /// asserts these sets are identical between `Full` and `AnnounceFetch`
    /// under churn and timed partitions.
    pub artifacts: Vec<Vec<H256>>,
    /// Every aggregate decision confirmed on peer 0's canonical chain, read
    /// back through the registry's packed mask storage — the evidence that a
    /// run's member sets (32-peer-plus ones included) survived the on-chain
    /// round trip.
    pub aggregates: Vec<ConfirmedAggregate>,
    /// Every counter, gauge, and histogram the run folded: resilience meters
    /// (`dropped_msgs`, `fetch_retries`, `fetch_recoveries`, `fetch_gave_up`,
    /// `reorgs` counters; `recovery_ms`, `stalled` gauges) and the per-phase
    /// timing distributions (`train_secs`, `wait_secs`, `staleness_secs`,
    /// `fetch_ms`, `block_interval_secs` histograms). Deterministic: folded
    /// in event-loop order from virtual-time quantities only, so two runs of
    /// the same seed produce equal sets — the named accessors below keep the
    /// legacy one-field-per-meter API working.
    pub metrics: MetricSet,
    /// `Some(diagnostic)` when the liveness watchdog stopped a stalled run
    /// (see [`DecentralizedConfig::watchdog`]); `None` for a clean finish.
    pub stall: Option<String>,
    /// Every decision the adaptive policy controller applied, in virtual-time
    /// order (see [`DecentralizedConfig::controller`]). Empty for static runs
    /// and for controllers that never fire.
    pub policy_events: Vec<PolicyEvent>,
    /// Peer 0's blockchain at run end — an `Arc`-backed view over the run's
    /// shared storage (cheap to hold). [`Blockchain::fork_at`] on it, with
    /// the run's [`ChainStore`] passed to a follow-up run's config, replays
    /// any suffix of the finished run without re-executing the prefix.
    pub final_chain: Blockchain,
}

impl DecentralizedRun {
    /// Deliveries lost in transit: per-edge packet loss sampled on the relay
    /// tree plus in-flight partition/relay-crash cuts. Exactly zero on a
    /// lossless, fault-free run. (The `dropped_msgs` counter.)
    pub fn dropped_msgs(&self) -> u64 {
        self.metrics.counter("dropped_msgs")
    }

    /// Timeout-driven payload-fetch retries: every probe launched beyond a
    /// fetch episode's first attempt. Zero when every pull lands first try.
    /// (The `fetch_retries` counter.)
    pub fn fetch_retries(&self) -> u64 {
        self.metrics.counter("fetch_retries")
    }

    /// Mean virtual milliseconds between a payload fetch starting and the
    /// artifact arriving, over episodes that recovered — including active
    /// fetch time burned by earlier attempts on the same artifact that
    /// exhausted their budget before a later confirming block restarted the
    /// chase. Zero when no on-demand fetch was needed. (The `recovery_ms`
    /// gauge.)
    pub fn recovery_ms(&self) -> f64 {
        self.metrics.gauge("recovery_ms")
    }

    /// Knob changes the adaptive policy controller applied during the run
    /// (the `policy_switches` counter).
    pub fn policy_switches(&self) -> u64 {
        self.metrics.counter("policy_switches")
    }

    /// Tier-2 committee merges completed across all peers (the
    /// `committee_rounds` counter). Zero for flat runs.
    pub fn committee_rounds(&self) -> u64 {
        self.metrics.counter("committee_rounds")
    }

    /// Flood bytes attributable to the committee tier: leader record floods,
    /// committee-aggregate announcements, and tier-2 merge records (the
    /// `tier2_gossip_bytes` counter; a subset of
    /// [`DecentralizedRun::gossip_bytes`]). Zero for flat runs.
    pub fn tier2_gossip_bytes(&self) -> u64 {
        self.metrics.counter("tier2_gossip_bytes")
    }

    /// Pulled-payload bytes attributable to the committee tier:
    /// committee-aggregate artifact pulls and their loss recovery (the
    /// `tier2_fetch_bytes` counter; a subset of
    /// [`DecentralizedRun::fetch_bytes`]). Zero for flat runs.
    pub fn tier2_fetch_bytes(&self) -> u64 {
        self.metrics.counter("tier2_fetch_bytes")
    }

    /// Mean aggregation wait across all peers and rounds.
    pub fn mean_wait(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut n = 0u64;
        for peer in &self.peer_records {
            for r in peer {
                total += r.wait;
                n += 1;
            }
        }
        if n == 0 {
            SimDuration::ZERO
        } else {
            total / n
        }
    }

    /// Final-round chosen accuracy of a peer.
    pub fn final_accuracy(&self, peer: usize) -> f64 {
        self.peer_records[peer]
            .last()
            .map(|r| r.chosen_accuracy)
            .unwrap_or(0.0)
    }

    /// Age-of-block statistics pooled across all peers and rounds (exact
    /// pooled mean and true maximum, reconstructed from the per-round
    /// summaries).
    pub fn age_of_block(&self) -> blockfed_fl::AgeOfBlock {
        let mut age = blockfed_fl::AgeOfBlock::new();
        for peer in &self.peer_records {
            for r in peer {
                age.record_summary(
                    r.updates_used as u64,
                    r.update_age_mean.as_secs_f64(),
                    r.update_age_max.as_secs_f64(),
                );
            }
        }
        age
    }

    /// Fraction of sealed blocks that did not make peer 0's canonical chain —
    /// the fork (orphan) rate of the run. Zero when every sealed block landed
    /// on the winning chain.
    pub fn fork_rate(&self) -> f64 {
        if self.blocks_sealed == 0 {
            0.0
        } else {
            1.0 - (self.chain.blocks.min(self.blocks_sealed) as f64 / self.blocks_sealed as f64)
        }
    }

    /// Every byte the run put on the wire: flood traffic plus targeted
    /// payload pulls. The quantity to compare across gossip modes — the
    /// split between [`DecentralizedRun::gossip_bytes`] and
    /// [`DecentralizedRun::fetch_bytes`] is what the mode changes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.gossip_bytes + self.fetch_bytes
    }

    /// Highest participant index set in any on-chain aggregate mask, or
    /// `None` when nothing confirmed. A value ≥ 32 proves the run exercised
    /// the variable-width (post-u32) mask path end to end.
    pub fn max_mask_bit(&self) -> Option<usize> {
        self.aggregates
            .iter()
            .filter_map(|a| a.combo_mask.max_bit())
            .max()
    }

    /// Every drop (client excluded from an aggregation) across the run, as
    /// `(peer, round, reason)` tuples — the detection log the non-repudiation
    /// audit then acts on.
    pub fn drops(&self) -> Vec<(usize, u32, String)> {
        let mut out = Vec::new();
        for (peer, records) in self.peer_records.iter().enumerate() {
            for r in records {
                for d in &r.dropped {
                    out.push((peer, r.round, d.clone()));
                }
            }
        }
        out
    }
}

/// Scores candidate aggregates on a test set using one scratch model per
/// compute worker, so a round's combination search (the paper's "consider"
/// loop, exponential in peer count) runs across cores. Every evaluation
/// resets its scratch's parameters first, so scores are identical at any
/// pool size.
struct PoolScorer<'a> {
    pool: &'a mut [Sequential],
    test: &'a Dataset,
}

impl CandidateEvaluator for PoolScorer<'_> {
    fn score_batch(&mut self, candidates: &[&[f32]]) -> Vec<f64> {
        let test = self.test;
        blockfed_compute::par_map_with(self.pool, candidates, |model, params| {
            model.set_params_flat(params);
            model.evaluate(test).accuracy
        })
    }
}

#[derive(Debug)]
enum Event {
    /// Local training finished. `gen` is the peer's training generation at
    /// schedule time: a crash bumps the generation, so a completion that was
    /// in flight when the process died arrives stale and is discarded.
    TrainDone {
        peer: usize,
        gen: u32,
    },
    DeliverTx {
        to: usize,
        idx: usize,
        route: usize,
    },
    DeliverBlock {
        to: usize,
        idx: usize,
        route: usize,
    },
    /// A committee-level aggregate artifact arriving at a peer (hierarchical
    /// runs only). `idx` indexes the run's aggregate artifact log.
    DeliverAgg {
        to: usize,
        idx: usize,
        route: usize,
    },
    SealBlock,
    Fault {
        idx: usize,
    },
    /// Deadline of fetch attempt `attempt` for `(to, fp)`: if the artifact
    /// still has not arrived, the fetch retries from the next holder.
    FetchTimeout {
        to: usize,
        fp: H256,
        attempt: u32,
    },
    /// Periodic liveness check (only scheduled when the watchdog is on).
    Watchdog,
}

/// A fetch gives up after this many timeout-driven retries; a later block
/// delivery restarts the cycle from scratch, so the budget bounds work per
/// episode without abandoning the artifact forever.
const MAX_FETCH_ATTEMPTS: u32 = 8;

/// Exponential backoff before fetch attempt `attempt + 1`: 250 ms doubling
/// per attempt with ±10% jitter, capped at 8 s. The jitter draws from a
/// dedicated RNG stream so lossless, fault-free runs — which never retry —
/// consume exactly the randomness they did before retries existed.
fn fetch_backoff(attempt: u32, rng: &mut impl Rng) -> SimDuration {
    let base = 0.25 * f64::from(1u32 << attempt.min(6));
    let jitter = rng.gen_range(0.9..1.1);
    SimDuration::from_secs_f64((base * jitter).min(8.0))
}

/// One in-flight payload fetch: which attempt it is on, who was asked first
/// (the confirming block's miner), when the episode started (for the
/// recovery-time metric), time already burned by earlier gave-up episodes for
/// the same artifact, and its open telemetry span.
struct FetchState {
    attempt: u32,
    primary: usize,
    first_at: SimTime,
    /// Active fetch time spent by earlier episodes for this `(peer, artifact)`
    /// that exhausted their attempt budget before the next confirming block
    /// restarted the cycle. Folded into the recovery metric on success, so
    /// `recovery_ms` reflects the full time the artifact was being chased —
    /// not just the final episode.
    carried: SimDuration,
    payload_bytes: u64,
    tx_idx: usize,
    span: u64,
}

/// One round's effective aggregation knobs.
#[derive(Clone, Copy)]
struct RoundPolicy {
    wait: WaitPolicy,
    strategy: Strategy,
    decay: Option<StalenessDecay>,
}

/// The per-round policy state threaded through the event loop: the effective
/// knobs for every round (static config, `strategy_switch`, and controller
/// decisions all resolve here), the controller itself, its dedicated RNG
/// stream, and the decision log.
///
/// Invariant: round `r`'s policy never changes once any peer can be waiting
/// in it — the controller observes round `r` at its *first* aggregation and
/// its decisions apply to rounds `r + 1` onward only, so a wait bar can never
/// move under a peer mid-wait.
struct PolicyEngine {
    /// Effective policy per round, indexed 1-based (`slot 0` unused).
    by_round: Vec<RoundPolicy>,
    controller: Option<Box<dyn PolicyController>>,
    rng: rand::rngs::StdRng,
    decisions: Vec<PolicyEvent>,
    /// Highest round already observed by the controller (each round is
    /// observed once, at its first aggregation anywhere).
    last_observed: u32,
    /// Accuracy of the previous observation, for the delta signal.
    prev_accuracy: Option<f64>,
    /// The configured replay cutover, re-imposed over controller decisions
    /// (an explicit `strategy_switch` is a directive, not a default).
    strategy_switch: Option<(u32, Strategy)>,
    /// Whether the replay cutover has fired (noted once as progress).
    cutover_noted: bool,
    /// Blocks sealed so far (updated at each seal), for the fork-rate signal.
    blocks_sealed: u64,
}

impl PolicyEngine {
    fn new(cfg: &DecentralizedConfig, hub: &RngHub) -> Self {
        let rounds = cfg.rounds as usize;
        let by_round = (0..=rounds)
            .map(|r| RoundPolicy {
                wait: cfg.wait_policy,
                strategy: match cfg.strategy_switch {
                    Some((from, s)) if r as u32 >= from => s,
                    _ => cfg.strategy,
                },
                decay: cfg.staleness_decay,
            })
            .collect();
        PolicyEngine {
            by_round,
            controller: cfg.controller.as_ref().map(ControllerSpec::build),
            rng: hub.stream("policy-controller"),
            decisions: Vec::new(),
            last_observed: 0,
            prev_accuracy: None,
            strategy_switch: cfg.strategy_switch,
            cutover_noted: false,
            blocks_sealed: 0,
        }
    }

    fn slot(&self, round: u32) -> &RoundPolicy {
        &self.by_round[(round as usize).min(self.by_round.len() - 1)]
    }

    fn wait(&self, round: u32) -> WaitPolicy {
        self.slot(round).wait
    }

    fn strategy(&self, round: u32) -> Strategy {
        self.slot(round).strategy
    }

    fn decay(&self, round: u32) -> Option<StalenessDecay> {
        self.slot(round).decay
    }

    /// Feeds the controller one round observation and applies its decisions
    /// to every round after `obs.round`. Returns the applied decisions (empty
    /// when no controller is set or it stays quiet).
    fn observe(
        &mut self,
        obs: &crate::policy::RoundObservation,
        at: SimTime,
    ) -> Vec<PolicyDecision> {
        let Some(ctl) = self.controller.as_mut() else {
            return Vec::new();
        };
        let decisions = ctl.decide(obs, &mut self.rng);
        let from = (obs.round as usize + 1).min(self.by_round.len());
        for d in &decisions {
            for slot in &mut self.by_round[from..] {
                match *d {
                    PolicyDecision::SetWaitPolicy(w) => slot.wait = w,
                    PolicyDecision::SetStrategy(s) => slot.strategy = s,
                    PolicyDecision::SetStalenessDecay(dec) => slot.decay = dec,
                }
            }
            self.decisions.push(PolicyEvent {
                round: obs.round,
                at,
                decision: *d,
            });
        }
        // An explicit replay cutover outranks the controller: re-impose it
        // over whatever strategy the decisions just wrote.
        if let Some((from_round, s)) = self.strategy_switch {
            for (r, slot) in self.by_round.iter_mut().enumerate() {
                if r as u32 >= from_round {
                    slot.strategy = s;
                }
            }
        }
        decisions
    }
}

/// The run's observability state, threaded through the event loop as one
/// handle: the legacy string [`Trace`], the structured [`Telemetry`] emitter,
/// the folded [`MetricSet`], the watchdog's progress clock, and the open-span
/// bookkeeping that turns discrete events into per-peer round timelines
/// (`round` ⊃ `round.train` → `round.wait`).
///
/// Span slots are updated unconditionally — ids are allocated even under a
/// [`NoopSink`] — so instrumented state never depends on whether anyone is
/// listening (the invariance proof relies on this).
struct Obs<'s> {
    trace: Trace,
    tel: Telemetry<'s>,
    metrics: MetricSet,
    /// Virtual time of the last liveness-relevant event (see
    /// [`DecentralizedConfig::watchdog`]).
    last_progress: SimTime,
    /// Most recent telemetry event per peer, cited by the watchdog's stall
    /// diagnostic so a stuck run names what each peer last did.
    last_event: Vec<Option<(SimTime, &'static str)>>,
    /// Open `round` span per peer: `(span id, opened at)`.
    round_span: Vec<Option<(u64, SimTime)>>,
    /// Open `round.train` span per peer.
    train_span: Vec<Option<(u64, SimTime)>>,
    /// Open `round.wait` span per peer.
    wait_span: Vec<Option<(u64, SimTime)>>,
}

impl<'s> Obs<'s> {
    fn new(n: usize, sink: &'s mut dyn TraceSink) -> Self {
        Obs {
            trace: Trace::new(),
            tel: Telemetry::new(sink),
            metrics: MetricSet::new(),
            last_progress: SimTime::ZERO,
            last_event: vec![None; n],
            round_span: vec![None; n],
            train_span: vec![None; n],
            wait_span: vec![None; n],
        }
    }

    /// Notes a peer-attributed event for the watchdog diagnostic.
    fn note(&mut self, peer: usize, now: SimTime, what: &'static str) {
        self.last_event[peer] = Some((now, what));
    }

    /// Opens the `round` and `round.train` spans as a peer starts (or, after
    /// a crash-restart, re-starts) training. A round span left open by a
    /// crash is resumed, not reopened.
    fn begin_training(&mut self, peer: usize, now: SimTime, round: u32) {
        if self.round_span[peer].is_none() {
            let id = self
                .tel
                .begin(now, "round", peer as u32, || vec![("round", round.into())]);
            self.round_span[peer] = Some((id, now));
        }
        let id = self.tel.begin(now, "round.train", peer as u32, || {
            vec![("round", round.into())]
        });
        self.train_span[peer] = Some((id, now));
        self.note(peer, now, "train.start");
    }

    /// Closes the train span and opens the wait span as the peer publishes
    /// its model — the instant the title's "wait or not to wait" clock
    /// starts ticking.
    fn training_done(&mut self, peer: usize, now: SimTime, round: u32) {
        if let Some((id, opened)) = self.train_span[peer].take() {
            self.tel.end(now, "round.train", peer as u32, id, Vec::new);
            self.metrics
                .observe("train_secs", now.saturating_since(opened).as_secs_f64());
        }
        let id = self.tel.begin(now, "round.wait", peer as u32, || {
            vec![("round", round.into())]
        });
        self.wait_span[peer] = Some((id, now));
        self.note(peer, now, "train.done");
        self.last_progress = now;
    }

    /// Closes the wait and round spans as the peer aggregates.
    fn aggregated(&mut self, peer: usize, now: SimTime) {
        if let Some((id, _)) = self.wait_span[peer].take() {
            self.tel.end(now, "round.wait", peer as u32, id, Vec::new);
        }
        if let Some((id, _)) = self.round_span[peer].take() {
            self.tel.end(now, "round", peer as u32, id, Vec::new);
        }
        self.note(peer, now, "round.aggregated");
        self.last_progress = now;
    }

    /// Aborts a crashed peer's in-progress phase spans. The round span stays
    /// open: identity and round position survive a crash, so the round
    /// resumes when the peer restarts.
    fn crash_aborts(&mut self, peer: usize, now: SimTime) {
        if let Some((id, _)) = self.train_span[peer].take() {
            self.tel.end(now, "round.train", peer as u32, id, || {
                vec![("aborted", true.into())]
            });
        }
        if let Some((id, _)) = self.wait_span[peer].take() {
            self.tel.end(now, "round.wait", peer as u32, id, || {
                vec![("aborted", true.into())]
            });
        }
        self.note(peer, now, "churn.crash");
    }

    /// Closes every span still open at run end (a stall, a dormant joiner
    /// that never fired, or simply the last settle instant).
    fn close_open_spans(&mut self, at: SimTime) {
        for peer in 0..self.round_span.len() {
            for (slot, name) in [
                (&mut self.wait_span[peer], "round.wait"),
                (&mut self.train_span[peer], "round.train"),
                (&mut self.round_span[peer], "round"),
            ] {
                if let Some((id, _)) = slot.take() {
                    self.tel.end(at, name, peer as u32, id, || {
                        vec![("truncated", true.into())]
                    });
                }
            }
        }
    }
}

struct PeerState {
    key: KeyPair,
    chain: Blockchain,
    mempool: Mempool,
    runtime: BlockfedRuntime,
    next_nonce: u64,
    model_store: HashMap<H256, ModelUpdate>,
    orphans: Vec<usize>,
    current_round: u32,
    training: bool,
    train_done_at: Option<SimTime>,
    global_params: Vec<f32>,
    records: Vec<PeerRoundRecord>,
    /// Indices into the run's tx log of every transaction this peer authored.
    /// Re-inserted into the local mempool after each import so a reorg that
    /// unwinds a fork cannot silently discard them (the peer re-broadcasts
    /// its pending transactions, as real clients do).
    my_txs: Vec<usize>,
    /// Whether the peer currently participates (false before a `PeerJoin`
    /// fires, after a `PeerLeave`, or between a `PeerCrash` and its
    /// `PeerRestart`).
    active: bool,
    /// Training generation, bumped on every crash so in-flight `TrainDone`
    /// events scheduled before the crash arrive stale and are ignored.
    train_gen: u32,
    /// First round this peer participates in (1 unless it joined mid-run).
    first_round: u32,
    /// Cumulative hash-rate multiplier from `HashRateShock` faults.
    hash_scale: f64,
    /// Memoized [`confirmed_submissions`] scan of this peer's chain. The
    /// chain only changes on block import, yet the scan used to run on every
    /// delivered transaction — the dominant event-loop cost at large N. Keyed
    /// on (head hash, round); any head movement or round advance recomputes.
    confirmed_cache: Option<ConfirmedCache>,
    /// Hierarchical runs only: set between this peer's tier-1 (committee)
    /// aggregation and its tier-2 cross-committee merge. Like the round
    /// position it survives a crash — the tier-1 record is already in
    /// `records`, so losing the pending state would strand the round.
    tier1: Option<Tier1Pending>,
    /// Hierarchical runs only: committee-level aggregate artifacts this peer
    /// holds, mapping aggregate fingerprint to the run's aggregate log. Like
    /// `model_store`, survives a crash (artifacts are on disk).
    agg_store: HashMap<H256, usize>,
    /// Memoized [`crate::coupling::confirmed_aggregate_records`] scan for the
    /// tier-2 readiness check, keyed like `confirmed_cache`.
    agg_records_cache: Option<AggRecordsCache>,
}

struct ConfirmedCache {
    head: H256,
    round: u32,
    subs: Vec<crate::coupling::ConfirmedSubmission>,
}

/// A peer's state between tier-1 committee aggregation and the tier-2 merge.
#[derive(Clone)]
struct Tier1Pending {
    round: u32,
    /// When tier-1 aggregation completed (the tier-2 merge wait clock).
    done_at: SimTime,
    /// FedAvg weight of the peer's own committee aggregate (sample counts of
    /// the updates it consumed).
    weight: u64,
    /// Members of the peer's own committee aggregate, for the tier-2 union
    /// mask.
    members: Vec<usize>,
}

struct AggRecordsCache {
    head: H256,
    round: u32,
    records: Vec<crate::coupling::AggregateRecord>,
}

/// The run's resolved committee layout: the committee count and the
/// peer→committee map derived once from the spec. Immutable for the whole
/// run, so every peer (and every thread) sees the same sharding.
struct CommitteeCtx {
    count: usize,
    of: Vec<usize>,
}

/// One published committee-level aggregate, indexed by the run's aggregate
/// log (events carry the index, not the parameters).
struct AggArtifact {
    hash: H256,
    params: Vec<f32>,
    /// FedAvg weight for the tier-2 merge: sample counts behind the chosen
    /// tier-1 combination.
    weight: u64,
    round: u32,
}

/// Refreshes `peer`'s memoized confirmed `record_aggregate` scan (tier-2
/// readiness input) if its chain head or round moved since the last call.
fn refresh_agg_records(peer: &mut PeerState, registry: H160, round: u32) {
    let head = peer.chain.head();
    let fresh = matches!(&peer.agg_records_cache, Some(c) if c.head == head && c.round == round);
    if !fresh {
        let records = crate::coupling::confirmed_aggregate_records(&peer.chain, registry, round);
        peer.agg_records_cache = Some(AggRecordsCache {
            head,
            round,
            records,
        });
    }
}

/// Refreshes `peer`'s memoized confirmed-submission scan if its chain head
/// or round moved since the last call.
fn refresh_confirmed(peer: &mut PeerState, registry: H160, round: u32) {
    let head = peer.chain.head();
    let fresh = matches!(&peer.confirmed_cache, Some(c) if c.head == head && c.round == round);
    if !fresh {
        let mut subs = confirmed_submissions(&peer.chain, registry, round);
        // Canonical candidate order: chain position reflects delivery and
        // mining timing, which packet loss and retried fetches perturb.
        // Sorting by submitter makes every aggregation (including its
        // tie-break jitter assignment) a function of the round's model set
        // alone, so a lossy run that recovers every artifact aggregates
        // exactly what its lossless twin does.
        subs.sort_by_key(|s| (s.sender, s.tx_hash));
        peer.confirmed_cache = Some(ConfirmedCache { head, round, subs });
    }
}

impl PeerState {
    fn done(&self, total_rounds: u32) -> bool {
        self.first_round > total_rounds
            || (self.tier1.is_none()
                && self.records.len() as u32 >= total_rounds + 1 - self.first_round)
    }
}

/// The run-wide gossip plumbing: the dissemination mode, the traffic meters
/// it splits bytes across, the reusable flood-routing scratch, and the relay
/// paths of deliveries still in flight.
struct GossipState {
    mode: GossipMode,
    /// Whether relay paths must be recorded for in-flight cut checks. Only a
    /// timeline that can sever a link ([`Fault::Partition`]) or kill a relay
    /// ([`Fault::PeerLeave`], [`Fault::PeerCrash`]) ever consults a path, so
    /// fault-free runs skip the per-delivery path clone entirely (an empty
    /// path always passes [`Network::path_open`] and [`relays_alive`]).
    track_routes: bool,
    scratch: FloodScratch,
    /// Relay path of every scheduled delivery (for in-flight cut checks).
    route_log: Vec<Vec<(NodeId, NodeId)>>,
    gossip_bytes: u64,
    fetch_bytes: u64,
    /// Deliveries lost in transit: per-edge packet loss on the relay tree
    /// plus in-flight partition/relay-crash cuts.
    dropped_msgs: u64,
    /// Dedicated RNG stream for [`GossipMode::Epidemic`]'s neighbor sampling.
    /// Always created (streams are mutually independent, so an unused stream
    /// perturbs nothing) but drawn from only when the mode is epidemic.
    epidemic_rng: rand::rngs::StdRng,
}

/// One resolved targeted fetch: the payload's arrival offset, how many relay
/// edges it crosses, and the recorded path (empty when routes are untracked).
struct FetchRoute {
    delay: SimDuration,
    hops: u64,
    path: Vec<(NodeId, NodeId)>,
}

/// Schedules one flood's deliveries to currently active peers, records each
/// delivery's relay path when the timeline can cut one mid-flight, and meters
/// the traffic. A control flood (`artifact == false`) pushes `bytes` once per
/// relay edge under [`GossipMode::Full`] and [`GossipMode::AnnounceFetch`].
/// An artifact flood depends on the gossip mode: [`GossipMode::Full`] pushes
/// the whole payload per edge, while [`GossipMode::AnnounceFetch`] floods a
/// digest-sized announcement per edge and meters one targeted payload pull
/// per *pulling* peer (`pulls`; a hierarchical run scopes model pulls to the
/// sender's committee) over its shortest path. [`GossipMode::Epidemic`]
/// announces *every* message larger than an announcement — blocks and
/// control transactions included — and replaces the per-edge announcement
/// cost with `ANNOUNCE_BYTES ×` the transmissions of a fanout-sampled rumor
/// sweep drawn from the dedicated epidemic stream. The delivery schedule is
/// the flood's shortest-path tree in every mode, so the simulation is
/// bit-identical across modes and only the meters differ.
#[allow(clippy::too_many_arguments)]
fn schedule_flood(
    network: &Network,
    origin: usize,
    bytes: u64,
    artifact: bool,
    now: SimTime,
    peers: &[PeerState],
    rng: &mut impl Rng,
    sched: &mut Scheduler<Event>,
    gs: &mut GossipState,
    tel: &mut Telemetry<'_>,
    mk: impl Fn(usize, usize) -> Event,
    pulls: impl Fn(usize) -> bool,
) {
    // Crash-stopped and dormant peers neither receive nor relay: route over
    // the active subgraph.
    gs.scratch.set_avoid(peers.iter().map(|p| !p.active));
    // An artifact no larger than the announcement is inlined in it — pulling
    // it separately would only add a request round and double-count bytes —
    // so announce/fetch engages strictly above the announcement size, which
    // keeps `gossip_bytes(AnnounceFetch) ≤ gossip_bytes(Full)` for every
    // payload and strictly `<` whenever a real artifact floods.
    let announce = match (artifact, gs.mode) {
        (true, GossipMode::AnnounceFetch) if bytes > ANNOUNCE_BYTES => Some(ANNOUNCE_BYTES),
        (_, GossipMode::Epidemic { .. }) if bytes > ANNOUNCE_BYTES => Some(ANNOUNCE_BYTES),
        _ => None,
    };
    sched.reserve(network.len());
    let GossipState {
        scratch,
        route_log,
        fetch_bytes,
        track_routes,
        ..
    } = gs;
    let stats = network.flood_with(NodeId(origin), bytes, rng, scratch, |node, delay, path| {
        if announce.is_some() && pulls(node.0) {
            *fetch_bytes += bytes * path.len() as u64;
        }
        let route = route_log.len();
        route_log.push(if *track_routes {
            path.to_vec()
        } else {
            Vec::new()
        });
        sched.schedule_after(delay, mk(node.0, route));
    });
    // Every delivery path lies on the flood's shortest-path tree and each
    // reached node contributes exactly its own tree edge, so the number of
    // distinct relay edges equals the delivery count. Lost deliveries never
    // crossed their last edge, so they meter no bytes — only the drop count.
    match gs.mode {
        GossipMode::Epidemic { fanout } if announce.is_some() => {
            // The rumor sweep reuses the flood scratch (its avoid mask is
            // already the active-peer mask; `prepare` re-stamps the epoch)
            // and draws only from the epidemic stream, so the flood schedule
            // above is untouched.
            let transmissions = network.epidemic_transmissions(
                NodeId(origin),
                fanout,
                &mut gs.scratch,
                &mut gs.epidemic_rng,
            );
            gs.gossip_bytes += ANNOUNCE_BYTES * transmissions;
        }
        _ => gs.gossip_bytes += announce.unwrap_or(bytes) * stats.delivered as u64,
    }
    gs.dropped_msgs += stats.dropped as u64;
    tel.instant(now, "net.flood", origin as u32, || {
        vec![
            ("bytes", bytes.into()),
            ("artifact", artifact.into()),
            ("announced", announce.is_some().into()),
            ("delivered", (stats.delivered as u64).into()),
            ("dropped", (stats.dropped as u64).into()),
        ]
    });
}

/// Routes one targeted payload pull from `source` toward `to` over the
/// currently-open active subgraph, sampling per-edge loss like any other
/// transmission. Returns `None` when `to` is unreachable or the pull was
/// lost in transit — the caller's fetch episode then backs off and retries.
fn probe_fetch(
    network: &Network,
    source: usize,
    to: usize,
    payload_bytes: u64,
    peers: &[PeerState],
    rng: &mut impl Rng,
    gs: &mut GossipState,
) -> Option<FetchRoute> {
    gs.scratch.set_avoid(peers.iter().map(|p| !p.active));
    let GossipState {
        scratch,
        track_routes,
        ..
    } = gs;
    let mut found: Option<FetchRoute> = None;
    let _ = network.flood_with(
        NodeId(source),
        payload_bytes,
        rng,
        scratch,
        |node, delay, path| {
            if node.0 == to {
                found = Some(FetchRoute {
                    delay,
                    hops: path.len() as u64,
                    path: if *track_routes {
                        path.to_vec()
                    } else {
                        Vec::new()
                    },
                });
            }
        },
    );
    found
}

/// Whether every *relay* node on a recorded route is still alive: relay nodes
/// are exactly the path's interior nodes — the endpoint each consecutive edge
/// pair shares (the origin and the receiver touch one edge each). A delivery
/// whose relay crash-stopped while the message was in flight is lost,
/// mirroring the partition semantics of [`Network::path_open`].
fn relays_alive(path: &[(NodeId, NodeId)], peers: &[PeerState]) -> bool {
    path.windows(2).all(|w| {
        let (a, b) = w[0];
        let shared = if a == w[1].0 || a == w[1].1 { a } else { b };
        peers[shared.0].active
    })
}

/// The decentralized experiment driver.
pub struct Decentralized<'a> {
    config: DecentralizedConfig,
    train_shards: &'a [Dataset],
    peer_tests: &'a [Dataset],
}

impl<'a> Decentralized<'a> {
    /// Creates a driver over per-peer train shards and test sets.
    ///
    /// # Panics
    ///
    /// Panics if [`Decentralized::try_new`] rejects the configuration; the
    /// panic message is the [`ConfigError`]'s `Display` form.
    pub fn new(
        config: DecentralizedConfig,
        train_shards: &'a [Dataset],
        peer_tests: &'a [Dataset],
    ) -> Self {
        match Decentralized::try_new(config, train_shards, peer_tests) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible construction: validates the configuration and data shape and
    /// returns a typed [`ConfigError`] instead of panicking, so callers fed
    /// from external input (the scenario engine, services) can reject
    /// oversize or inconsistent runs gracefully.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn try_new(
        config: DecentralizedConfig,
        train_shards: &'a [Dataset],
        peer_tests: &'a [Dataset],
    ) -> Result<Self, ConfigError> {
        let n = train_shards.len();
        if n < 2 {
            return Err(ConfigError::TooFewPeers { got: n });
        }
        if n > MAX_PEERS {
            return Err(ConfigError::TooManyPeers { got: n });
        }
        if n != peer_tests.len() {
            return Err(ConfigError::ShardTestMismatch {
                shards: n,
                tests: peer_tests.len(),
            });
        }
        validate_timeline(&config.faults, n).map_err(ConfigError::InvalidTimeline)?;
        config
            .link
            .validate()
            .map_err(|e| ConfigError::InvalidLink(e.to_string()))?;
        config
            .compute
            .validate()
            .map_err(ConfigError::InvalidCompute)?;
        if let Some(profiles) = &config.per_peer_compute {
            if profiles.len() != n {
                return Err(ConfigError::PerPeerComputeMismatch {
                    profiles: profiles.len(),
                    peers: n,
                });
            }
            for p in profiles {
                p.validate().map_err(ConfigError::InvalidCompute)?;
            }
        }
        if config.rounds == 0 {
            return Err(ConfigError::ZeroRounds);
        }
        if let Some(ctl) = &config.controller {
            ctl.validate().map_err(ConfigError::InvalidController)?;
        }
        if let Some(spec) = &config.committees {
            if spec.count == 0 {
                return Err(ConfigError::InvalidCommittees(
                    "need at least one committee".into(),
                ));
            }
            if spec.count > n {
                return Err(ConfigError::InvalidCommittees(format!(
                    "more committees than peers ({} committees, {n} peers)",
                    spec.count
                )));
            }
        }
        Ok(Decentralized {
            config,
            train_shards,
            peer_tests,
        })
    }

    /// The compute profile of one peer.
    fn compute_for(&self, peer: usize) -> ComputeProfile {
        self.config
            .per_peer_compute
            .as_ref()
            .map(|v| v[peer])
            .unwrap_or(self.config.compute)
    }

    /// The configuration.
    pub fn config(&self) -> &DecentralizedConfig {
        &self.config
    }

    /// Runs the experiment. `make_model` builds the shared architecture; the
    /// first instance's initialization seeds every peer's starting point.
    pub fn run(&self, make_model: &mut dyn FnMut() -> Sequential) -> DecentralizedRun {
        self.run_with_hook(make_model, &mut |_| {})
    }

    /// Like [`Decentralized::run`] but calls `update_hook` on every local
    /// update right after training — the failure-injection point for studying
    /// poisoned or noisy peers in the decentralized setting.
    pub fn run_with_hook(
        &self,
        make_model: &mut dyn FnMut() -> Sequential,
        update_hook: &mut dyn FnMut(&mut ModelUpdate),
    ) -> DecentralizedRun {
        let mut sink = NoopSink;
        self.run_traced_with_hook(make_model, update_hook, &mut sink)
    }

    /// Like [`Decentralized::run`] but emits structured telemetry — round /
    /// train / wait spans, per-flood and per-fetch-episode records, PoW and
    /// reorg events, churn and watchdog instants, all stamped with virtual
    /// sim time — into `sink`. The sink only observes: a run traced into any
    /// sink is bit-identical (records, chain, meters) to the same run under
    /// [`NoopSink`].
    pub fn run_traced(
        &self,
        make_model: &mut dyn FnMut() -> Sequential,
        sink: &mut dyn TraceSink,
    ) -> DecentralizedRun {
        self.run_traced_with_hook(make_model, &mut |_| {}, sink)
    }

    /// The fully general entry point: telemetry sink plus update hook.
    pub fn run_traced_with_hook(
        &self,
        make_model: &mut dyn FnMut() -> Sequential,
        update_hook: &mut dyn FnMut(&mut ModelUpdate),
        sink: &mut dyn TraceSink,
    ) -> DecentralizedRun {
        let n = self.train_shards.len();
        let cfg = &self.config;
        let hub = RngHub::new(cfg.seed);
        let mut obs = Obs::new(n, sink);

        // --- identities, registry, chains -------------------------------
        let mut key_rng = hub.stream("keys");
        let keys: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate(&mut key_rng)).collect();
        let addrs: Vec<H160> = keys.iter().map(KeyPair::address).collect();
        let registry = registry_address();
        let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
            .with_difficulty(cfg.difficulty)
            .with_code(registry, NATIVE_REGISTRY_CODE.to_vec());
        let addr_to_client: HashMap<H160, ClientId> = addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, ClientId(i)))
            .collect();

        let init_params = make_model().params_flat();
        // One scratch model per compute worker (capped — beyond 8 the
        // combination batches are too small to split further). Extra
        // scratches are parameter-level duplicates, so the `make_model` RNG
        // stream — and with it every result — is independent of the worker
        // count.
        let mut scratch_pool = vec![make_model()];
        while scratch_pool.len() < blockfed_compute::num_threads().min(8) {
            let dup = scratch_pool[0].duplicate();
            scratch_pool.push(dup);
        }
        // Peers with a scheduled join are dormant until their fault fires.
        let joiners: std::collections::HashSet<usize> = cfg
            .faults
            .iter()
            .filter_map(|tf| match tf.fault {
                Fault::PeerJoin { peer } => Some(peer),
                _ => None,
            })
            .collect();
        // One chain store shared by every peer of this run: each block is
        // executed and each signature verified once per run instead of once
        // per peer, and — unlike the old process-wide memos — everything is
        // dropped with the store handle. A caller-supplied store (fork
        // replay, memcheck) is reused across sequential runs; `begin_epoch`
        // ages out entries the previous run stopped touching.
        let store = cfg.store.clone().unwrap_or_default();
        store.begin_epoch();
        let store_base = store.counters();
        let build_chain = || {
            let mut chain = Blockchain::with_store(&spec, SealPolicy::Simulated, store.clone());
            if let Some(interval) = cfg.snapshot_interval {
                chain = chain.with_snapshot_interval(interval);
            }
            if let Some(depth) = cfg.prune_depth {
                chain = chain.with_prune_depth(depth);
            }
            chain
        };
        let mut peers: Vec<PeerState> = (0..n)
            .map(|i| {
                let mut runtime = BlockfedRuntime::new();
                runtime.register_native(registry, NativeContract::FlRegistry);
                PeerState {
                    key: keys[i].clone(),
                    chain: build_chain(),
                    mempool: Mempool::with_sig_cache(store.sig_cache()),
                    runtime,
                    next_nonce: 0,
                    model_store: HashMap::new(),
                    orphans: Vec::new(),
                    current_round: 1,
                    training: true,
                    train_done_at: None,
                    global_params: init_params.clone(),
                    records: Vec::new(),
                    my_txs: Vec::new(),
                    active: !joiners.contains(&i),
                    train_gen: 0,
                    first_round: 1,
                    hash_scale: 1.0,
                    confirmed_cache: None,
                    tier1: None,
                    agg_store: HashMap::new(),
                    agg_records_cache: None,
                }
            })
            .collect();

        // Hierarchical committee layout, resolved once. A spec with a single
        // committee *is* the flat topology: normalizing it to `None` keeps
        // every flat code path untouched, so that run is byte-identical to an
        // unconfigured one.
        let committee: Option<CommitteeCtx> =
            cfg.committees
                .filter(|c| c.count > 1)
                .map(|c| CommitteeCtx {
                    count: c.count,
                    of: c.assign(n),
                });
        // Committee-level aggregate artifacts and in-flight targeted pulls of
        // them (expected-arrival guarded, like payload fetch episodes).
        let mut agg_log: Vec<AggArtifact> = Vec::new();
        let mut agg_pulls: HashMap<(usize, H256), SimTime> = HashMap::new();

        // --- network & schedule ------------------------------------------
        let mut network = Network::new(n, cfg.topology.clone(), cfg.link);
        // Pre-size for the steady-state burst: one flood's deliveries per
        // active peer plus mining/fault slack.
        let mut sched: Scheduler<Event> = Scheduler::with_capacity(4 * n + 16);
        let mut net_rng = hub.stream("net");
        let mut mine_rng = hub.stream("mining");
        let mut train_time_rng = hub.stream("train-time");

        // Shared logs so events carry small indices instead of payloads.
        let mut tx_log: Vec<Transaction> = Vec::new();
        let mut update_log: Vec<ModelUpdate> = Vec::new(); // aligned with tx_log where applicable
        let mut tx_update: Vec<Option<usize>> = Vec::new();
        let mut block_log: Vec<std::sync::Arc<blockfed_chain::Block>> = Vec::new();
        let mut block_miner: Vec<usize> = Vec::new(); // aligned with block_log
        let mut gs = GossipState {
            mode: cfg.gossip,
            track_routes: cfg.faults.iter().any(|tf| {
                matches!(
                    tf.fault,
                    Fault::Partition { .. } | Fault::PeerLeave { .. } | Fault::PeerCrash { .. }
                )
            }),
            scratch: FloodScratch::new(),
            route_log: Vec::new(),
            gossip_bytes: 0,
            fetch_bytes: 0,
            dropped_msgs: 0,
            epidemic_rng: hub.stream("epidemic"),
        };
        // Submit-tx index by model fingerprint, for on-demand payload fetches
        // when a block confirms a submission whose artifact a peer never
        // received (partitioned mid-flood, lost to packet drops, or joined
        // after the flood).
        let mut fp_to_tx: HashMap<H256, usize> = HashMap::new();
        // One fetch episode per (peer, artifact) at a time: repeated block
        // deliveries neither duplicate nor double-count it, and the episode's
        // `FetchTimeout` owns retries until the artifact lands or the attempt
        // budget runs out.
        let mut fetches: HashMap<(usize, H256), FetchState> = HashMap::new();
        let mut fetch_rng = hub.stream("fetch-backoff");
        let mut fetch_retries: u64 = 0;
        let mut recovery_total = SimDuration::ZERO;
        let mut recoveries: u64 = 0;
        // Active fetch time left behind by episodes that exhausted their
        // attempt budget, keyed like `fetches`: the next confirming block
        // restarts the episode with this time carried over, so `recovery_ms`
        // meters the whole chase. Cleared when the artifact arrives by any
        // path or the chasing peer crashes.
        let mut gave_up_elapsed: HashMap<(usize, H256), SimDuration> = HashMap::new();

        // Per-round policy: the static knobs, the replay cutover, and — when
        // configured — the adaptive controller with its dedicated RNG stream.
        let mut engine = PolicyEngine::new(cfg, &hub);

        // Publication times (for the age-of-block metric) and each peer's
        // previously published parameters (for the replay attack).
        let mut publish_time: HashMap<H256, SimTime> = HashMap::new();
        let mut last_published: Vec<Option<Vec<f32>>> = vec![None; n];
        let mut attack_rng = hub.stream("attack");

        // Registration txs at t = 0 (dormant joiners register when they join).
        for i in 0..n {
            if !peers[i].active {
                continue;
            }
            let tx = register_tx(registry, &keys[i], 0);
            peers[i].next_nonce = 1;
            let idx = tx_log.len();
            tx_log.push(tx.clone());
            tx_update.push(None);
            let p = &mut peers[i];
            p.my_txs.push(idx);
            let _ = p.mempool.insert(tx, p.chain.state());
            schedule_flood(
                &network,
                i,
                512,
                false,
                SimTime::ZERO,
                &peers,
                &mut net_rng,
                &mut sched,
                &mut gs,
                &mut obs.tel,
                |to, route| Event::DeliverTx { to, idx, route },
                |_| true,
            );
        }

        // Initial training for every active peer.
        for (i, shard) in self.train_shards.iter().enumerate() {
            if !peers[i].active {
                continue;
            }
            let base = self
                .compute_for(i)
                .training_time(shard.len(), cfg.local_epochs, true);
            let jitter = base.mul_f64(train_time_rng.gen_range(0.0..0.05));
            obs.begin_training(i, SimTime::ZERO, 1);
            sched.schedule_after(base + jitter, Event::TrainDone { peer: i, gen: 0 });
        }

        // Fault timeline.
        let mut pending_faults = cfg.faults.len();
        for (idx, tf) in cfg.faults.iter().enumerate() {
            sched.schedule_after(tf.at, Event::Fault { idx });
        }

        // Liveness watchdog: re-armed on every check, fires the stall
        // diagnostic when nothing has progressed for a full timeout while no
        // scheduled fault can still unblock the run.
        if let Some(timeout) = cfg.watchdog {
            sched.schedule_after(timeout, Event::Watchdog);
            obs.tel.run_instant(SimTime::ZERO, "watchdog.armed", || {
                vec![("timeout_secs", timeout.as_secs_f64().into())]
            });
        }
        let mut stall: Option<String> = None;

        // Difficulty retargeting: the controller aims for the cadence the
        // configured difficulty implies against the genesis hash rate, so at
        // steady state every rule holds the configured block interval, and
        // the adaptive rules pull cadence back there after hash-rate shocks.
        let genesis_rate: f64 = (0..n)
            .filter(|&i| peers[i].active)
            .map(|i| self.compute_for(i).effective_hashrate(true))
            .sum();
        let implied_target_ns = if genesis_rate > 0.0 {
            ((cfg.difficulty as f64 / genesis_rate) * 1e9).max(1.0) as u64
        } else {
            blockfed_chain::pow::TARGET_BLOCK_TIME_NS
        };
        let mut difficulty_ctl =
            DifficultyController::with_target(cfg.retarget, cfg.difficulty, implied_target_ns);
        let mut last_seal_at: Option<SimTime> = None;

        // First mining race.
        let first_delay =
            self.sample_race_delay(&peers, difficulty_ctl.difficulty(), &mut mine_rng);
        sched.schedule_after(first_delay, Event::SealBlock);

        // --- event loop ----------------------------------------------------
        let mut events_processed: u64 = 0;
        // Full floods deliver O(n) events each and every peer floods several
        // times per round, so the safety cap must scale with the population:
        // the flat 2M floor covers small runs, the quadratic term covers a
        // 1024-peer run's per-round delivery volume with headroom.
        let event_cap: u64 =
            2_000_000u64.max((n as u64) * (n as u64) * (4 * u64::from(cfg.rounds) + 8));
        let mut finished_at = SimTime::ZERO;

        // The run is over once every *active* peer finished its rounds and no
        // scheduled fault (e.g. a late join) can still change the population.
        let settled = |peers: &[PeerState], pending_faults: usize| {
            pending_faults == 0 && peers.iter().all(|p| !p.active || p.done(cfg.rounds))
        };
        while let Some((now, event)) = sched.next() {
            events_processed += 1;
            assert!(
                events_processed < event_cap,
                "event cap exceeded; livelock?"
            );
            if settled(&peers, pending_faults) {
                finished_at = finished_at.max(now);
                break;
            }
            match event {
                Event::TrainDone { peer, gen }
                    if !peers[peer].active || gen != peers[peer].train_gen => {}
                Event::TrainDone { peer, .. } => {
                    let round = peers[peer].current_round;
                    // Train eagerly at the event (virtual time already paid).
                    let mut model = make_model();
                    model.set_params_flat(&peers[peer].global_params);
                    let mut opt = Sgd::new(cfg.lr, cfg.momentum);
                    let mut rng =
                        hub.indexed_stream("train", (peer as u64) << 32 | u64::from(round));
                    // The batch-parallel loop is bit-identical to the
                    // sequential one, so the knob only changes how much host
                    // wall-clock the (virtual-time-accounted) training costs.
                    model.train_epochs_maybe_par(
                        self.compute_for(peer).batch_parallel,
                        &self.train_shards[peer],
                        cfg.local_epochs,
                        &Batcher::new(cfg.batch_size),
                        &mut opt,
                        &mut rng,
                    );
                    let mut update = ModelUpdate::new(
                        ClientId(peer),
                        round,
                        model.params_flat(),
                        self.train_shards[peer].len(),
                    )
                    .with_payload_bytes(cfg.payload_bytes);
                    update_hook(&mut update);
                    for adv in &cfg.adversaries {
                        if adv.client == ClientId(peer) && adv.active_in(round) {
                            adv.attack.apply_with_history(
                                &mut update,
                                last_published[peer].as_deref(),
                                &mut attack_rng,
                            );
                            obs.trace.record(
                                now,
                                "attack.mounted",
                                format!("peer={peer} round={round} attack={}", adv.attack),
                            );
                            obs.tel.instant(now, "attack.mounted", peer as u32, || {
                                vec![("round", round.into())]
                            });
                        }
                    }
                    last_published[peer] = Some(update.params.clone());
                    let fingerprint = crate::coupling::model_fingerprint(&update);
                    publish_time.insert(fingerprint, now);
                    let tx =
                        submit_model_tx(&update, registry, &keys[peer], peers[peer].next_nonce);
                    peers[peer].next_nonce += 1;
                    obs.trace
                        .record(now, "train.done", format!("peer={peer} round={round}"));
                    obs.training_done(peer, now, round);

                    let tx_idx = tx_log.len();
                    tx_log.push(tx.clone());
                    let upd_idx = update_log.len();
                    update_log.push(update.clone());
                    tx_update.push(Some(upd_idx));
                    fp_to_tx.insert(fingerprint, tx_idx);
                    peers[peer].my_txs.push(tx_idx);

                    let p = &mut peers[peer];
                    p.model_store.insert(fingerprint, update);
                    let _ = p.mempool.insert(tx, p.chain.state());
                    p.training = false;
                    p.train_done_at = Some(now);

                    schedule_flood(
                        &network,
                        peer,
                        cfg.payload_bytes,
                        true,
                        now,
                        &peers,
                        &mut net_rng,
                        &mut sched,
                        &mut gs,
                        &mut obs.tel,
                        |to, route| Event::DeliverTx {
                            to,
                            idx: tx_idx,
                            route,
                        },
                        // Only committee members pull the model payload: the
                        // rest of the population sees the announcement (and
                        // the minable digest transaction it carries) but
                        // never fetches the parameters — the tier-1 half of
                        // the hierarchical traffic win.
                        |to| committee.as_ref().is_none_or(|cs| cs.of[to] == cs.of[peer]),
                    );
                    self.try_aggregate(
                        peer,
                        now,
                        registry,
                        &mut peers,
                        &mut scratch_pool,
                        &addr_to_client,
                        &publish_time,
                        &hub,
                        &mut obs,
                        &mut sched,
                        &network,
                        &mut net_rng,
                        &mut tx_log,
                        &mut tx_update,
                        &mut gs,
                        &mut train_time_rng,
                        &mut engine,
                        committee.as_ref(),
                        &mut agg_log,
                        &mut agg_pulls,
                    );
                }
                Event::DeliverTx { to, idx, route } => {
                    // A lost or undeliverable pull stays an open fetch
                    // episode: its `FetchTimeout` owns the retry, so nothing
                    // is removed from `fetches` here unless the artifact
                    // actually lands.
                    if !peers[to].active {
                        continue;
                    }
                    if !network.path_open(&gs.route_log[route])
                        || !relays_alive(&gs.route_log[route], &peers)
                    {
                        obs.trace
                            .record(now, "net.dropped", format!("tx to={to} idx={idx}"));
                        obs.tel.instant(now, "net.dropped", to as u32, || {
                            vec![("kind", "tx".into()), ("idx", (idx as u64).into())]
                        });
                        gs.dropped_msgs += 1;
                        continue;
                    }
                    let tx = tx_log[idx].clone();
                    // A hierarchical run scopes model payloads to the
                    // sender's committee: everyone else received only the
                    // announcement, so they mine the digest transaction but
                    // never hold (or store) the parameters.
                    let holds_payload = |client: usize, to: usize| {
                        committee
                            .as_ref()
                            .is_none_or(|cs| cs.of[client] == cs.of[to])
                    };
                    if let Some(u) =
                        tx_update[idx].filter(|&u| holds_payload(update_log[u].client.0, to))
                    {
                        let update = update_log[u].clone();
                        let fp = crate::coupling::model_fingerprint(&update);
                        if let Some(st) = fetches.remove(&(to, fp)) {
                            recoveries += 1;
                            let took = now.saturating_since(st.first_at) + st.carried;
                            recovery_total += took;
                            obs.metrics.observe("fetch_ms", took.as_secs_f64() * 1e3);
                            obs.tel.end(now, "fetch", to as u32, st.span, || {
                                vec![("attempts", (st.attempt + 1).into())]
                            });
                            obs.note(to, now, "fetch.recovered");
                            obs.trace.record(
                                now,
                                "fetch.recovered",
                                format!("to={to} attempts={}", st.attempt + 1),
                            );
                        }
                        let p = &mut peers[to];
                        if p.model_store.insert(fp, update).is_none() {
                            obs.last_progress = now;
                            obs.note(to, now, "artifact.arrived");
                        }
                        // The artifact is here: any gave-up time still parked
                        // for it can no longer be attributed to a recovery.
                        gave_up_elapsed.remove(&(to, fp));
                    }
                    let p = &mut peers[to];
                    let _ = p.mempool.insert(tx, p.chain.state());
                    self.try_aggregate(
                        to,
                        now,
                        registry,
                        &mut peers,
                        &mut scratch_pool,
                        &addr_to_client,
                        &publish_time,
                        &hub,
                        &mut obs,
                        &mut sched,
                        &network,
                        &mut net_rng,
                        &mut tx_log,
                        &mut tx_update,
                        &mut gs,
                        &mut train_time_rng,
                        &mut engine,
                        committee.as_ref(),
                        &mut agg_log,
                        &mut agg_pulls,
                    );
                }
                Event::SealBlock => {
                    // Pick the race winner ∝ current effective hash rates of
                    // the *active* miners (scaled by any hash-rate shocks).
                    let weights: Vec<f64> = peers
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            if p.active {
                                self.compute_for(i).effective_hashrate(p.training) * p.hash_scale
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    let total: f64 = weights.iter().sum();
                    if total <= 0.0 {
                        // No live miner; idle until churn revives the chain.
                        // Forget the previous seal time so the dead window
                        // is not fed to the retarget controller as one huge
                        // interval when mining resumes.
                        last_seal_at = None;
                        sched.schedule_after(SimDuration::from_secs_f64(1.0), Event::SealBlock);
                        continue;
                    }
                    let mut draw = mine_rng.gen_range(0.0..total);
                    // Float fallback: the first live miner wins a degenerate draw.
                    let mut winner = weights
                        .iter()
                        .position(|w| *w > 0.0)
                        .expect("total > 0 implies a live miner");
                    for (i, w) in weights.iter().enumerate() {
                        if *w > 0.0 && draw < *w {
                            winner = i;
                            break;
                        }
                        draw -= w;
                    }
                    let p = &mut peers[winner];
                    let head_ts = p.chain.head_block().header.timestamp_ns;
                    let ts = now.as_nanos().max(head_ts + 1);
                    p.mempool.prune(p.chain.state());
                    let gas_limit = p.chain.head_block().header.gas_limit;
                    let txs = p.mempool.select(p.chain.state(), gas_limit, 64);
                    let (block, ok) = {
                        let p = &mut peers[winner];
                        let block = std::sync::Arc::new(p.chain.build_candidate(
                            p.key.address(),
                            txs,
                            ts,
                            &mut p.runtime,
                        ));
                        let ok = p
                            .chain
                            .import_arc(std::sync::Arc::clone(&block), &mut p.runtime)
                            .is_ok();
                        (block, ok)
                    };
                    if ok {
                        // Retarget on the observed inter-seal interval.
                        if let Some(prev) = last_seal_at {
                            let interval = now.saturating_since(prev);
                            difficulty_ctl.observe(interval.as_nanos().max(1));
                            obs.metrics
                                .observe("block_interval_secs", interval.as_secs_f64());
                        }
                        last_seal_at = Some(now);
                        obs.trace.record(
                            now,
                            "block.sealed",
                            format!(
                                "miner={winner} number={} txs={}",
                                block.number(),
                                block.transactions.len()
                            ),
                        );
                        obs.tel.instant(now, "pow.sealed", winner as u32, || {
                            vec![
                                ("number", block.number().into()),
                                ("txs", (block.transactions.len() as u64).into()),
                            ]
                        });
                        let p = &mut peers[winner];
                        p.mempool.prune(p.chain.state());
                        let block_idx = block_log.len();
                        let block_bytes = 1024 + 256 * block.transactions.len() as u64;
                        block_log.push(block);
                        block_miner.push(winner);
                        engine.blocks_sealed = block_log.len() as u64;
                        schedule_flood(
                            &network,
                            winner,
                            block_bytes,
                            false,
                            now,
                            &peers,
                            &mut net_rng,
                            &mut sched,
                            &mut gs,
                            &mut obs.tel,
                            |to, route| Event::DeliverBlock {
                                to,
                                idx: block_idx,
                                route,
                            },
                            |_| true,
                        );
                        self.try_aggregate(
                            winner,
                            now,
                            registry,
                            &mut peers,
                            &mut scratch_pool,
                            &addr_to_client,
                            &publish_time,
                            &hub,
                            &mut obs,
                            &mut sched,
                            &network,
                            &mut net_rng,
                            &mut tx_log,
                            &mut tx_update,
                            &mut gs,
                            &mut train_time_rng,
                            &mut engine,
                            committee.as_ref(),
                            &mut agg_log,
                            &mut agg_pulls,
                        );
                        // The winner imported its own block without a
                        // `DeliverBlock` event: newly confirmed records may
                        // have made its tier-2 merge ready.
                        if let Some(cs) = &committee {
                            self.try_merge(
                                winner,
                                now,
                                registry,
                                &mut peers,
                                &addr_to_client,
                                &mut obs,
                                &mut sched,
                                &network,
                                &mut net_rng,
                                &mut tx_log,
                                &mut tx_update,
                                &mut gs,
                                &mut train_time_rng,
                                cs,
                                &agg_log,
                                &mut agg_pulls,
                            );
                        }
                    }
                    let delay =
                        self.sample_race_delay(&peers, difficulty_ctl.difficulty(), &mut mine_rng);
                    sched.schedule_after(delay, Event::SealBlock);
                }
                Event::DeliverBlock { to, idx, route } => {
                    if !peers[to].active {
                        continue;
                    }
                    if !network.path_open(&gs.route_log[route])
                        || !relays_alive(&gs.route_log[route], &peers)
                    {
                        obs.trace
                            .record(now, "net.dropped", format!("block to={to} idx={idx}"));
                        obs.tel.instant(now, "net.dropped", to as u32, || {
                            vec![("kind", "block".into()), ("idx", (idx as u64).into())]
                        });
                        gs.dropped_msgs += 1;
                        continue;
                    }
                    self.import_with_orphans(
                        to, idx, now, &mut peers, &block_log, &tx_log, &mut obs,
                    );
                    // On-demand payload recovery: the chain may confirm a
                    // submission whose artifact this peer never received (the
                    // gossip crossed a partition, was lost to packet drops,
                    // or the peer joined late). Ask the block's miner first
                    // over the shortest currently-open path; the episode's
                    // `FetchTimeout` then retries with exponential backoff,
                    // rotating over every active holder, until the artifact
                    // lands or the attempt budget runs out. One episode per
                    // (peer, artifact) is open at a time.
                    let round_now = peers[to].current_round;
                    let miner = block_miner[idx];
                    refresh_confirmed(&mut peers[to], registry, round_now);
                    let missing: Vec<(H256, u64, usize)> = {
                        let p = &peers[to];
                        p.confirmed_cache
                            .as_ref()
                            .expect("just refreshed")
                            .subs
                            .iter()
                            .filter(|s| !p.model_store.contains_key(&s.model_hash))
                            // Hierarchical runs only chase artifacts of the
                            // peer's own committee — the rest were never
                            // meant to arrive.
                            .filter(|s| {
                                addr_to_client.get(&s.sender).is_some_and(|c| {
                                    committee.as_ref().is_none_or(|cs| cs.of[c.0] == cs.of[to])
                                })
                            })
                            .filter_map(|s| {
                                fp_to_tx
                                    .get(&s.model_hash)
                                    .map(|&t| (s.model_hash, s.payload_bytes, t))
                            })
                            .collect()
                    };
                    for (model_hash, payload_bytes, tx_idx) in missing {
                        if fetches.contains_key(&(to, model_hash)) || miner == to {
                            continue;
                        }
                        let found = probe_fetch(
                            &network,
                            miner,
                            to,
                            payload_bytes,
                            &peers,
                            &mut net_rng,
                            &mut gs,
                        );
                        let span = obs.tel.begin(now, "fetch", to as u32, || {
                            vec![
                                ("from", (miner as u64).into()),
                                ("bytes", payload_bytes.into()),
                                ("round", round_now.into()),
                            ]
                        });
                        obs.note(to, now, "fetch.start");
                        fetches.insert(
                            (to, model_hash),
                            FetchState {
                                attempt: 0,
                                primary: miner,
                                first_at: now,
                                // A restarted chase resumes the recovery
                                // clock where the gave-up episodes left it
                                // (the idle gap between them stays excluded).
                                carried: gave_up_elapsed
                                    .remove(&(to, model_hash))
                                    .unwrap_or(SimDuration::ZERO),
                                payload_bytes,
                                tx_idx,
                                span,
                            },
                        );
                        match found {
                            Some(FetchRoute { delay, hops, path }) => {
                                // A targeted pull *is* the announce/fetch
                                // primary path; Full mode keeps the legacy
                                // accounting.
                                match gs.mode {
                                    GossipMode::Full => gs.gossip_bytes += payload_bytes * hops,
                                    GossipMode::AnnounceFetch | GossipMode::Epidemic { .. } => {
                                        gs.fetch_bytes += payload_bytes * hops
                                    }
                                }
                                let fetch_route = gs.route_log.len();
                                gs.route_log.push(path);
                                obs.trace.record(
                                    now,
                                    "net.payload-fetch",
                                    format!("to={to} from={miner} round={round_now}"),
                                );
                                sched.schedule_after(
                                    delay,
                                    Event::DeliverTx {
                                        to,
                                        idx: tx_idx,
                                        route: fetch_route,
                                    },
                                );
                                // Deadline past the expected arrival: on a
                                // clean delivery the timeout finds the
                                // episode resolved and does nothing.
                                sched.schedule_after(
                                    delay + fetch_backoff(0, &mut fetch_rng),
                                    Event::FetchTimeout {
                                        to,
                                        fp: model_hash,
                                        attempt: 0,
                                    },
                                );
                            }
                            None => {
                                // The pull was lost or the holder is
                                // unreachable right now: back off and retry.
                                sched.schedule_after(
                                    fetch_backoff(0, &mut fetch_rng),
                                    Event::FetchTimeout {
                                        to,
                                        fp: model_hash,
                                        attempt: 0,
                                    },
                                );
                            }
                        }
                    }
                    self.try_aggregate(
                        to,
                        now,
                        registry,
                        &mut peers,
                        &mut scratch_pool,
                        &addr_to_client,
                        &publish_time,
                        &hub,
                        &mut obs,
                        &mut sched,
                        &network,
                        &mut net_rng,
                        &mut tx_log,
                        &mut tx_update,
                        &mut gs,
                        &mut train_time_rng,
                        &mut engine,
                        committee.as_ref(),
                        &mut agg_log,
                        &mut agg_pulls,
                    );
                    // Fresh confirmations may complete a pending tier-2 merge.
                    if let Some(cs) = &committee {
                        self.try_merge(
                            to,
                            now,
                            registry,
                            &mut peers,
                            &addr_to_client,
                            &mut obs,
                            &mut sched,
                            &network,
                            &mut net_rng,
                            &mut tx_log,
                            &mut tx_update,
                            &mut gs,
                            &mut train_time_rng,
                            cs,
                            &agg_log,
                            &mut agg_pulls,
                        );
                    }
                }
                Event::DeliverAgg { to, idx, route } => {
                    if !peers[to].active {
                        continue;
                    }
                    if !network.path_open(&gs.route_log[route])
                        || !relays_alive(&gs.route_log[route], &peers)
                    {
                        obs.trace.record(
                            now,
                            "net.dropped",
                            format!("agg to={to} idx={idx} round={}", agg_log[idx].round),
                        );
                        obs.tel.instant(now, "net.dropped", to as u32, || {
                            vec![("kind", "agg".into()), ("idx", (idx as u64).into())]
                        });
                        gs.dropped_msgs += 1;
                        continue;
                    }
                    let hash = agg_log[idx].hash;
                    agg_pulls.remove(&(to, hash));
                    if peers[to].agg_store.insert(hash, idx).is_none() {
                        obs.last_progress = now;
                        obs.note(to, now, "agg.arrived");
                    }
                    if let Some(cs) = &committee {
                        self.try_merge(
                            to,
                            now,
                            registry,
                            &mut peers,
                            &addr_to_client,
                            &mut obs,
                            &mut sched,
                            &network,
                            &mut net_rng,
                            &mut tx_log,
                            &mut tx_update,
                            &mut gs,
                            &mut train_time_rng,
                            cs,
                            &agg_log,
                            &mut agg_pulls,
                        );
                    }
                }
                Event::Fault { idx } => {
                    pending_faults -= 1;
                    let fault = cfg.faults[idx].fault.clone();
                    obs.trace.record(now, "fault.fired", fault.to_string());
                    obs.tel.run_instant(now, "fault.fired", || {
                        vec![("fault", fault.to_string().into())]
                    });
                    match fault {
                        Fault::Partition { left, right } => {
                            let l: Vec<NodeId> = left.iter().map(|&p| NodeId(p)).collect();
                            let r: Vec<NodeId> = right.iter().map(|&p| NodeId(p)).collect();
                            network.partition_halves(&l, &r);
                            obs.trace.record(
                                now,
                                "fault.partition",
                                format!("left={left:?} right={right:?}"),
                            );
                        }
                        Fault::HealAll => {
                            network.heal_all();
                            obs.trace.record(now, "fault.heal", String::new());
                        }
                        Fault::PeerLeave { peer } => {
                            peers[peer].active = false;
                            obs.note(peer, now, "churn.leave");
                            obs.trace.record(
                                now,
                                "churn.leave",
                                format!("peer={peer} round={}", peers[peer].current_round),
                            );
                            // Wait policies now measure against a smaller
                            // population: re-check every stalled waiter so no
                            // `WaitPolicy::All` peer deadlocks on the departed.
                            for p in 0..n {
                                if peers[p].active {
                                    self.try_aggregate(
                                        p,
                                        now,
                                        registry,
                                        &mut peers,
                                        &mut scratch_pool,
                                        &addr_to_client,
                                        &publish_time,
                                        &hub,
                                        &mut obs,
                                        &mut sched,
                                        &network,
                                        &mut net_rng,
                                        &mut tx_log,
                                        &mut tx_update,
                                        &mut gs,
                                        &mut train_time_rng,
                                        &mut engine,
                                        committee.as_ref(),
                                        &mut agg_log,
                                        &mut agg_pulls,
                                    );
                                    // A shrunken population can also satisfy
                                    // a pending tier-2 merge (a committee
                                    // with no live member and no record is
                                    // no longer needed).
                                    if let Some(cs) = &committee {
                                        self.try_merge(
                                            p,
                                            now,
                                            registry,
                                            &mut peers,
                                            &addr_to_client,
                                            &mut obs,
                                            &mut sched,
                                            &network,
                                            &mut net_rng,
                                            &mut tx_log,
                                            &mut tx_update,
                                            &mut gs,
                                            &mut train_time_rng,
                                            cs,
                                            &agg_log,
                                            &mut agg_pulls,
                                        );
                                    }
                                }
                            }
                        }
                        Fault::PeerJoin { peer } => {
                            peers[peer].active = true;
                            // 1. Sync: download every block sealed so far
                            //    (out-of-order imports resolve via orphans).
                            for b in 0..block_log.len() {
                                self.import_with_orphans(
                                    peer, b, now, &mut peers, &block_log, &tx_log, &mut obs,
                                );
                            }
                            let synced_height = peers[peer].chain.head_block().number();
                            // 2. Register on the FL registry.
                            let tx = register_tx(registry, &keys[peer], 0);
                            peers[peer].next_nonce = 1;
                            let reg_idx = tx_log.len();
                            tx_log.push(tx.clone());
                            tx_update.push(None);
                            let p = &mut peers[peer];
                            p.my_txs.push(reg_idx);
                            let _ = p.mempool.insert(tx, p.chain.state());
                            schedule_flood(
                                &network,
                                peer,
                                512,
                                false,
                                now,
                                &peers,
                                &mut net_rng,
                                &mut sched,
                                &mut gs,
                                &mut obs.tel,
                                |to, route| Event::DeliverTx {
                                    to,
                                    idx: reg_idx,
                                    route,
                                },
                                |_| true,
                            );
                            // 3. Enter the *earliest* round still in progress
                            //    and only then start training. Entering any
                            //    later round would starve a live `wait-all`
                            //    laggard forever: the joiner inflates the
                            //    population the laggard measures against but
                            //    would never submit for the laggard's round.
                            let join_round = peers
                                .iter()
                                .enumerate()
                                .filter(|(i, p)| *i != peer && p.active)
                                .map(|(_, p)| p.current_round)
                                .min()
                                .unwrap_or(1);
                            peers[peer].first_round = join_round;
                            peers[peer].current_round = join_round;
                            peers[peer].training = true;
                            peers[peer].train_done_at = None;
                            obs.trace.record(
                                now,
                                "churn.join",
                                format!(
                                    "peer={peer} round={join_round} synced_height={synced_height}"
                                ),
                            );
                            obs.tel.instant(now, "churn.join", peer as u32, || {
                                vec![
                                    ("round", join_round.into()),
                                    ("synced_height", synced_height.into()),
                                ]
                            });
                            obs.begin_training(peer, now, join_round);
                            let base = self.compute_for(peer).training_time(
                                self.train_shards[peer].len(),
                                cfg.local_epochs,
                                true,
                            );
                            let jitter = base.mul_f64(train_time_rng.gen_range(0.0..0.05));
                            sched.schedule_after(
                                base + jitter,
                                Event::TrainDone {
                                    peer,
                                    gen: peers[peer].train_gen,
                                },
                            );
                        }
                        Fault::HashRateShock { peer, factor } => {
                            peers[peer].hash_scale *= factor;
                            obs.trace.record(
                                now,
                                "fault.hashshock",
                                format!(
                                    "peer={peer} factor={factor} scale={}",
                                    peers[peer].hash_scale
                                ),
                            );
                        }
                        Fault::PeerCrash { peer } => {
                            // A process crash, not a departure: identity,
                            // chain, records, and round position survive on
                            // disk; volatile state does not. Bumping the
                            // training generation discards the in-flight
                            // `TrainDone`, and the peer's open fetch episodes
                            // die with the process.
                            peers[peer].active = false;
                            peers[peer].train_gen += 1;
                            peers[peer].mempool = Mempool::with_sig_cache(store.sig_cache());
                            // Sorted teardown so the emitted span ends don't
                            // inherit the map's nondeterministic order.
                            let mut dead: Vec<(H256, u64)> = fetches
                                .iter()
                                .filter(|((p, _), _)| *p == peer)
                                .map(|((_, fp), st)| (*fp, st.span))
                                .collect();
                            dead.sort_unstable_by_key(|&(fp, _)| fp);
                            for (fp, span) in dead {
                                fetches.remove(&(peer, fp));
                                obs.tel.end(now, "fetch", peer as u32, span, || {
                                    vec![("aborted", true.into())]
                                });
                            }
                            // Parked gave-up time dies with the process too.
                            gave_up_elapsed.retain(|(p, _), _| *p != peer);
                            obs.crash_aborts(peer, now);
                            obs.trace.record(
                                now,
                                "churn.crash",
                                format!("peer={peer} round={}", peers[peer].current_round),
                            );
                            // The active population shrank: re-check every
                            // stalled waiter, exactly as for a leave.
                            for p in 0..n {
                                if peers[p].active {
                                    self.try_aggregate(
                                        p,
                                        now,
                                        registry,
                                        &mut peers,
                                        &mut scratch_pool,
                                        &addr_to_client,
                                        &publish_time,
                                        &hub,
                                        &mut obs,
                                        &mut sched,
                                        &network,
                                        &mut net_rng,
                                        &mut tx_log,
                                        &mut tx_update,
                                        &mut gs,
                                        &mut train_time_rng,
                                        &mut engine,
                                        committee.as_ref(),
                                        &mut agg_log,
                                        &mut agg_pulls,
                                    );
                                    // A shrunken population can also satisfy
                                    // a pending tier-2 merge (a committee
                                    // with no live member and no record is
                                    // no longer needed).
                                    if let Some(cs) = &committee {
                                        self.try_merge(
                                            p,
                                            now,
                                            registry,
                                            &mut peers,
                                            &addr_to_client,
                                            &mut obs,
                                            &mut sched,
                                            &network,
                                            &mut net_rng,
                                            &mut tx_log,
                                            &mut tx_update,
                                            &mut gs,
                                            &mut train_time_rng,
                                            cs,
                                            &agg_log,
                                            &mut agg_pulls,
                                        );
                                    }
                                }
                            }
                        }
                        Fault::PeerRestart { peer } => {
                            peers[peer].active = true;
                            // Resync: import every block sealed so far (the
                            // same ancestor-sync path a joiner uses); this
                            // also re-inserts the peer's own pending
                            // transactions into its fresh mempool.
                            for b in 0..block_log.len() {
                                self.import_with_orphans(
                                    peer, b, now, &mut peers, &block_log, &tx_log, &mut obs,
                                );
                            }
                            let synced_height = peers[peer].chain.head_block().number();
                            obs.trace.record(
                                now,
                                "churn.restart",
                                format!(
                                    "peer={peer} round={} synced_height={synced_height}",
                                    peers[peer].current_round
                                ),
                            );
                            obs.tel.instant(now, "churn.restart", peer as u32, || {
                                vec![
                                    ("round", peers[peer].current_round.into()),
                                    ("synced_height", synced_height.into()),
                                ]
                            });
                            obs.note(peer, now, "churn.restart");
                            if peers[peer].training {
                                // The crash killed the local training run:
                                // start the round's training over.
                                obs.begin_training(peer, now, peers[peer].current_round);
                                let base = self.compute_for(peer).training_time(
                                    self.train_shards[peer].len(),
                                    cfg.local_epochs,
                                    true,
                                );
                                let jitter = base.mul_f64(train_time_rng.gen_range(0.0..0.05));
                                sched.schedule_after(
                                    base + jitter,
                                    Event::TrainDone {
                                        peer,
                                        gen: peers[peer].train_gen,
                                    },
                                );
                            } else {
                                // It had already published for this round:
                                // re-enter the waiting path.
                                let round = peers[peer].current_round;
                                if obs.wait_span[peer].is_none() {
                                    let id = obs.tel.begin(now, "round.wait", peer as u32, || {
                                        vec![("round", round.into())]
                                    });
                                    obs.wait_span[peer] = Some((id, now));
                                }
                                self.try_aggregate(
                                    peer,
                                    now,
                                    registry,
                                    &mut peers,
                                    &mut scratch_pool,
                                    &addr_to_client,
                                    &publish_time,
                                    &hub,
                                    &mut obs,
                                    &mut sched,
                                    &network,
                                    &mut net_rng,
                                    &mut tx_log,
                                    &mut tx_update,
                                    &mut gs,
                                    &mut train_time_rng,
                                    &mut engine,
                                    committee.as_ref(),
                                    &mut agg_log,
                                    &mut agg_pulls,
                                );
                                // A restart may resume between tier-1 and
                                // the merge (the pending state survives on
                                // disk): re-check it immediately.
                                if let Some(cs) = &committee {
                                    self.try_merge(
                                        peer,
                                        now,
                                        registry,
                                        &mut peers,
                                        &addr_to_client,
                                        &mut obs,
                                        &mut sched,
                                        &network,
                                        &mut net_rng,
                                        &mut tx_log,
                                        &mut tx_update,
                                        &mut gs,
                                        &mut train_time_rng,
                                        cs,
                                        &agg_log,
                                        &mut agg_pulls,
                                    );
                                }
                            }
                        }
                    }
                }
                Event::FetchTimeout { to, fp, attempt } => {
                    // Resolved episodes and superseded deadlines are no-ops,
                    // so the timeout a successful pull leaves behind costs
                    // nothing — and draws no randomness.
                    let live = matches!(fetches.get(&(to, fp)), Some(st) if st.attempt == attempt);
                    if !live {
                        continue;
                    }
                    if !peers[to].active || peers[to].model_store.contains_key(&fp) {
                        if let Some(st) = fetches.remove(&(to, fp)) {
                            obs.tel.end(now, "fetch", to as u32, st.span, || {
                                vec![("superseded", true.into())]
                            });
                        }
                        continue;
                    }
                    if attempt >= MAX_FETCH_ATTEMPTS {
                        obs.trace.record(
                            now,
                            "fetch.gave-up",
                            format!("to={to} attempts={attempt}"),
                        );
                        if let Some(st) = fetches.remove(&(to, fp)) {
                            obs.tel.end(now, "fetch", to as u32, st.span, || {
                                vec![("gave_up", true.into())]
                            });
                            // Park the episode's elapsed time (plus anything
                            // earlier episodes already parked): the next
                            // confirming block restarts the chase and the
                            // recovery metric must cover the whole of it.
                            *gave_up_elapsed.entry((to, fp)).or_insert(SimDuration::ZERO) +=
                                now.saturating_since(st.first_at) + st.carried;
                        }
                        obs.metrics.add("fetch_gave_up", 1);
                        obs.note(to, now, "fetch.gave-up");
                        continue;
                    }
                    let next = attempt + 1;
                    let (primary, payload_bytes, tx_idx) = {
                        let st = &fetches[&(to, fp)];
                        (st.primary, st.payload_bytes, st.tx_idx)
                    };
                    // Graceful degradation: any active peer holding the
                    // artifact can serve it, not just the confirming miner.
                    // The rotation starts at the primary and walks the sorted
                    // holder list deterministically, so each retry takes the
                    // freshest shortest open path from a (usually) different
                    // source.
                    let holders: Vec<usize> = (0..n)
                        .filter(|&i| {
                            i != to && peers[i].active && peers[i].model_store.contains_key(&fp)
                        })
                        .collect();
                    if holders.is_empty() {
                        // Nobody can serve it right now (churn); re-check
                        // after backing off.
                        sched.schedule_after(
                            fetch_backoff(next, &mut fetch_rng),
                            Event::FetchTimeout {
                                to,
                                fp,
                                attempt: next,
                            },
                        );
                        fetches.get_mut(&(to, fp)).expect("episode is live").attempt = next;
                        continue;
                    }
                    let start = holders.iter().position(|&h| h == primary).unwrap_or(0);
                    let source = holders[(start + next as usize - 1) % holders.len()];
                    fetch_retries += 1;
                    obs.trace.record(
                        now,
                        "fetch.retry",
                        format!("to={to} from={source} attempt={next}"),
                    );
                    obs.tel.instant(now, "fetch.retry", to as u32, || {
                        vec![("from", (source as u64).into()), ("attempt", next.into())]
                    });
                    obs.note(to, now, "fetch.retry");
                    let found = probe_fetch(
                        &network,
                        source,
                        to,
                        payload_bytes,
                        &peers,
                        &mut net_rng,
                        &mut gs,
                    );
                    if let Some(FetchRoute { delay, hops, path }) = found {
                        match gs.mode {
                            GossipMode::Full => gs.gossip_bytes += payload_bytes * hops,
                            GossipMode::AnnounceFetch | GossipMode::Epidemic { .. } => {
                                gs.fetch_bytes += payload_bytes * hops
                            }
                        }
                        let fetch_route = gs.route_log.len();
                        gs.route_log.push(path);
                        sched.schedule_after(
                            delay,
                            Event::DeliverTx {
                                to,
                                idx: tx_idx,
                                route: fetch_route,
                            },
                        );
                        sched.schedule_after(
                            delay + fetch_backoff(next, &mut fetch_rng),
                            Event::FetchTimeout {
                                to,
                                fp,
                                attempt: next,
                            },
                        );
                    } else {
                        sched.schedule_after(
                            fetch_backoff(next, &mut fetch_rng),
                            Event::FetchTimeout {
                                to,
                                fp,
                                attempt: next,
                            },
                        );
                    }
                    fetches.get_mut(&(to, fp)).expect("episode is live").attempt = next;
                }
                Event::Watchdog => {
                    let timeout = cfg.watchdog.expect("watchdog event implies a timeout");
                    // A peer still training is a scheduled `TrainDone` — a
                    // guaranteed future progress event — so a round that is
                    // legitimately waiting on a straggler's long training
                    // (the wait-all case the paper's title poses) is not a
                    // stall, no matter how quiet the clock has been.
                    let training_pending = peers
                        .iter()
                        .any(|p| p.active && !p.done(cfg.rounds) && p.training);
                    if pending_faults == 0
                        && !training_pending
                        && now.saturating_since(obs.last_progress) >= timeout
                    {
                        use std::fmt::Write as _;
                        let n_active = peers.iter().filter(|p| p.active).count();
                        let mut detail = String::new();
                        for (i, peer) in peers.iter_mut().enumerate() {
                            if !peer.active || peer.done(cfg.rounds) {
                                continue;
                            }
                            let round = peer.current_round;
                            refresh_confirmed(peer, registry, round);
                            let cache = peer.confirmed_cache.as_ref().expect("just refreshed");
                            let arrived = cache
                                .subs
                                .iter()
                                .filter(|s| peer.model_store.contains_key(&s.model_hash))
                                .count();
                            let _ = write!(
                                detail,
                                " peer={i} round={round} training={} confirmed={} \
                                 arrived={arrived} bar={n_active}",
                                peer.training,
                                cache.subs.len(),
                            );
                            // Cite the peer's telemetry: what it last did...
                            if let Some((at, what)) = obs.last_event[i] {
                                let _ = write!(detail, " last={what}@{at}");
                            }
                            // ...every payload fetch still pending (sorted —
                            // the episode map's order is nondeterministic)...
                            let mut pending: Vec<(H256, u32)> = fetches
                                .iter()
                                .filter(|((p, _), _)| *p == i)
                                .map(|((_, fp), st)| (*fp, st.attempt))
                                .collect();
                            pending.sort_unstable_by_key(|&(fp, _)| fp);
                            for (fp, attempt) in pending {
                                let _ = write!(detail, " fetch={}@a{attempt}", fp.short());
                            }
                            // ...and whose confirmed round artifacts never
                            // arrived (the usual wait-all culprits).
                            let missing: Vec<String> = cache
                                .subs
                                .iter()
                                .filter(|s| !peer.model_store.contains_key(&s.model_hash))
                                .filter_map(|s| {
                                    addr_to_client.get(&s.sender).map(|c| c.to_string())
                                })
                                .collect();
                            if !missing.is_empty() {
                                let _ = write!(detail, " missing={}", missing.join(","));
                            }
                        }
                        let last_progress = obs.last_progress;
                        // Cite the policy the stuck round actually runs
                        // under — a controller may have moved it off the
                        // configured one.
                        let stuck_round = peers
                            .iter()
                            .filter(|p| p.active && !p.done(cfg.rounds))
                            .map(|p| p.current_round)
                            .min()
                            .unwrap_or(1);
                        let diag = format!(
                            "stalled: no progress for {timeout} under {:?} \
                             (last progress at {last_progress}):{detail}",
                            engine.wait(stuck_round)
                        );
                        obs.trace.record(now, "watchdog.stalled", diag.clone());
                        obs.tel.run_instant(now, "watchdog.stalled", || {
                            vec![
                                (
                                    "idle_secs",
                                    now.saturating_since(last_progress).as_secs_f64().into(),
                                ),
                                ("detail", diag.clone().into()),
                            ]
                        });
                        stall = Some(diag);
                        finished_at = now;
                        break;
                    }
                    obs.tel.run_instant(now, "watchdog.check", || {
                        vec![(
                            "idle_secs",
                            now.saturating_since(obs.last_progress).as_secs_f64().into(),
                        )]
                    });
                    // Re-arm: checking twice per window bounds detection
                    // latency at 1.5 timeouts.
                    sched.schedule_after(timeout / 2, Event::Watchdog);
                }
            }
            finished_at = now;
            if settled(&peers, pending_faults) {
                break;
            }
        }

        // --- assemble results -----------------------------------------------
        // Close whatever the run left open — truncated round phases (a stall
        // or settle mid-round) and unresolved fetch episodes, the latter in
        // sorted order so the trace's bytes never inherit map order.
        let mut open_fetches: Vec<(usize, H256, u64)> = fetches
            .iter()
            .map(|((to, fp), st)| (*to, *fp, st.span))
            .collect();
        open_fetches.sort_unstable_by_key(|&(to, fp, _)| (to, fp));
        for (to, _, span) in open_fetches {
            obs.tel.end(finished_at, "fetch", to as u32, span, || {
                vec![("truncated", true.into())]
            });
        }
        obs.close_open_spans(finished_at);
        // Fold the run-level meters into the metric set (the per-event
        // histograms are already in).
        obs.metrics.add("dropped_msgs", gs.dropped_msgs);
        obs.metrics.add("fetch_retries", fetch_retries);
        obs.metrics.add("fetch_recoveries", recoveries);
        obs.metrics.add("blocks_sealed", block_log.len() as u64);
        obs.metrics.set_gauge(
            "recovery_ms",
            if recoveries == 0 {
                0.0
            } else {
                (recovery_total / recoveries).as_secs_f64() * 1e3
            },
        );
        obs.metrics
            .set_gauge("stalled", if stall.is_some() { 1.0 } else { 0.0 });
        // Fold this run's chain-store contribution as a delta from the
        // run-start snapshot: with a fresh store the delta is the absolute
        // count, and with a caller-shared store each run still reports only
        // its own hits/misses/evictions — so replaying a spec reproduces the
        // same numbers. The run is single-threaded, so the deltas are exact.
        let store_delta = store.counters().since(&store_base);
        obs.metrics.add("store_exec_hits", store_delta.exec_hits);
        obs.metrics
            .add("store_exec_misses", store_delta.exec_misses);
        obs.metrics.add("store_sig_hits", store_delta.sig_hits);
        obs.metrics.add("store_sig_misses", store_delta.sig_misses);
        obs.metrics.add(
            "store_evictions",
            store_delta.exec_evicted + store_delta.sig_evicted,
        );
        let chain = self.chain_stats(&peers[0].chain);
        let audits: Vec<AuditRecord> = update_log
            .iter()
            .map(|u| {
                let author = addrs[u.client.0];
                let verified =
                    crate::nonrepudiation::collect_evidence(&peers[0].chain, registry, author, u)
                        .and_then(|ev| {
                            crate::nonrepudiation::verify_evidence(&peers[0].chain, &ev, u)
                        })
                        .is_ok();
                AuditRecord {
                    client: u.client,
                    round: u.round,
                    verified,
                }
            })
            .collect();
        let aggregates = confirmed_aggregates(&peers[0].chain, registry);
        let artifacts: Vec<Vec<H256>> = peers
            .iter()
            .map(|p| {
                let mut fps: Vec<H256> = p.model_store.keys().copied().collect();
                fps.sort_unstable();
                fps
            })
            .collect();
        let final_chain = peers[0].chain.clone();
        DecentralizedRun {
            peer_records: peers.into_iter().map(|p| p.records).collect(),
            chain,
            trace: obs.trace,
            finished_at,
            published_updates: update_log,
            audits,
            blocks_sealed: block_log.len(),
            gossip_bytes: gs.gossip_bytes,
            fetch_bytes: gs.fetch_bytes,
            artifacts,
            aggregates,
            metrics: obs.metrics,
            stall,
            policy_events: engine.decisions,
            final_chain,
        }
    }

    fn sample_race_delay(
        &self,
        peers: &[PeerState],
        difficulty: u128,
        rng: &mut impl Rng,
    ) -> SimDuration {
        let total: f64 = peers
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if p.active {
                    self.compute_for(i).effective_hashrate(p.training) * p.hash_scale
                } else {
                    0.0
                }
            })
            .sum();
        if total <= 0.0 {
            return SimDuration::from_secs_f64(1.0);
        }
        blockfed_chain::pow::sample_mining_delay(difficulty, total, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn import_with_orphans(
        &self,
        to: usize,
        idx: usize,
        now: SimTime,
        peers: &mut [PeerState],
        block_log: &[std::sync::Arc<blockfed_chain::Block>],
        tx_log: &[Transaction],
        obs: &mut Obs<'_>,
    ) {
        let p = &mut peers[to];
        p.orphans.push(idx);
        // Keep trying until no orphan imports (parents may arrive out of
        // order). A block whose parent was never delivered at all — its flood
        // crossed a partition, or this peer was dormant — triggers an
        // ancestor sync: the peer requests the missing block from whoever
        // sent the descendant, modeled as a lookup in the global block log.
        loop {
            let mut imported_any = false;
            let mut remaining = Vec::new();
            let mut missing: Vec<H256> = Vec::new();
            for &i in &p.orphans {
                let block = std::sync::Arc::clone(&block_log[i]);
                match p.chain.import_arc(block, &mut p.runtime) {
                    Ok(outcome) => {
                        if let blockfed_chain::ImportOutcome::Reorged { old_head } = outcome {
                            let height = p.chain.head_block().number();
                            obs.metrics.add("reorgs", 1);
                            obs.trace.record(
                                now,
                                "chain.reorg",
                                format!("peer={to} old_head={old_head} height={height}"),
                            );
                            obs.tel.instant(now, "chain.reorg", to as u32, || {
                                vec![
                                    ("old_head", old_head.short().into()),
                                    ("height", height.into()),
                                ]
                            });
                        }
                        imported_any = true;
                    }
                    Err(blockfed_chain::ImportError::UnknownParent(parent)) => {
                        remaining.push(i);
                        missing.push(parent);
                    }
                    Err(_) => {} // permanently invalid; drop
                }
            }
            p.orphans = remaining;
            for parent in missing {
                if let Some(j) = block_log.iter().position(|b| b.hash() == parent) {
                    if !p.orphans.contains(&j) {
                        p.orphans.push(j);
                        imported_any = true; // new material: retry the loop
                    }
                }
            }
            if !imported_any || p.orphans.is_empty() {
                break;
            }
        }
        p.mempool.prune(p.chain.state());
        // Re-broadcast-to-self: a reorg may have unwound blocks carrying this
        // peer's transactions after `prune` already dropped them from the
        // pool. Re-insert every authored tx still ahead of the account nonce
        // so it gets mined again (stale and duplicate inserts are rejected).
        for &i in &p.my_txs {
            let _ = p.mempool.insert(tx_log[i].clone(), p.chain.state());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_aggregate(
        &self,
        peer: usize,
        now: SimTime,
        registry: H160,
        peers: &mut [PeerState],
        scratch_pool: &mut [Sequential],
        addr_to_client: &HashMap<H160, ClientId>,
        publish_time: &HashMap<H256, SimTime>,
        hub: &RngHub,
        obs: &mut Obs<'_>,
        sched: &mut Scheduler<Event>,
        network: &Network,
        net_rng: &mut impl Rng,
        tx_log: &mut Vec<Transaction>,
        tx_update: &mut Vec<Option<usize>>,
        gs: &mut GossipState,
        train_time_rng: &mut impl Rng,
        engine: &mut PolicyEngine,
        committee: Option<&CommitteeCtx>,
        agg_log: &mut Vec<AggArtifact>,
        agg_pulls: &mut HashMap<(usize, H256), SimTime>,
    ) {
        let cfg = &self.config;
        // Wait policies measure against the population that can still
        // deliver: the currently active peers set the *bar*, while any
        // confirmed usable submission counts toward it — including one a
        // since-departed peer published before leaving (its signed model
        // remains a valid contribution). So after churn, "wait-all" means
        // "as many confirmed models as there are live peers", which keeps
        // rounds live without discarding legitimate updates. A hierarchical
        // run scopes the bar (and the candidate set below) to the peer's own
        // committee: tier-1 is the flat algorithm run per committee.
        let active_n = peers.iter().filter(|p| p.active).count();
        let n = peers
            .iter()
            .enumerate()
            .filter(|(i, p)| p.active && committee.is_none_or(|cs| cs.of[*i] == cs.of[peer]))
            .count();
        let round = peers[peer].current_round;
        if !peers[peer].active
            || peers[peer].done(cfg.rounds)
            || peers[peer].training
            || peers[peer].train_done_at.is_none()
        {
            return;
        }
        // Confirmed submissions on *this peer's* chain (memoized until its
        // head or round moves) with payloads at hand. The wait-policy bar is
        // checked on a plain count first: this runs on every delivered
        // transaction, and deep-cloning model parameters just to discover the
        // policy is not yet satisfied was the hottest allocation in the run.
        refresh_confirmed(&mut peers[peer], registry, round);
        let cache = peers[peer]
            .confirmed_cache
            .as_ref()
            .expect("just refreshed");
        // `ready` is monotone in the arrival count and the count can never
        // exceed either side of the intersection, so an upper-bound check
        // skips the per-submission membership scan for the long waiting
        // phase of every round.
        let wait_policy = engine.wait(round);
        let upper_bound = cache.subs.len().min(peers[peer].model_store.len());
        if !wait_policy.ready(upper_bound, n) || upper_bound == 0 {
            return;
        }
        // Tier-1 candidates are this committee's submissions only (trivially
        // everyone's in a flat run).
        let in_committee = |sender: &H160| {
            addr_to_client
                .get(sender)
                .is_some_and(|c| committee.is_none_or(|cs| cs.of[c.0] == cs.of[peer]))
        };
        let arrived_count = cache
            .subs
            .iter()
            .filter(|s| {
                in_committee(&s.sender) && peers[peer].model_store.contains_key(&s.model_hash)
            })
            .count();
        if !wait_policy.ready(arrived_count, n) || arrived_count == 0 {
            return;
        }
        let confirmed: Vec<crate::coupling::ConfirmedSubmission> = cache
            .subs
            .iter()
            .filter(|s| in_committee(&s.sender))
            .cloned()
            .collect();
        let arrived: Vec<ModelUpdate> = confirmed
            .iter()
            .filter_map(|s| peers[peer].model_store.get(&s.model_hash).cloned())
            .collect();

        let mut dropped: Vec<String> = Vec::new();

        // Malformed (non-finite) models can never enter an average; they are
        // dropped unconditionally and logged for the audit trail.
        let (finite, malformed): (Vec<ModelUpdate>, Vec<ModelUpdate>) =
            arrived.into_iter().partition(ModelUpdate::is_finite);
        for u in &malformed {
            dropped.push(format!("{}:malformed", u.client));
            obs.trace.record(
                now,
                "anomaly.malformed",
                format!("peer={peer} round={round} from={}", u.client),
            );
        }
        if finite.is_empty() {
            return; // nothing aggregatable yet; wait for more submissions
        }

        // Statistical norm gate: drop cohort-level norm outliers.
        let screened: Vec<ModelUpdate> = match cfg.norm_z_threshold {
            None => finite,
            Some(z) => {
                let refs: Vec<&ModelUpdate> = finite.iter().collect();
                let flagged: std::collections::HashSet<usize> =
                    crate::anomaly::detect_norm_outliers(&refs, z)
                        .into_iter()
                        .map(|r| r.index)
                        .collect();
                let mut kept = Vec::new();
                for (i, u) in finite.into_iter().enumerate() {
                    if flagged.contains(&i) {
                        dropped.push(format!("{}:norm-outlier", u.client));
                        obs.trace.record(
                            now,
                            "anomaly.norm",
                            format!("peer={peer} round={round} from={}", u.client),
                        );
                        continue;
                    }
                    kept.push(u);
                }
                kept
            }
        };
        if screened.is_empty() {
            return;
        }

        // Degeneracy gate: drop constant-prediction (free-rider) models. If
        // it would drop everything, skip it for liveness.
        let screened: Vec<ModelUpdate> = match cfg.degeneracy_min_classes {
            None => screened,
            Some(min) => {
                let test = &self.peer_tests[peer];
                let refs: Vec<&ModelUpdate> = screened.iter().collect();
                let scratch = &mut scratch_pool[0];
                let flagged: std::collections::HashSet<usize> =
                    crate::anomaly::detect_degenerate(&refs, min, |u| {
                        scratch.set_params_flat(&u.params);
                        scratch.evaluate_confusion(test)
                    })
                    .into_iter()
                    .map(|r| r.index)
                    .collect();
                if flagged.len() >= screened.len() {
                    obs.trace.record(
                        now,
                        "anomaly.degenerate-gate-skipped",
                        format!("peer={peer} round={round} all candidates degenerate"),
                    );
                    screened
                } else {
                    let mut kept = Vec::new();
                    for (i, u) in screened.into_iter().enumerate() {
                        if flagged.contains(&i) {
                            dropped.push(format!("{}:degenerate", u.client));
                            obs.trace.record(
                                now,
                                "anomaly.degenerate",
                                format!("peer={peer} round={round} from={}", u.client),
                            );
                            continue;
                        }
                        kept.push(u);
                    }
                    kept
                }
            }
        };

        // §III fitness gate: drop models below the threshold on this peer's
        // own test data; if everything fails once all peers reported, fall
        // back to the single best model so a round can always complete.
        let usable: Vec<ModelUpdate> = match cfg.fitness_threshold {
            None => screened,
            Some(th) => {
                let test = &self.peer_tests[peer];
                // Standalone fitness scores are independent per model: fan
                // them across the scratch pool.
                let accs =
                    blockfed_compute::par_map_with(&mut scratch_pool[..], &screened, |model, u| {
                        model.set_params_flat(&u.params);
                        model.evaluate(test).accuracy
                    });
                let mut scored: Vec<(f64, ModelUpdate)> = accs.into_iter().zip(screened).collect();
                let passing: Vec<ModelUpdate> = scored
                    .iter()
                    .filter(|(a, _)| *a >= th)
                    .map(|(_, u)| u.clone())
                    .collect();
                if !passing.is_empty() {
                    for (a, u) in &scored {
                        if *a < th {
                            dropped.push(format!("{}:unfit", u.client));
                            obs.trace.record(
                                now,
                                "anomaly.unfit",
                                format!("peer={peer} round={round} from={}", u.client),
                            );
                        }
                    }
                    passing
                } else if arrived_count == n {
                    scored.sort_by(|(a, _), (b, _)| b.partial_cmp(a).expect("finite accuracies"));
                    vec![scored.remove(0).1]
                } else {
                    return; // wait for more candidates
                }
            }
        };

        // Staleness-aware re-weighting (the age-of-block view): scale each
        // update's FedAvg weight by `decay.factor(s)` where `s` is how many
        // blocks bury its submission on this peer's chain. Weights never drop
        // below one sample so a cutoff decay cannot zero the aggregate.
        let usable: Vec<ModelUpdate> = match engine.decay(round) {
            None => usable,
            Some(decay) => {
                let head = peers[peer].chain.head_block().number();
                let depth_of: HashMap<H256, u32> = confirmed
                    .iter()
                    .filter_map(|s| {
                        peers[peer]
                            .chain
                            .block(&s.block_hash)
                            .map(|b| (s.model_hash, head.saturating_sub(b.number()) as u32))
                    })
                    .collect();
                usable
                    .into_iter()
                    .map(|mut u| {
                        let fp = crate::coupling::model_fingerprint(&u);
                        let s = depth_of.get(&fp).copied().unwrap_or(0);
                        let f = decay.factor(s);
                        u.sample_count = ((u.sample_count as f64) * f).round().max(1.0) as usize;
                        u
                    })
                    .collect()
            }
        };

        // Aggregation under the round's effective strategy (the paper's
        // "consider" search by default). A configured `strategy_switch`
        // overrides it from the cutover round onward — the lever fork replays
        // use to re-run a suffix of a finished run under different
        // aggregation semantics — and an adaptive controller may have moved
        // it at an earlier round boundary.
        let strategy = engine.strategy(round);
        if let Some((from, _)) = engine.strategy_switch {
            if round >= from && !engine.cutover_noted {
                // The replay cutover engaging is forward motion, not
                // silence: note it on the progress clock (and in telemetry)
                // so the watchdog cannot kill a run mid-switch.
                engine.cutover_noted = true;
                obs.last_progress = now;
                obs.trace.record(
                    now,
                    "policy.switched",
                    format!("peer={peer} round={round} replay-cutover strategy={strategy:?}"),
                );
                obs.tel.instant(now, "policy.switched", peer as u32, || {
                    vec![
                        ("round", round.into()),
                        (
                            "decision",
                            format!("replay-cutover strategy={strategy:?}").into(),
                        ),
                    ]
                });
            }
        }
        let refs: Vec<&ModelUpdate> = usable.iter().collect();
        let test = &self.peer_tests[peer];
        let mut agg_rng = hub.indexed_stream("aggregate", (peer as u64) << 32 | u64::from(round));
        let mut scorer = PoolScorer {
            pool: scratch_pool,
            test,
        };
        let outcome = aggregate_with(strategy, &refs, &mut scorer, &mut agg_rng)
            .expect("non-empty usable updates");

        let me = ClientId(peer);
        let label = |c: &Combination| c.label(Some(me));
        let combos: Vec<(String, f64)> = outcome
            .candidates
            .iter()
            .map(|(c, a)| (label(c), *a))
            .collect();
        let chosen_label = label(&outcome.combination);

        // Record the aggregate on chain: a variable-width mask over client
        // indices, so members past index 31 are preserved verbatim. In a
        // hierarchical run only the committee *leader* — its lowest-indexed
        // active member — records (and publishes) the committee aggregate;
        // in a flat run every peer records, exactly as before committees
        // existed.
        let is_leader = committee.is_none_or(|cs| {
            (0..peers.len()).find(|&i| peers[i].active && cs.of[i] == cs.of[peer]) == Some(peer)
        });
        let members: Vec<usize> = outcome.combination.members().iter().map(|c| c.0).collect();
        let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
        // FedAvg weight the committee aggregate carries into the tier-2
        // merge: the sample counts behind the chosen combination.
        let weight: u64 = usable
            .iter()
            .filter(|u| member_set.contains(&u.client.0))
            .map(|u| u.sample_count as u64)
            .sum::<u64>()
            .max(1);
        let mask = ComboMask::from_members(members.iter().copied());
        let agg_hash = blockfed_crypto::sha256::sha256(&blockfed_nn::serialize::encode_params(
            &outcome.params,
        ));
        let tier2_before = (gs.gossip_bytes, gs.fetch_bytes);
        if is_leader {
            let tx = record_aggregate_tx(
                round,
                mask,
                agg_hash,
                registry,
                &peers[peer].key,
                peers[peer].next_nonce,
            );
            peers[peer].next_nonce += 1;
            let idx = tx_log.len();
            tx_log.push(tx.clone());
            tx_update.push(None);
            let p = &mut peers[peer];
            p.my_txs.push(idx);
            let _ = p.mempool.insert(tx, p.chain.state());
            schedule_flood(
                network,
                peer,
                512,
                false,
                now,
                peers,
                net_rng,
                sched,
                gs,
                &mut obs.tel,
                |to, route| Event::DeliverTx { to, idx, route },
                |_| true,
            );
            if committee.is_some() {
                // Publish the committee aggregate itself: the cross-committee
                // artifact every peer pulls for its tier-2 merge. C such
                // artifacts per round replace N model payloads — the tier-2
                // half of the hierarchical traffic win.
                let aidx = agg_log.len();
                agg_log.push(AggArtifact {
                    hash: agg_hash,
                    params: outcome.params.clone(),
                    weight,
                    round,
                });
                peers[peer].agg_store.insert(agg_hash, aidx);
                schedule_flood(
                    network,
                    peer,
                    cfg.payload_bytes,
                    true,
                    now,
                    peers,
                    net_rng,
                    sched,
                    gs,
                    &mut obs.tel,
                    |to, route| Event::DeliverAgg {
                        to,
                        idx: aidx,
                        route,
                    },
                    |_| true,
                );
            }
        }
        if committee.is_some() {
            obs.metrics
                .add("tier2_gossip_bytes", gs.gossip_bytes - tier2_before.0);
            obs.metrics
                .add("tier2_fetch_bytes", gs.fetch_bytes - tier2_before.1);
        }

        let wait = now.saturating_since(peers[peer].train_done_at.expect("checked above"));
        obs.aggregated(peer, now);
        obs.metrics.observe("wait_secs", wait.as_secs_f64());
        obs.trace.record(
            now,
            "round.aggregated",
            format!("peer={peer} round={round} chosen={chosen_label} wait={wait}"),
        );
        obs.tel.instant(now, "round.aggregated", peer as u32, || {
            vec![
                ("round", round.into()),
                ("wait_secs", wait.as_secs_f64().into()),
                ("updates", (usable.len() as u64).into()),
                ("chosen", chosen_label.clone().into()),
            ]
        });
        // Age-of-block freshness of the consumed updates.
        let mut age_total = SimDuration::ZERO;
        let mut age_max = SimDuration::ZERO;
        for u in &usable {
            let fp = crate::coupling::model_fingerprint(u);
            if let Some(&published) = publish_time.get(&fp) {
                let age = now.saturating_since(published);
                obs.metrics.observe("staleness_secs", age.as_secs_f64());
                age_total += age;
                age_max = age_max.max(age);
            }
        }
        let update_age_mean = age_total / usable.len() as u64;
        peers[peer].records.push(PeerRoundRecord {
            round,
            combos,
            chosen: chosen_label,
            chosen_accuracy: outcome.score,
            wait,
            aggregated_at: now,
            updates_used: usable.len(),
            update_age_mean,
            update_age_max: age_max,
            dropped,
        });
        peers[peer].global_params = outcome.params;
        peers[peer].train_done_at = None;

        // Adaptive-controller decision point: the *first* aggregation of each
        // round feeds the controller one observation (built purely from state
        // the run already tracks), and any decisions it returns re-tune
        // rounds `round + 1` onward — never the round peers may already be
        // waiting in. A controller that stays quiet leaves every meter,
        // clock, and RNG stream (other than its own) untouched.
        if engine.controller.is_some() && round > engine.last_observed {
            engine.last_observed = round;
            let canonical = peers[peer].chain.head_block().number();
            let fork_rate = if engine.blocks_sealed == 0 {
                0.0
            } else {
                (1.0 - canonical.min(engine.blocks_sealed) as f64 / engine.blocks_sealed as f64)
                    .max(0.0)
            };
            let spread = obs
                .metrics
                .histogram("train_secs")
                .map(|h| h.max() - h.min())
                .unwrap_or(0.0);
            let accuracy = outcome.score;
            let accuracy_delta = engine.prev_accuracy.map_or(0.0, |p| accuracy - p);
            engine.prev_accuracy = Some(accuracy);
            let observation = crate::policy::RoundObservation {
                round,
                wait_secs: wait.as_secs_f64(),
                staleness_mean_secs: update_age_mean.as_secs_f64(),
                fork_rate,
                straggler_spread_secs: spread,
                accuracy,
                accuracy_delta,
                active_peers: active_n,
                committees: committee.map_or(1, |c| c.count),
                updates_used: usable.len(),
                wait_policy,
                staleness_decay: engine.decay(round),
            };
            for d in engine.observe(&observation, now) {
                // A policy switch is forward motion: reset the watchdog's
                // progress clock so a controlled run cannot be killed
                // mid-switch, and meter + trace the decision.
                obs.last_progress = now;
                obs.metrics.add("policy_switches", 1);
                obs.trace.record(
                    now,
                    "policy.switched",
                    format!("peer={peer} round={round} {d}"),
                );
                obs.tel.instant(now, "policy.switched", peer as u32, || {
                    vec![("round", round.into()), ("decision", d.to_string().into())]
                });
            }
        }

        // Map confirmed senders for the trace (audit-friendly).
        for s in &confirmed {
            if let Some(c) = addr_to_client.get(&s.sender) {
                obs.trace.record(
                    now,
                    "round.input",
                    format!("peer={peer} from={c} round={round}"),
                );
            }
        }

        match committee {
            Some(cs) => {
                // Tier-1 done: park the round until every other committee's
                // aggregate is both *recorded* on this peer's chain and *held*
                // locally, then merge. The merge — not this aggregation —
                // advances the round.
                peers[peer].tier1 = Some(Tier1Pending {
                    round,
                    done_at: now,
                    weight,
                    members,
                });
                self.try_merge(
                    peer,
                    now,
                    registry,
                    peers,
                    addr_to_client,
                    obs,
                    sched,
                    network,
                    net_rng,
                    tx_log,
                    tx_update,
                    gs,
                    train_time_rng,
                    cs,
                    agg_log,
                    agg_pulls,
                );
            }
            None if round < cfg.rounds => {
                peers[peer].current_round = round + 1;
                peers[peer].training = true;
                obs.begin_training(peer, now, round + 1);
                let base = self.compute_for(peer).training_time(
                    self.train_shards[peer].len(),
                    cfg.local_epochs,
                    true,
                );
                let jitter = base.mul_f64(train_time_rng.gen_range(0.0..0.05));
                sched.schedule_after(
                    base + jitter,
                    Event::TrainDone {
                        peer,
                        gen: peers[peer].train_gen,
                    },
                );
            }
            None => {}
        }
    }

    /// The tier-2 cross-committee merge: once a peer's own tier-1 aggregation
    /// is done, it waits until every *needed* committee — one with a live
    /// member or a confirmed `record_aggregate` for the round — has a
    /// confirmed record whose aggregate artifact the peer holds, then merges
    /// all committee aggregates by FedAvg weight in committee order. The
    /// choice of record per committee is its lowest-indexed sender with
    /// parameters at hand, so the merge is a pure function of chain + local
    /// artifacts and needs no cross-peer coordination. The highest-indexed
    /// active peer records the merged result on chain (one tier-2 record per
    /// round instead of N), and the merge advances the peer's round exactly
    /// like a flat aggregation does.
    #[allow(clippy::too_many_arguments)]
    fn try_merge(
        &self,
        peer: usize,
        now: SimTime,
        registry: H160,
        peers: &mut [PeerState],
        addr_to_client: &HashMap<H160, ClientId>,
        obs: &mut Obs<'_>,
        sched: &mut Scheduler<Event>,
        network: &Network,
        net_rng: &mut impl Rng,
        tx_log: &mut Vec<Transaction>,
        tx_update: &mut Vec<Option<usize>>,
        gs: &mut GossipState,
        train_time_rng: &mut impl Rng,
        committee: &CommitteeCtx,
        agg_log: &[AggArtifact],
        agg_pulls: &mut HashMap<(usize, H256), SimTime>,
    ) {
        let cfg = &self.config;
        if !peers[peer].active {
            return;
        }
        let Some(t1) = peers[peer].tier1.clone() else {
            return;
        };
        let round = t1.round;
        let my_com = committee.of[peer];
        refresh_agg_records(&mut peers[peer], registry, round);
        let records = peers[peer]
            .agg_records_cache
            .as_ref()
            .expect("just refreshed")
            .records
            .clone();
        // Per committee: whether any record is confirmed, and the chosen one
        // (lowest sender index with parameters held). Ties — a tier-2 record
        // from the same sender as a tier-1 record — resolve to the earliest
        // in chain order, which is the tier-1 record.
        let mut has_record = vec![false; committee.count];
        let mut chosen: Vec<Option<(usize, H256, ComboMask)>> = vec![None; committee.count];
        for rec in &records {
            let Some(c) = addr_to_client.get(&rec.sender) else {
                continue;
            };
            let com = committee.of[c.0];
            if com == my_com {
                continue;
            }
            has_record[com] = true;
            if !peers[peer].agg_store.contains_key(&rec.agg_hash) {
                continue;
            }
            match &chosen[com] {
                Some((best, _, _)) if *best <= c.0 => {}
                _ => chosen[com] = Some((c.0, rec.agg_hash, rec.combo_mask.clone())),
            }
        }
        let mut needed = vec![false; committee.count];
        for (i, p) in peers.iter().enumerate() {
            if p.active {
                needed[committee.of[i]] = true;
            }
        }
        for (com, h) in has_record.iter().enumerate() {
            if *h {
                needed[com] = true;
            }
        }
        let ready =
            (0..committee.count).all(|com| com == my_com || !needed[com] || chosen[com].is_some());
        if !ready {
            // Recovery: a committee's record is confirmed but its artifact
            // never arrived (lost flood, late join). Pull it from the
            // lowest-indexed active holder over the shortest open path,
            // guarded by the expected arrival of any pull already in flight.
            for com in 0..committee.count {
                if com == my_com || !has_record[com] || chosen[com].is_some() {
                    continue;
                }
                let mut cand: Option<(usize, H256)> = None;
                for rec in &records {
                    let Some(c) = addr_to_client.get(&rec.sender) else {
                        continue;
                    };
                    if committee.of[c.0] != com {
                        continue;
                    }
                    match cand {
                        Some((best, _)) if best <= c.0 => {}
                        _ => cand = Some((c.0, rec.agg_hash)),
                    }
                }
                let Some((_, hash)) = cand else {
                    continue;
                };
                if agg_pulls.get(&(peer, hash)).is_some_and(|&exp| now < exp) {
                    continue;
                }
                let Some(src) = (0..peers.len()).find(|&i| {
                    i != peer && peers[i].active && peers[i].agg_store.contains_key(&hash)
                }) else {
                    continue;
                };
                let aidx = peers[src].agg_store[&hash];
                if let Some(FetchRoute { delay, hops, path }) =
                    probe_fetch(network, src, peer, cfg.payload_bytes, peers, net_rng, gs)
                {
                    match gs.mode {
                        GossipMode::Full => gs.gossip_bytes += cfg.payload_bytes * hops,
                        GossipMode::AnnounceFetch | GossipMode::Epidemic { .. } => {
                            gs.fetch_bytes += cfg.payload_bytes * hops;
                        }
                    }
                    obs.metrics
                        .add("tier2_fetch_bytes", cfg.payload_bytes * hops);
                    let route = gs.route_log.len();
                    gs.route_log.push(path);
                    obs.trace.record(
                        now,
                        "net.agg-fetch",
                        format!("to={peer} from={src} round={round}"),
                    );
                    sched.schedule_after(
                        delay,
                        Event::DeliverAgg {
                            to: peer,
                            idx: aidx,
                            route,
                        },
                    );
                    agg_pulls.insert((peer, hash), now + delay);
                }
            }
            return;
        }
        // Weighted merge in committee-index order; the peer's own committee
        // contributes its tier-1 result (already in `global_params`).
        let dim = peers[peer].global_params.len();
        let mut acc = vec![0f64; dim];
        let mut total_w = 0f64;
        for (com, chosen_rec) in chosen.iter().enumerate().take(committee.count) {
            let (w, params) = if com == my_com {
                (t1.weight.max(1) as f64, &peers[peer].global_params)
            } else if let Some((_, hash, _)) = chosen_rec {
                let art = &agg_log[peers[peer].agg_store[hash]];
                (art.weight.max(1) as f64, &art.params)
            } else {
                continue; // not needed: no member, no record
            };
            for (a, p) in acc.iter_mut().zip(params.iter()) {
                *a += w * f64::from(*p);
            }
            total_w += w;
        }
        let merged: Vec<f32> = acc.iter().map(|a| (*a / total_w) as f32).collect();
        let merged_hash =
            blockfed_crypto::sha256::sha256(&blockfed_nn::serialize::encode_params(&merged));
        peers[peer].global_params = merged;
        // One tier-2 record per round: the highest-indexed active peer
        // records the merged aggregate with the union mask of every consumed
        // committee's members. (Its key may also have authored a tier-1
        // record for the round — the light scan sees both, which is benign:
        // chosen-record selection prefers the earlier, artifact-backed one.)
        if peers.iter().rposition(|p| p.active) == Some(peer) {
            let mut union: std::collections::BTreeSet<usize> = t1.members.iter().copied().collect();
            for c in chosen.iter().flatten() {
                union.extend(c.2.members());
            }
            let mask = ComboMask::from_members(union);
            let tx = record_aggregate_tx(
                round,
                mask,
                merged_hash,
                registry,
                &peers[peer].key,
                peers[peer].next_nonce,
            );
            peers[peer].next_nonce += 1;
            let idx = tx_log.len();
            tx_log.push(tx.clone());
            tx_update.push(None);
            let p = &mut peers[peer];
            p.my_txs.push(idx);
            let _ = p.mempool.insert(tx, p.chain.state());
            let before = (gs.gossip_bytes, gs.fetch_bytes);
            schedule_flood(
                network,
                peer,
                512,
                false,
                now,
                peers,
                net_rng,
                sched,
                gs,
                &mut obs.tel,
                |to, route| Event::DeliverTx { to, idx, route },
                |_| true,
            );
            obs.metrics
                .add("tier2_gossip_bytes", gs.gossip_bytes - before.0);
            obs.metrics
                .add("tier2_fetch_bytes", gs.fetch_bytes - before.1);
        }
        let merge_wait = now.saturating_since(t1.done_at);
        obs.metrics.add("committee_rounds", 1);
        obs.metrics
            .observe("merge_wait_secs", merge_wait.as_secs_f64());
        obs.last_progress = now;
        obs.note(peer, now, "round.merged");
        obs.trace.record(
            now,
            "round.merged",
            format!(
                "peer={peer} round={round} committees={} wait={merge_wait}",
                committee.count
            ),
        );
        obs.tel.instant(now, "round.merged", peer as u32, || {
            vec![
                ("round", round.into()),
                ("wait_secs", merge_wait.as_secs_f64().into()),
            ]
        });
        peers[peer].tier1 = None;
        if round < cfg.rounds {
            peers[peer].current_round = round + 1;
            peers[peer].training = true;
            obs.begin_training(peer, now, round + 1);
            let base = self.compute_for(peer).training_time(
                self.train_shards[peer].len(),
                cfg.local_epochs,
                true,
            );
            let jitter = base.mul_f64(train_time_rng.gen_range(0.0..0.05));
            sched.schedule_after(
                base + jitter,
                Event::TrainDone {
                    peer,
                    gen: peers[peer].train_gen,
                },
            );
        }
    }

    fn chain_stats(&self, chain: &Blockchain) -> ChainStats {
        let canonical = chain.canonical_chain();
        let mut total_txs = 0usize;
        let mut total_gas = 0u64;
        let mut total_payload = 0u64;
        let mut times = Vec::new();
        for hash in canonical.iter().skip(1) {
            let block = chain.block(hash).expect("canonical block");
            times.push(block.header.timestamp_ns);
            total_gas += block.header.gas_used;
            total_payload += block.total_payload_bytes();
            if let Some(receipts) = chain.receipts(hash) {
                total_txs += receipts.iter().filter(|r| r.is_success()).count();
            }
        }
        let mean_block_interval = if times.len() >= 2 {
            let span = times.last().unwrap() - times[0];
            Some(SimDuration::from_nanos(span / (times.len() as u64 - 1)))
        } else {
            None
        };
        ChainStats {
            blocks: canonical.len().saturating_sub(1),
            mean_block_interval,
            total_txs,
            total_gas,
            total_payload_bytes: total_payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
    use blockfed_nn::SimpleNnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        shards: Vec<Dataset>,
        tests: Vec<Dataset>,
    }

    fn fixture() -> Fixture {
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (train, test) = gen.generate(2);
        let mut rng = StdRng::seed_from_u64(3);
        let shards = partition_dataset(
            &train,
            3,
            Partition::DirichletLabelSkew { alpha: 0.7 },
            &mut rng,
        );
        Fixture {
            shards,
            tests: vec![test.clone(), test.clone(), test],
        }
    }

    fn quick_config(policy: WaitPolicy, seed: u64) -> DecentralizedConfig {
        DecentralizedConfig {
            rounds: 2,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            wait_policy: policy,
            strategy: Strategy::Consider,
            payload_bytes: 10_000,
            difficulty: 200_000, // fast blocks so tests stay quick
            compute: ComputeProfile {
                hashrate: 100_000.0,
                train_rate: 500.0,
                contention: 0.3,
                batch_parallel: false,
            },
            per_peer_compute: None,
            fitness_threshold: None,
            norm_z_threshold: None,
            degeneracy_min_classes: None,
            adversaries: Vec::new(),
            link: LinkSpec::lan(),
            topology: Topology::FullMesh,
            gossip: GossipMode::Full,
            staleness_decay: None,
            faults: Vec::new(),
            retarget: RetargetRule::Homestead,
            watchdog: Some(SimDuration::from_secs(600)),
            strategy_switch: None,
            store: None,
            snapshot_interval: None,
            prune_depth: None,
            controller: None,
            committees: None,
            seed,
        }
    }

    fn run(policy: WaitPolicy, seed: u64) -> DecentralizedRun {
        run_with(quick_config(policy, seed), seed)
    }

    fn run_with(config: DecentralizedConfig, seed: u64) -> DecentralizedRun {
        let fx = fixture();
        let driver = Decentralized::new(config, &fx.shards, &fx.tests);
        let cfg = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(seed);
        driver.run(&mut || cfg.build(&mut arch_rng))
    }

    /// A config where training-time differences dwarf the block interval, so
    /// asynchronous policies genuinely aggregate before stragglers finish.
    fn straggler_config(policy: WaitPolicy, seed: u64) -> DecentralizedConfig {
        let mut cfg = quick_config(policy, seed);
        cfg.compute = ComputeProfile {
            hashrate: 100_000.0,
            train_rate: 5.0,
            contention: 0.3,
            batch_parallel: false,
        };
        cfg.difficulty = 100_000;
        cfg
    }

    #[test]
    fn completes_all_rounds_for_all_peers() {
        let out = run(WaitPolicy::All, 1);
        assert_eq!(out.peer_records.len(), 3);
        for records in &out.peer_records {
            assert_eq!(records.len(), 2);
            assert_eq!(records[0].round, 1);
            assert_eq!(records[1].round, 2);
        }
    }

    #[test]
    fn wait_all_uses_every_model_and_enumerates_combos() {
        let out = run(WaitPolicy::All, 2);
        for records in &out.peer_records {
            for r in records {
                assert_eq!(r.updates_used, 3);
                assert_eq!(r.combos.len(), 7, "all subsets of 3 evaluated");
                // Chosen must be one of the evaluated combos with max accuracy.
                let max = r.combos.iter().map(|(_, a)| *a).fold(f64::MIN, f64::max);
                assert!((r.chosen_accuracy - max).abs() < 1e-12);
                assert!(r.accuracy_of(&r.chosen).is_some());
            }
        }
    }

    #[test]
    fn async_wait_two_aggregates_with_fewer_models() {
        let out = run_with(straggler_config(WaitPolicy::FirstK(2), 3), 3);
        let mut saw_partial = false;
        for records in &out.peer_records {
            for r in records {
                assert!(r.updates_used >= 2);
                if r.updates_used == 2 {
                    saw_partial = true;
                    assert_eq!(r.combos.len(), 3, "subsets of 2");
                }
            }
        }
        assert!(saw_partial, "wait-2 never aggregated early");
    }

    #[test]
    fn async_policy_reduces_waiting() {
        let sync = run_with(straggler_config(WaitPolicy::All, 4), 4);
        let async_run = run_with(straggler_config(WaitPolicy::FirstK(2), 4), 4);
        assert!(
            async_run.mean_wait() < sync.mean_wait(),
            "async {} !< sync {}",
            async_run.mean_wait(),
            sync.mean_wait()
        );
    }

    #[test]
    fn chain_reflects_the_run() {
        let out = run(WaitPolicy::All, 5);
        assert!(out.chain.blocks > 0);
        // 3 registrations + 3 peers × 2 rounds × (submit + aggregate) = 15.
        assert!(out.chain.total_txs >= 9, "txs {}", out.chain.total_txs);
        assert!(out.chain.total_gas > 0);
        // 6 model submissions × 10 000 declared payload bytes.
        assert!(out.chain.total_payload_bytes >= 40_000);
        assert!(out.trace.count("block.sealed") > 0);
        assert_eq!(out.trace.count("round.aggregated"), 6);
    }

    #[test]
    fn aggregates_read_back_from_chain_storage() {
        let out = run(WaitPolicy::All, 13);
        // Round-1 decisions are mined while round 2 runs, so at least the
        // first round's aggregates confirm on peer 0's chain and read back
        // through the registry's packed mask storage.
        assert!(
            out.aggregates.len() >= 3,
            "too few confirmed aggregates: {:?}",
            out.aggregates
        );
        for a in &out.aggregates {
            assert!(!a.combo_mask.is_empty());
            for m in a.combo_mask.members() {
                assert!(m < 3, "mask names a nonexistent peer: {}", a.combo_mask);
            }
            assert!((1..=2).contains(&a.round));
        }
        assert!(out.max_mask_bit().expect("aggregates exist") < 3);
    }

    #[test]
    fn try_new_rejects_oversize_population_with_typed_error() {
        let fx = fixture();
        // 1025 shards — one past the mask's widened width: graceful typed
        // rejection, no panic.
        let shards: Vec<Dataset> = (0..1025).map(|_| fx.tests[0].clone()).collect();
        let err = Decentralized::try_new(quick_config(WaitPolicy::All, 1), &shards, &shards)
            .err()
            .expect("must reject");
        assert_eq!(err, crate::error::ConfigError::TooManyPeers { got: 1025 });
        // The full mask domain is inside the ceiling now — 257 peers (the old
        // rejection point) and 1024 peers both construct.
        for n in [257usize, 1024] {
            let inside: Vec<Dataset> = (0..n).map(|_| fx.tests[0].clone()).collect();
            assert!(
                Decentralized::try_new(quick_config(WaitPolicy::All, 1), &inside, &inside).is_ok(),
                "{n} peers must be accepted"
            );
        }
    }

    #[test]
    fn try_new_rejects_bad_committee_specs() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 1);
        cfg.committees = Some(crate::committee::CommitteeSpec::contiguous(0));
        let err = Decentralized::try_new(cfg, &fx.shards, &fx.tests)
            .err()
            .expect("zero committees must reject");
        assert!(
            err.to_string().starts_with("invalid committee spec"),
            "{err}"
        );
        let mut cfg = quick_config(WaitPolicy::All, 1);
        cfg.committees = Some(crate::committee::CommitteeSpec::contiguous(4));
        let err = Decentralized::try_new(cfg, &fx.shards, &fx.tests)
            .err()
            .expect("more committees than peers must reject");
        assert!(
            err.to_string().contains("more committees than peers"),
            "{err}"
        );
    }

    #[test]
    fn single_committee_reproduces_flat_run_exactly() {
        let flat = run(WaitPolicy::All, 21);
        let mut cfg = quick_config(WaitPolicy::All, 21);
        cfg.committees = Some(crate::committee::CommitteeSpec::contiguous(1));
        let one = run_with(cfg, 21);
        assert_eq!(flat.peer_records, one.peer_records);
        assert_eq!(flat.chain, one.chain);
        assert_eq!(flat.finished_at, one.finished_at);
        assert_eq!(flat.gossip_bytes, one.gossip_bytes);
        assert_eq!(flat.fetch_bytes, one.fetch_bytes);
        assert_eq!(one.committee_rounds(), 0, "flat runs never merge");
    }

    #[test]
    fn committee_run_completes_with_tier2_merges() {
        let mut cfg = quick_config(WaitPolicy::All, 23);
        cfg.committees = Some(crate::committee::CommitteeSpec::contiguous(2));
        let out = run_with(cfg, 23);
        assert!(out.stall.is_none(), "stalled: {:?}", out.stall);
        for (i, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 2, "peer {i} must finish both rounds");
        }
        // Every peer merged every round: 3 peers × 2 rounds.
        assert_eq!(out.committee_rounds(), 6);
        // Tier-2 traffic was metered and is a subset of the run's totals.
        assert!(out.tier2_gossip_bytes() > 0);
        assert!(out.tier2_gossip_bytes() <= out.gossip_bytes);
        assert!(out.tier2_fetch_bytes() <= out.fetch_bytes);
        // Deterministic replay.
        let mut cfg = quick_config(WaitPolicy::All, 23);
        cfg.committees = Some(crate::committee::CommitteeSpec::contiguous(2));
        let again = run_with(cfg, 23);
        assert_eq!(out.peer_records, again.peer_records);
        assert_eq!(out.chain, again.chain);
        assert_eq!(out.finished_at, again.finished_at);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(WaitPolicy::All, 7);
        let b = run(WaitPolicy::All, 7);
        assert_eq!(a.peer_records, b.peer_records);
        assert_eq!(a.chain, b.chain);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(WaitPolicy::All, 8);
        let b = run(WaitPolicy::All, 9);
        assert_ne!(a.finished_at, b.finished_at);
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 11);
        cfg.rounds = 4;
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(11);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        for peer in 0..3 {
            let first = out.peer_records[peer][0].chosen_accuracy;
            let last = out.final_accuracy(peer);
            assert!(last > first, "peer {peer}: {first} -> {last}");
        }
    }

    #[test]
    fn fitness_gate_excludes_poisoned_peer() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 30);
        // Above chance (0.25 on 4 classes): a constant-prediction poisoned
        // model fails the gate, honest models pass within a round or two.
        cfg.fitness_threshold = Some(0.30);
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(30);
        let out = driver.run_with_hook(&mut || nn.build(&mut arch_rng), &mut |u| {
            if u.client == blockfed_fl::ClientId(0) {
                for p in &mut u.params {
                    *p = 25.0; // garbage weights: near-zero accuracy
                }
            }
        });
        // Peers B and C must never include A's model in their chosen combo.
        for peer in 1..3 {
            for r in &out.peer_records[peer] {
                assert!(
                    !r.chosen.split(',').any(|c| c == "A"),
                    "peer {peer} round {} chose poisoned A: {}",
                    r.round,
                    r.chosen
                );
                // And the combination search never even evaluated A.
                assert!(r
                    .combos
                    .iter()
                    .all(|(l, _)| !l.split(',').any(|c| c == "A")));
            }
        }
    }

    #[test]
    fn fitness_gate_fallback_keeps_rounds_alive() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 31);
        cfg.fitness_threshold = Some(1.1); // impossible threshold: all fail
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(31);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        // Fallback: every round completes with exactly the single best model.
        for records in &out.peer_records {
            assert_eq!(records.len(), 2);
            for r in records {
                assert_eq!(r.updates_used, 1, "single-model fallback");
                assert_eq!(r.combos.len(), 1, "single-model fallback");
            }
        }
    }

    #[test]
    fn every_published_update_audits_cleanly_under_wait_all() {
        let out = run(WaitPolicy::All, 12);
        // 3 peers × 2 rounds of submissions, all confirmed before the run can
        // end, so every audit must verify.
        assert_eq!(out.published_updates.len(), 6);
        assert_eq!(out.audits.len(), 6);
        assert!(out.audits.iter().all(|a| a.verified), "{:?}", out.audits);
        // The log covers every (client, round) pair exactly once.
        let mut pairs: Vec<(usize, u32)> =
            out.audits.iter().map(|a| (a.client.0, a.round)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 1), (1, 2), (2, 1), (2, 2)]);
    }

    #[test]
    fn poisoned_updates_still_bind_their_author() {
        // Non-repudiation is exactly this: the attacker signed the poisoned
        // artefact, so the evidence chain still verifies against it.
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 44);
        cfg.adversaries = vec![Adversary::new(
            blockfed_fl::ClientId(1),
            blockfed_fl::Attack::NanInjection { fraction: 1.0 },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(44);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        let attacker_audits: Vec<_> = out
            .audits
            .iter()
            .filter(|a| a.client == blockfed_fl::ClientId(1))
            .collect();
        assert!(!attacker_audits.is_empty());
        assert!(
            attacker_audits.iter().all(|a| a.verified),
            "{attacker_audits:?}"
        );
        // And the published log preserves the poisoned parameters.
        let poisoned = out
            .published_updates
            .iter()
            .find(|u| u.client == blockfed_fl::ClientId(1))
            .expect("attacker published");
        assert!(!poisoned.is_finite());
    }

    #[test]
    fn ages_are_recorded_and_bounded_by_wait_plus_training_spread() {
        let out = run(WaitPolicy::All, 11);
        for records in &out.peer_records {
            for r in records {
                assert!(r.update_age_max >= r.update_age_mean);
                // Fresh own model is included, so the mean is strictly below
                // the max whenever stragglers exist; at minimum it is finite.
                assert!(r.update_age_mean.as_secs_f64().is_finite());
            }
        }
        let pooled = out.age_of_block();
        assert!(pooled.count() > 0);
        assert!(pooled.max() >= pooled.mean());
    }

    #[test]
    fn sign_flip_adversary_is_dropped_by_norm_gate() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 40);
        cfg.norm_z_threshold = Some(1.2);
        cfg.adversaries = vec![Adversary::new(
            blockfed_fl::ClientId(0),
            blockfed_fl::Attack::Scale { factor: 50.0 },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(40);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert!(out.trace.count("attack.mounted") > 0);
        // Honest peers must have dropped A's boosted model as a norm outlier.
        let drops = out.drops();
        assert!(
            drops
                .iter()
                .any(|(peer, _, reason)| *peer != 0 && reason == "A:norm-outlier"),
            "no norm-outlier drop of the attacker recorded: {drops:?}"
        );
        // And their chosen combinations never include A while under attack.
        for peer in 1..3 {
            for r in &out.peer_records[peer] {
                assert!(
                    !r.chosen.split(',').any(|c| c == "A"),
                    "peer {peer} chose the attacker: {}",
                    r.chosen
                );
            }
        }
    }

    #[test]
    fn nan_adversary_is_always_screened_without_gates() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 41);
        cfg.adversaries = vec![Adversary::new(
            blockfed_fl::ClientId(1),
            blockfed_fl::Attack::NanInjection { fraction: 1.0 },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(41);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        // Every round completes; the malformed model is dropped everywhere.
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 2, "peer {peer} incomplete");
            for r in records {
                assert!(
                    r.dropped.iter().any(|d| d == "B:malformed"),
                    "{:?}",
                    r.dropped
                );
                assert_eq!(r.updates_used, 2);
            }
        }
        assert!(out.trace.count("anomaly.malformed") > 0);
    }

    #[test]
    fn degeneracy_gate_drops_constant_free_rider() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 45);
        cfg.degeneracy_min_classes = Some(2);
        cfg.adversaries = vec![Adversary::new(
            blockfed_fl::ClientId(0),
            blockfed_fl::Attack::Constant { value: 0.0 },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(45);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        // Honest peers flag and exclude the all-zeros constant model.
        assert!(out.trace.count("anomaly.degenerate") > 0);
        for peer in 1..3 {
            for r in &out.peer_records[peer] {
                assert!(
                    r.dropped.iter().any(|d| d == "A:degenerate"),
                    "peer {peer} round {}: {:?}",
                    r.round,
                    r.dropped
                );
                assert!(!r.chosen.split(',').any(|c| c == "A"));
            }
        }
    }

    #[test]
    fn best_k_strategy_caps_aggregation_size_on_chain() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 46);
        cfg.strategy = blockfed_fl::Strategy::BestK(2);
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(46);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        for records in &out.peer_records {
            assert_eq!(records.len(), 2);
            for r in records {
                // All three confirmed models were usable, but only the two
                // best entered the aggregate.
                assert_eq!(r.updates_used, 3);
                assert_eq!(r.chosen.split(',').count(), 2, "chosen {}", r.chosen);
                assert_eq!(r.combos.len(), 1, "best-k evaluates one candidate");
            }
        }
    }

    #[test]
    fn not_consider_strategy_always_averages_everything() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 47);
        cfg.strategy = blockfed_fl::Strategy::NotConsider;
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(47);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        for records in &out.peer_records {
            for r in records {
                assert_eq!(r.chosen.split(',').count(), 3, "chosen {}", r.chosen);
            }
        }
    }

    #[test]
    fn sleeper_adversary_behaves_honestly_before_activation() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 42);
        cfg.adversaries = vec![Adversary::new(
            blockfed_fl::ClientId(0),
            blockfed_fl::Attack::NanInjection { fraction: 1.0 },
        )
        .starting_at(2)];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(42);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        for records in &out.peer_records {
            // Round 1: no drops; round 2: A malformed.
            assert!(records[0].dropped.is_empty(), "{:?}", records[0].dropped);
            assert!(records[1].dropped.iter().any(|d| d == "A:malformed"));
        }
    }

    #[test]
    fn replay_adversary_resubmits_previous_round_params() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 43);
        cfg.rounds = 3;
        cfg.adversaries =
            vec![
                Adversary::new(blockfed_fl::ClientId(2), blockfed_fl::Attack::Replay)
                    .starting_at(2),
            ];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(43);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        // The run completes; replayed models are stale but finite, so they
        // aggregate unless gated.
        for records in &out.peer_records {
            assert_eq!(records.len(), 3);
        }
        assert!(out.trace.count("attack.mounted") >= 2);
    }

    #[test]
    #[should_panic(expected = "need at least two peers")]
    fn single_peer_rejected() {
        let fx = fixture();
        let _ = Decentralized::new(
            quick_config(WaitPolicy::All, 1),
            &fx.shards[..1],
            &fx.tests[..1],
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault timeline")]
    fn out_of_range_fault_rejected() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 1);
        cfg.faults = vec![crate::faults::TimedFault::at_secs(
            1.0,
            crate::faults::Fault::PeerLeave { peer: 9 },
        )];
        let _ = Decentralized::new(cfg, &fx.shards, &fx.tests);
    }

    #[test]
    fn peer_leaving_mid_round_does_not_deadlock_wait_all() {
        // Slow training (≈10 s) so the leave at t=1 s fires mid-round, before
        // the departing peer submits. The two survivors' WaitPolicy::All must
        // re-measure against the reduced population and finish every round.
        let fx = fixture();
        let mut cfg = straggler_config(WaitPolicy::All, 50);
        cfg.faults = vec![crate::faults::TimedFault::at_secs(
            1.0,
            crate::faults::Fault::PeerLeave { peer: 2 },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(50);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert_eq!(out.trace.count("churn.leave"), 1);
        // Survivors complete every round aggregating the two live updates.
        for peer in 0..2 {
            assert_eq!(out.peer_records[peer].len(), 2, "peer {peer} incomplete");
            for r in &out.peer_records[peer] {
                assert_eq!(r.updates_used, 2, "peer {peer} round {}", r.round);
            }
        }
        // The departed peer never aggregated.
        assert!(out.peer_records[2].is_empty());
    }

    #[test]
    fn joining_peer_syncs_chain_before_submitting() {
        // Peer 2 is dormant until t=6 s; by then several blocks exist. On
        // join it must import the chain (synced_height > 0), register, and
        // participate in the round the network is currently in.
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 51);
        cfg.rounds = 3;
        cfg.faults = vec![crate::faults::TimedFault::at_secs(
            6.0,
            crate::faults::Fault::PeerJoin { peer: 2 },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(51);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert_eq!(out.trace.count("churn.join"), 1);
        let join = out
            .trace
            .with_label("churn.join")
            .next()
            .expect("join traced")
            .clone();
        let synced: u64 = join
            .detail
            .split("synced_height=")
            .nth(1)
            .expect("synced_height recorded")
            .parse()
            .expect("numeric height");
        assert!(synced > 0, "joiner synced no blocks: {}", join.detail);
        // The joiner's first submission comes after the join.
        let join_time = join.time;
        let first_submit = out
            .trace
            .entries()
            .iter()
            .find(|e| e.label == "train.done" && e.detail.contains("peer=2"))
            .expect("joiner trained");
        assert!(first_submit.time > join_time);
        // It participated and its published updates audit cleanly.
        assert!(!out.peer_records[2].is_empty());
        let joiner_audits: Vec<_> = out
            .audits
            .iter()
            .filter(|a| a.client == ClientId(2))
            .collect();
        assert!(!joiner_audits.is_empty());
        assert!(
            joiner_audits.iter().all(|a| a.verified),
            "{joiner_audits:?}"
        );
        // Everyone finishes: originals do 3 rounds, the joiner its share.
        assert_eq!(out.peer_records[0].len(), 3);
        assert_eq!(out.peer_records[1].len(), 3);
    }

    #[test]
    fn partition_mid_flood_drops_deliveries_then_heals_and_recovers() {
        // A 2 s-latency link keeps submissions in flight long enough for the
        // partition at t=0.15 s to cut them mid-flood; the heal at t=6 s lets
        // block gossip and on-demand payload fetches repair the round.
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 52);
        // Blocks slower than the link latency, so gossip converges instead of
        // fork-storming while every delivery is 2 s in flight.
        cfg.difficulty = 1_000_000;
        cfg.link = LinkSpec {
            latency: blockfed_sim::UniformJitter::constant(SimDuration::from_millis(2_000)),
            bandwidth: None,
            loss_rate: 0.0,
        };
        cfg.faults = vec![
            crate::faults::TimedFault::at_secs(
                0.15,
                crate::faults::Fault::Partition {
                    left: vec![0],
                    right: vec![1, 2],
                },
            ),
            crate::faults::TimedFault::at_secs(6.0, crate::faults::Fault::HealAll),
        ];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(52);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert_eq!(out.trace.count("fault.partition"), 1);
        assert_eq!(out.trace.count("fault.heal"), 1);
        assert!(
            out.trace.count("net.dropped") > 0,
            "no in-flight delivery crossed the cut"
        );
        // Every peer still completes every round after the heal.
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 2, "peer {peer} incomplete");
        }
    }

    #[test]
    fn ring_topology_with_mid_run_leave_routes_around_the_dead_peer() {
        // 4 peers on a ring; peer 1 crash-stops before submitting. Gossip
        // must route the long way round (a dead peer relays nothing) and the
        // three survivors' wait-all rounds must all complete.
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (train, test) = gen.generate(2);
        let mut rng = StdRng::seed_from_u64(3);
        let shards = partition_dataset(
            &train,
            4,
            Partition::DirichletLabelSkew { alpha: 0.7 },
            &mut rng,
        );
        let tests = vec![test.clone(), test.clone(), test.clone(), test];
        let mut cfg = straggler_config(WaitPolicy::All, 60);
        cfg.topology = Topology::Ring;
        cfg.faults = vec![crate::faults::TimedFault::at_secs(
            1.0,
            crate::faults::Fault::PeerLeave { peer: 1 },
        )];
        let driver = Decentralized::new(cfg, &shards, &tests);
        let nn = SimpleNnConfig::tiny(tests[0].feature_dim(), tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(60);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        for peer in [0usize, 2, 3] {
            assert_eq!(out.peer_records[peer].len(), 2, "peer {peer} incomplete");
            for r in &out.peer_records[peer] {
                assert_eq!(r.updates_used, 3, "peer {peer} round {}", r.round);
            }
        }
        assert!(out.peer_records[1].is_empty());
    }

    #[test]
    fn hash_rate_shock_shifts_mining_share() {
        // A 50× hash-rate shock to peer 0 makes it win nearly every block.
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 53);
        cfg.faults = vec![crate::faults::TimedFault::at_secs(
            0.0,
            crate::faults::Fault::HashRateShock {
                peer: 0,
                factor: 50.0,
            },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(53);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert_eq!(out.trace.count("fault.hashshock"), 1);
        let sealed: Vec<String> = out
            .trace
            .with_label("block.sealed")
            .map(|e| e.detail.clone())
            .collect();
        let by_zero = sealed.iter().filter(|d| d.contains("miner=0")).count();
        assert!(
            by_zero * 2 > sealed.len(),
            "shocked miner won only {by_zero}/{} blocks",
            sealed.len()
        );
    }

    #[test]
    fn staleness_decay_preserves_completion_and_determinism() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 54);
        cfg.staleness_decay = Some(blockfed_fl::StalenessDecay::Polynomial { a: 1.0 });
        let run_once = || {
            let driver = Decentralized::new(cfg.clone(), &fx.shards, &fx.tests);
            let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
            let mut arch_rng = StdRng::seed_from_u64(54);
            driver.run(&mut || nn.build(&mut arch_rng))
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.peer_records, b.peer_records);
        for records in &a.peer_records {
            assert_eq!(records.len(), 2);
        }
    }

    #[test]
    fn gossip_and_fork_metrics_are_recorded() {
        let out = run(WaitPolicy::All, 55);
        assert!(out.blocks_sealed >= out.chain.blocks);
        assert!(out.gossip_bytes > 0);
        assert_eq!(out.fetch_bytes, 0, "Full mode never meters fetches");
        let f = out.fork_rate();
        assert!((0.0..=1.0).contains(&f), "fork rate {f}");
        // A lossless, fault-free run never loses, retries, or stalls.
        assert_eq!(out.dropped_msgs(), 0);
        assert_eq!(out.fetch_retries(), 0);
        assert_eq!(out.recovery_ms(), 0.0);
        assert!(out.stall.is_none());
        // And the metric set carries the per-phase timing distributions.
        let waits = out.metrics.histogram("wait_secs").expect("waits observed");
        assert_eq!(waits.count(), 6, "3 peers x 2 rounds");
        assert!(out.metrics.histogram("train_secs").is_some());
        assert_eq!(
            out.metrics.counter("blocks_sealed"),
            out.blocks_sealed as u64
        );
    }

    #[test]
    fn invalid_link_profile_rejected_with_typed_error() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 1);
        cfg.link.loss_rate = 1.5;
        let err = Decentralized::try_new(cfg, &fx.shards, &fx.tests)
            .err()
            .expect("must reject");
        assert!(matches!(err, ConfigError::InvalidLink(_)));
        assert!(err.to_string().starts_with("invalid link profile"), "{err}");
    }

    #[test]
    fn lossy_run_completes_via_fetch_retries() {
        // 30% per-edge loss: artifact floods lose deliveries, the on-demand
        // fetch path recovers them, and lost pulls are retried on timeout.
        // Every round must still complete with every artifact everywhere.
        let mut cfg = quick_config(WaitPolicy::All, 70);
        cfg.gossip = GossipMode::AnnounceFetch;
        cfg.link = LinkSpec::lan().with_loss(0.30);
        let out = run_with(cfg, 70);
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 2, "peer {peer} incomplete");
        }
        assert!(out.dropped_msgs() > 0, "30% loss dropped nothing");
        assert!(out.stall.is_none(), "{:?}", out.stall);
        // Wait-all rounds force full dissemination: everyone ends up holding
        // all 3 peers × 2 rounds of artifacts despite the loss.
        for inventory in &out.artifacts {
            assert_eq!(inventory.len(), 6);
        }
    }

    #[test]
    fn traced_run_is_bit_identical_to_untraced() {
        // Attaching a real sink must not perturb the simulation: telemetry
        // draws no RNG and allocates span ids whether or not it records.
        let mk_cfg = || {
            let mut cfg = quick_config(WaitPolicy::All, 70);
            cfg.gossip = GossipMode::AnnounceFetch;
            cfg.link = LinkSpec::lan().with_loss(0.30);
            cfg
        };
        let plain = run_with(mk_cfg(), 70);

        let fx = fixture();
        let driver = Decentralized::new(mk_cfg(), &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(70);
        let mut sink = blockfed_telemetry::MemorySink::new();
        let traced = driver.run_traced(&mut || nn.build(&mut arch_rng), &mut sink);

        assert_eq!(plain.peer_records, traced.peer_records);
        assert_eq!(plain.finished_at, traced.finished_at);
        assert_eq!(plain.metrics, traced.metrics);
        assert_eq!(plain.gossip_bytes, traced.gossip_bytes);
        assert_eq!(plain.fetch_bytes, traced.fetch_bytes);

        // The sink captured the round lifecycle and the network events.
        for name in [
            "round",
            "round.train",
            "round.wait",
            "net.flood",
            "fetch",
            "pow.sealed",
            "round.aggregated",
        ] {
            assert!(sink.contains(name), "trace missing {name}");
        }
        // Spans balance: every begin has a matching end.
        use blockfed_telemetry::RecordKind;
        let begins = sink
            .records()
            .iter()
            .filter(|r| r.kind == RecordKind::Begin)
            .count();
        let ends = sink
            .records()
            .iter()
            .filter(|r| r.kind == RecordKind::End)
            .count();
        assert_eq!(begins, ends, "unbalanced spans in trace");
        // And the JSONL export passes its own schema validator.
        let lines =
            blockfed_telemetry::jsonl::validate_jsonl(&sink.to_jsonl()).expect("valid JSONL");
        assert_eq!(lines, sink.records().len());
    }

    #[test]
    fn lost_pull_is_retried_not_leaked() {
        // Crank the loss until a pull itself is lost in transit: the episode
        // must survive its failed delivery (the old one-shot set forgot it)
        // and retry from a rotated holder until the artifact lands.
        let mut found = None;
        for seed in 70..90 {
            let mut cfg = quick_config(WaitPolicy::All, seed);
            cfg.gossip = GossipMode::AnnounceFetch;
            cfg.link = LinkSpec::lan().with_loss(0.45);
            let out = run_with(cfg, seed);
            if out.fetch_retries() > 0 {
                found = Some(out);
                break;
            }
        }
        let out = found.expect("no seed in 70..90 exercised a fetch retry");
        assert!(out.trace.count("net.payload-fetch") > 0);
        assert!(out.trace.count("fetch.retry") > 0);
        assert!(
            out.trace.count("fetch.recovered") > 0,
            "retried fetches never recovered"
        );
        // Every round still completed: nothing stayed stuck in flight.
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 2, "peer {peer} incomplete");
        }
        assert!(out.recovery_ms() > 0.0);
        assert!(out.stall.is_none());
    }

    #[test]
    fn gossip_modes_agree_under_packet_loss() {
        // Drop sampling happens on the flood's relay tree with the payload's
        // byte size in both modes, so a lossy run is still bit-identical
        // across gossip modes — meters aside.
        let run_lossy = |mode: GossipMode| {
            let mut cfg = quick_config(WaitPolicy::All, 71);
            cfg.gossip = mode;
            cfg.link = LinkSpec::lan().with_loss(0.20);
            run_with(cfg, 71)
        };
        let full = run_lossy(GossipMode::Full);
        let af = run_lossy(GossipMode::AnnounceFetch);
        assert_eq!(full.peer_records, af.peer_records);
        assert_eq!(full.artifacts, af.artifacts);
        assert_eq!(full.finished_at, af.finished_at);
        assert_eq!(full.dropped_msgs(), af.dropped_msgs());
        assert_eq!(full.fetch_retries(), af.fetch_retries());
        assert!(full.dropped_msgs() > 0);
        assert_eq!(full.fetch_bytes, 0);
    }

    #[test]
    fn crashed_peer_restarts_resyncs_and_finishes() {
        // Peer 2 crashes mid-training at t=1 s and restarts at t=30 s. The
        // crash must not deadlock the survivors' wait-all rounds, and the
        // restarted peer must resync the chain, retrain its round, and still
        // complete both rounds.
        let fx = fixture();
        let mut cfg = straggler_config(WaitPolicy::All, 72);
        cfg.faults = vec![
            crate::faults::TimedFault::at_secs(1.0, crate::faults::Fault::PeerCrash { peer: 2 }),
            crate::faults::TimedFault::at_secs(30.0, crate::faults::Fault::PeerRestart { peer: 2 }),
        ];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(72);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert_eq!(out.trace.count("churn.crash"), 1);
        assert_eq!(out.trace.count("churn.restart"), 1);
        let restart = out
            .trace
            .with_label("churn.restart")
            .next()
            .expect("restart traced");
        let synced: u64 = restart
            .detail
            .split("synced_height=")
            .nth(1)
            .expect("synced_height recorded")
            .parse()
            .expect("numeric height");
        assert!(
            synced > 0,
            "restarted peer synced no blocks: {}",
            restart.detail
        );
        // All three peers complete both rounds — the crashed peer included,
        // because it kept its identity and round position.
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 2, "peer {peer} incomplete");
        }
        assert!(out.stall.is_none(), "{:?}", out.stall);
    }

    #[test]
    fn crash_restart_runs_are_deterministic() {
        let run_once = || {
            let fx = fixture();
            let mut cfg = straggler_config(WaitPolicy::All, 73);
            cfg.faults = vec![
                crate::faults::TimedFault::at_secs(
                    1.0,
                    crate::faults::Fault::PeerCrash { peer: 1 },
                ),
                crate::faults::TimedFault::at_secs(
                    25.0,
                    crate::faults::Fault::PeerRestart { peer: 1 },
                ),
            ];
            let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
            let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
            let mut arch_rng = StdRng::seed_from_u64(73);
            driver.run(&mut || nn.build(&mut arch_rng))
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.peer_records, b.peer_records);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(
            a.metrics, b.metrics,
            "full metric sets must match bit for bit"
        );
    }

    #[test]
    fn watchdog_fails_stalled_wait_all_run_with_diagnostic() {
        // A permanent partition isolates peer 0 before any submission can
        // cross; under WaitPolicy::All nobody's bar of 3 is ever met again.
        // Without the watchdog this run would spin (blocks keep sealing on
        // both sides) until the event cap; with it, the run stops quickly
        // with a diagnostic naming the stuck peers.
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 74);
        cfg.difficulty = 1_000_000;
        cfg.link = LinkSpec {
            latency: blockfed_sim::UniformJitter::constant(SimDuration::from_millis(2_000)),
            bandwidth: None,
            loss_rate: 0.0,
        };
        cfg.watchdog = Some(SimDuration::from_secs(60));
        cfg.faults = vec![crate::faults::TimedFault::at_secs(
            0.15,
            crate::faults::Fault::Partition {
                left: vec![0],
                right: vec![1, 2],
            },
        )];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(74);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        let diag = out.stall.as_ref().expect("run must be flagged as stalled");
        assert!(diag.starts_with("stalled"), "{diag}");
        assert!(diag.contains("peer="), "diagnostic names no peer: {diag}");
        assert_eq!(out.trace.count("watchdog.stalled"), 1);
        // The run stopped well before the event cap could: no peer finished
        // both rounds, and virtual time is bounded by a few watchdog windows.
        assert!(out.peer_records.iter().all(|r| r.len() < 2));
        assert!(out.finished_at.as_secs_f64() < 600.0, "{}", out.finished_at);
    }

    #[test]
    fn gave_up_fetch_restart_carries_recovery_time() {
        // Regression for the recovery meter: a partition cuts an in-flight
        // payload pull, the episode exhausts its attempt budget and gives up,
        // and the next confirming block after the heal restarts the chase.
        // `recovery_ms` must cover the whole chase — the gave-up episodes
        // included — not just the final (short, post-heal) episode.
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 80);
        cfg.rounds = 1;
        cfg.gossip = GossipMode::AnnounceFetch;
        // Slow serialization: the 10 kB artifact spends ~20 s on the wire
        // while blocks (~1.3 kB) cross in a few seconds, so a block confirms
        // a submission long before its payload can land.
        cfg.link = LinkSpec {
            latency: blockfed_sim::UniformJitter::constant(SimDuration::from_millis(50)),
            bandwidth: Some(500),
            loss_rate: 0.0,
        };
        // Cut after the fetch starts but while its pull is in flight; heal
        // only after the ~40 s attempt budget has run out.
        cfg.faults = vec![
            crate::faults::TimedFault::at_secs(
                12.0,
                crate::faults::Fault::Partition {
                    left: vec![0],
                    right: vec![1, 2],
                },
            ),
            crate::faults::TimedFault::at_secs(80.0, crate::faults::Fault::HealAll),
        ];
        let driver = Decentralized::new(cfg, &fx.shards, &fx.tests);
        let nn = SimpleNnConfig::tiny(fx.tests[0].feature_dim(), fx.tests[0].num_classes());
        let mut arch_rng = StdRng::seed_from_u64(80);
        let out = driver.run(&mut || nn.build(&mut arch_rng));
        assert!(
            out.metrics.counter("fetch_gave_up") >= 1,
            "no episode exhausted its budget: {:?}",
            out.metrics
        );
        assert!(
            out.metrics.counter("fetch_recoveries") >= 1,
            "nothing recovered after the heal: {:?}",
            out.metrics
        );
        assert!(out.trace.count("fetch.gave-up") >= 1);
        assert!(out.trace.count("fetch.recovered") >= 1);
        // The run settles: every peer still completes its round.
        assert!(out.stall.is_none(), "{:?}", out.stall);
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 1, "peer {peer} incomplete");
        }
        // The carried chase dwarfs any single post-heal episode (~20 s on
        // this link): only give-up time folded into the gauge gets it there.
        assert!(
            out.recovery_ms() > 30_000.0,
            "recovery_ms lost the gave-up episodes: {}",
            out.recovery_ms()
        );
    }

    #[test]
    fn watchdog_tolerates_training_longer_than_its_window() {
        // Regression for the progress clock: a straggler whose *training*
        // outlasts the whole watchdog window is guaranteed future progress
        // (its TrainDone is scheduled), so a wait-all round quietly waiting
        // on it must not be flagged as a stall.
        let mut cfg = quick_config(WaitPolicy::All, 81);
        cfg.rounds = 1;
        cfg.watchdog = Some(SimDuration::from_secs(30));
        let fast = cfg.compute;
        let mut slow = cfg.compute;
        slow.train_rate = 1.0; // ~60–150 s of training vs the 30 s window
        cfg.per_peer_compute = Some(vec![fast, fast, slow]);
        let out = run_with(cfg, 81);
        assert!(out.stall.is_none(), "legit wait flagged: {:?}", out.stall);
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 1, "peer {peer} incomplete");
        }
        // The straggler's training really did outlast the window, so the old
        // clock (no training-pending guard) would have fired.
        let trains = out
            .metrics
            .histogram("train_secs")
            .expect("trains observed");
        assert!(trains.max() > 30.0, "straggler too fast: {}", trains.max());
        assert_eq!(out.trace.count("watchdog.stalled"), 0);
    }

    #[test]
    fn threshold_controller_switches_policy_mid_run() {
        // The adaptive loop end to end: under straggler-dominated wait-all
        // rounds the threshold rule demotes All → FirstK at a round boundary,
        // and the decision log, counter, and trace all record it.
        let mut cfg = straggler_config(WaitPolicy::All, 82);
        cfg.rounds = 3;
        cfg.controller = Some(ControllerSpec::threshold(crate::policy::RuleConfig {
            wait_high_secs: 2.0,
            ..Default::default()
        }));
        let out = run_with(cfg, 82);
        assert!(
            !out.policy_events.is_empty(),
            "controller never fired: {:?}",
            out.metrics
        );
        assert_eq!(out.policy_switches(), out.policy_events.len() as u64);
        assert!(out.trace.count("policy.switched") > 0);
        assert!(out.stall.is_none(), "{:?}", out.stall);
        for (peer, records) in out.peer_records.iter().enumerate() {
            assert_eq!(records.len(), 3, "peer {peer} incomplete");
        }
        // Decisions bind to the round that triggered them and change later
        // rounds only: a switch observed at round r leaves r's policy alone,
        // so every switch round is strictly before the final round.
        for ev in &out.policy_events {
            assert!((1..3).contains(&ev.round), "switch at round {}", ev.round);
        }
        // The wait policy genuinely changed: some later round aggregated
        // with fewer than all three updates.
        let demoted = out
            .peer_records
            .iter()
            .flatten()
            .any(|r| r.round > out.policy_events[0].round && r.updates_used < 3);
        assert!(demoted, "no round ran under the demoted policy");
    }

    #[test]
    fn noop_controller_is_bit_identical_to_static() {
        // The controller hook must be free when it never fires: same records,
        // metrics, chain, and settle time as the static run, and an empty
        // decision log.
        let baseline = run(WaitPolicy::All, 83);
        let mut cfg = quick_config(WaitPolicy::All, 83);
        cfg.controller = Some(ControllerSpec::noop());
        let noop = run_with(cfg, 83);
        assert_eq!(baseline.peer_records, noop.peer_records);
        assert_eq!(baseline.metrics, noop.metrics);
        assert_eq!(baseline.chain, noop.chain);
        assert_eq!(baseline.finished_at, noop.finished_at);
        assert!(noop.policy_events.is_empty());
        assert_eq!(noop.policy_switches(), 0);
    }

    #[test]
    fn invalid_controller_rejected_with_typed_error() {
        let fx = fixture();
        let mut cfg = quick_config(WaitPolicy::All, 1);
        cfg.controller = Some(ControllerSpec::bandit(crate::policy::BanditConfig {
            arms: Vec::new(),
            epsilon: 0.2,
        }));
        let err = Decentralized::try_new(cfg, &fx.shards, &fx.tests)
            .err()
            .expect("must reject");
        assert!(matches!(err, ConfigError::InvalidController(_)));
        assert!(
            err.to_string().starts_with("invalid policy controller"),
            "{err}"
        );
    }

    fn run_with_gossip(
        mode: GossipMode,
        faults: Vec<crate::faults::TimedFault>,
    ) -> DecentralizedRun {
        let mut cfg = quick_config(WaitPolicy::All, 56);
        cfg.gossip = mode;
        cfg.faults = faults;
        run_with(cfg, 56)
    }

    #[test]
    fn gossip_modes_drive_identical_simulations_with_different_meters() {
        let full = run_with_gossip(GossipMode::Full, Vec::new());
        let af = run_with_gossip(GossipMode::AnnounceFetch, Vec::new());
        // The simulation is bit-identical: same records (waits included),
        // same chain, same artifacts everywhere, same settle time.
        assert_eq!(full.peer_records, af.peer_records);
        assert_eq!(full.chain, af.chain);
        assert_eq!(full.finished_at, af.finished_at);
        assert_eq!(full.blocks_sealed, af.blocks_sealed);
        assert_eq!(full.artifacts, af.artifacts);
        // Every peer holds every artifact under wait-all: 3 peers × 2 rounds.
        for inventory in &af.artifacts {
            assert_eq!(inventory.len(), 6);
        }
        // Only the meters differ: announce/fetch floods digests and pulls
        // payloads, Full floods payloads and pulls nothing.
        assert_eq!(full.fetch_bytes, 0);
        assert!(af.fetch_bytes > 0);
        assert!(
            af.gossip_bytes < full.gossip_bytes,
            "announce floods must be cheaper: {} !< {}",
            af.gossip_bytes,
            full.gossip_bytes
        );
    }

    #[test]
    fn tiny_artifacts_are_inlined_not_double_counted() {
        // A payload at or below the announcement size gains nothing from a
        // separate pull: announce/fetch must inline it (flood it whole) so
        // bytes are never double-counted and AF never floods *more* than
        // Full.
        let run_tiny = |mode: GossipMode| {
            let mut cfg = quick_config(WaitPolicy::All, 57);
            cfg.payload_bytes = ANNOUNCE_BYTES; // boundary: inline, no pull
            cfg.gossip = mode;
            run_with(cfg, 57)
        };
        let full = run_tiny(GossipMode::Full);
        let af = run_tiny(GossipMode::AnnounceFetch);
        assert_eq!(full.peer_records, af.peer_records);
        assert_eq!(af.fetch_bytes, 0, "inlined artifacts must not meter a pull");
        assert_eq!(af.gossip_bytes, full.gossip_bytes);
    }

    #[test]
    fn gossip_modes_agree_under_partition_and_churn() {
        // A partition cutting in-flight deliveries plus a mid-run leave: the
        // recovery machinery (on-demand fetch, ancestor sync) must fire the
        // same way in both modes — only the fetch accounting moves.
        let faults = vec![
            crate::faults::TimedFault::at_secs(
                0.15,
                crate::faults::Fault::Partition {
                    left: vec![0],
                    right: vec![1, 2],
                },
            ),
            crate::faults::TimedFault::at_secs(6.0, crate::faults::Fault::HealAll),
        ];
        let full = run_with_gossip(GossipMode::Full, faults.clone());
        let af = run_with_gossip(GossipMode::AnnounceFetch, faults);
        assert_eq!(full.peer_records, af.peer_records);
        assert_eq!(full.artifacts, af.artifacts);
        assert_eq!(full.finished_at, af.finished_at);
        assert_eq!(full.fetch_bytes, 0);
        assert!(af.gossip_bytes < full.gossip_bytes);
    }
}
