//! The adaptive per-round policy controller.
//!
//! The paper's central question — wait for every update or aggregate what's
//! there — is answered *statically* per run everywhere else in this
//! workspace. This module closes the loop: a [`PolicyController`] observes
//! each aggregated round (wait time, staleness, fork rate, straggler spread,
//! accuracy delta — the signals the orchestrator already meters) and emits
//! [`PolicyDecision`]s that re-tune the wait policy, aggregation strategy, or
//! staleness decay **at the next round boundary**.
//!
//! Controllers are described by plain data ([`ControllerSpec`]) so scenario
//! specs stay `Clone + PartialEq` and matrix cells can dedup on equality; the
//! trait object is built once per run. Any randomness a controller wants is
//! drawn from a dedicated `RngHub` stream the orchestrator passes in, so a
//! controlled run stays bit-identical at any `BLOCKFED_THREADS` and a
//! controller that never fires reproduces the static run exactly.

use blockfed_fl::{StalenessDecay, Strategy, WaitPolicy};
use blockfed_sim::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Everything a controller sees about one freshly aggregated round.
///
/// All fields are derived from state the orchestrator already tracks — no
/// extra simulation work happens to feed a controller.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundObservation {
    /// The 1-based round that just aggregated (first aggregation of it).
    pub round: u32,
    /// Virtual seconds the aggregating peer spent between finishing local
    /// training and aggregating — the price of waiting.
    pub wait_secs: f64,
    /// Mean staleness (virtual seconds between an update's publication and
    /// its aggregation) over the updates this aggregation consumed.
    pub staleness_mean_secs: f64,
    /// Run-level fork rate so far: non-canonical sealed blocks over all
    /// sealed blocks.
    pub fork_rate: f64,
    /// Spread (max − min, virtual seconds) of the training times observed so
    /// far — how heterogeneous the stragglers are.
    pub straggler_spread_secs: f64,
    /// The aggregating peer's post-aggregation test accuracy.
    pub accuracy: f64,
    /// Accuracy change versus the previous observed round (`0.0` on the
    /// first observation).
    pub accuracy_delta: f64,
    /// Peers currently active (not left/crashed).
    pub active_peers: usize,
    /// Committees the run is sharded into (`1` for flat aggregation). Under
    /// hierarchical aggregation the observed wait is a *tier-1* wait against
    /// the peer's own committee bar, so a controller comparing waits across
    /// cells needs the committee context.
    pub committees: usize,
    /// Model updates this aggregation actually consumed.
    pub updates_used: usize,
    /// The wait policy the observed round ran under.
    pub wait_policy: WaitPolicy,
    /// The staleness decay the observed round ran under.
    pub staleness_decay: Option<StalenessDecay>,
}

/// One knob change a controller requests, applied from the next round on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyDecision {
    /// Switch the wait policy (All ↔ FirstK).
    SetWaitPolicy(WaitPolicy),
    /// Switch the aggregation strategy (NotConsider / Consider / BestK).
    SetStrategy(Strategy),
    /// Replace (or clear) the staleness re-weighting.
    SetStalenessDecay(Option<StalenessDecay>),
}

impl fmt::Display for PolicyDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyDecision::SetWaitPolicy(p) => write!(f, "wait={p}"),
            PolicyDecision::SetStrategy(s) => write!(f, "strategy={s:?}"),
            PolicyDecision::SetStalenessDecay(Some(d)) => write!(f, "decay={d:?}"),
            PolicyDecision::SetStalenessDecay(None) => write!(f, "decay=off"),
        }
    }
}

/// One applied decision, stamped with when and for which round it fired —
/// the entries of the decision log on `DecentralizedRun`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvent {
    /// The round whose aggregation triggered the decision.
    pub round: u32,
    /// Virtual time the decision was made.
    pub at: SimTime,
    /// What changed.
    pub decision: PolicyDecision,
}

/// An online policy controller: observes each round, emits knob changes.
///
/// Implementations must be deterministic given the observation sequence and
/// the provided RNG — the orchestrator hands in a dedicated `RngHub` stream
/// so controller randomness never perturbs any other stream.
pub trait PolicyController {
    /// Observe `obs` and return the decisions to apply from the next round.
    /// Returning an empty vector leaves every knob untouched.
    fn decide(&mut self, obs: &RoundObservation, rng: &mut StdRng) -> Vec<PolicyDecision>;
}

/// Thresholds for the rule-based controller (all in virtual seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleConfig {
    /// Waits above this trip the All → FirstK demotion.
    pub wait_high_secs: f64,
    /// Waits below this (with accuracy falling) trip FirstK → All promotion.
    pub wait_low_secs: f64,
    /// Fraction of active peers a demoted FirstK keeps (clamped to ≥ 2).
    pub keep_fraction: f64,
    /// Mean staleness above this enables polynomial staleness decay if none
    /// is set.
    pub staleness_high_secs: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            wait_high_secs: 5.0,
            wait_low_secs: 1.0,
            keep_fraction: 0.5,
            staleness_high_secs: 10.0,
        }
    }
}

/// Configuration of the ε-greedy bandit controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BanditConfig {
    /// The wait-policy arms the bandit chooses between.
    pub arms: Vec<WaitPolicy>,
    /// Exploration probability per observation.
    pub epsilon: f64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            arms: vec![WaitPolicy::All, WaitPolicy::FirstK(2)],
            epsilon: 0.2,
        }
    }
}

/// The controller rule a spec selects.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerRule {
    /// Never emits a decision — the bit-identity baseline.
    Noop,
    /// Deterministic threshold rules over wait time / staleness / accuracy.
    Threshold(RuleConfig),
    /// ε-greedy bandit over wait-policy arms, rewarded by accuracy gain per
    /// unit round time.
    Bandit(BanditConfig),
}

/// Plain-data description of a controller: which rule, and from which round
/// it may start firing. Lives on configs and scenario specs (which must stay
/// `Clone + PartialEq`); [`ControllerSpec::build`] instantiates the trait
/// object at run start.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSpec {
    /// Decisions from rounds before this (1-based) are suppressed.
    pub from_round: u32,
    /// The rule to run.
    pub rule: ControllerRule,
}

impl ControllerSpec {
    /// A controller that never fires (proves the observation plumbing is
    /// invisible).
    pub fn noop() -> Self {
        ControllerSpec {
            from_round: 1,
            rule: ControllerRule::Noop,
        }
    }

    /// The rule-based controller with the given thresholds.
    pub fn threshold(cfg: RuleConfig) -> Self {
        ControllerSpec {
            from_round: 1,
            rule: ControllerRule::Threshold(cfg),
        }
    }

    /// The ε-greedy bandit controller.
    pub fn bandit(cfg: BanditConfig) -> Self {
        ControllerSpec {
            from_round: 1,
            rule: ControllerRule::Bandit(cfg),
        }
    }

    /// Suppresses decisions before round `round` (1-based).
    #[must_use]
    pub fn from_round(mut self, round: u32) -> Self {
        self.from_round = round;
        self
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.from_round == 0 {
            return Err("controller from_round is 1-based and must be positive".into());
        }
        match &self.rule {
            ControllerRule::Noop => Ok(()),
            ControllerRule::Threshold(cfg) => {
                if !(cfg.keep_fraction > 0.0 && cfg.keep_fraction <= 1.0) {
                    return Err(format!(
                        "controller keep_fraction must be in (0, 1], got {}",
                        cfg.keep_fraction
                    ));
                }
                if cfg.wait_high_secs < cfg.wait_low_secs {
                    return Err("controller wait_high_secs must be >= wait_low_secs".into());
                }
                Ok(())
            }
            ControllerRule::Bandit(cfg) => {
                if cfg.arms.is_empty() {
                    return Err("a bandit controller needs at least one arm".into());
                }
                if !(0.0..=1.0).contains(&cfg.epsilon) {
                    return Err(format!(
                        "bandit epsilon must be in [0, 1], got {}",
                        cfg.epsilon
                    ));
                }
                Ok(())
            }
        }
    }

    /// Instantiates the controller this spec describes.
    pub fn build(&self) -> Box<dyn PolicyController> {
        match &self.rule {
            ControllerRule::Noop => Box::new(NoopController),
            ControllerRule::Threshold(cfg) => Box::new(ThresholdController {
                cfg: cfg.clone(),
                from_round: self.from_round,
            }),
            ControllerRule::Bandit(cfg) => Box::new(BanditController {
                cfg: cfg.clone(),
                from_round: self.from_round,
                current: 0,
                pulls: vec![0u32; cfg.arms.len()],
                value: vec![0.0f64; cfg.arms.len()],
            }),
        }
    }
}

impl fmt::Display for ControllerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rule {
            ControllerRule::Noop => write!(f, "noop")?,
            ControllerRule::Threshold(_) => write!(f, "rule")?,
            ControllerRule::Bandit(cfg) => write!(f, "bandit{}", cfg.arms.len())?,
        }
        if self.from_round > 1 {
            write!(f, "@r{}", self.from_round)?;
        }
        Ok(())
    }
}

/// The controller behind [`ControllerRule::Noop`].
struct NoopController;

impl PolicyController for NoopController {
    fn decide(&mut self, _obs: &RoundObservation, _rng: &mut StdRng) -> Vec<PolicyDecision> {
        Vec::new()
    }
}

/// The controller behind [`ControllerRule::Threshold`]: pure rules, no RNG
/// draws, stateless across rounds (the observation carries the current
/// policy).
struct ThresholdController {
    cfg: RuleConfig,
    from_round: u32,
}

impl PolicyController for ThresholdController {
    fn decide(&mut self, obs: &RoundObservation, _rng: &mut StdRng) -> Vec<PolicyDecision> {
        if obs.round < self.from_round {
            return Vec::new();
        }
        let mut out = Vec::new();
        match obs.wait_policy {
            WaitPolicy::All if obs.wait_secs > self.cfg.wait_high_secs => {
                let k = ((obs.active_peers as f64 * self.cfg.keep_fraction).ceil() as usize).max(2);
                if k < obs.active_peers {
                    out.push(PolicyDecision::SetWaitPolicy(WaitPolicy::FirstK(k)));
                }
            }
            WaitPolicy::FirstK(_)
                if obs.wait_secs < self.cfg.wait_low_secs && obs.accuracy_delta < 0.0 =>
            {
                out.push(PolicyDecision::SetWaitPolicy(WaitPolicy::All));
            }
            _ => {}
        }
        if obs.staleness_mean_secs > self.cfg.staleness_high_secs && obs.staleness_decay.is_none() {
            out.push(PolicyDecision::SetStalenessDecay(Some(
                StalenessDecay::Polynomial { a: 0.5 },
            )));
        }
        out
    }
}

/// The controller behind [`ControllerRule::Bandit`]: ε-greedy over wait
/// policies, rewarding each pulled arm with the observed accuracy delta.
struct BanditController {
    cfg: BanditConfig,
    from_round: u32,
    current: usize,
    pulls: Vec<u32>,
    value: Vec<f64>,
}

impl PolicyController for BanditController {
    fn decide(&mut self, obs: &RoundObservation, rng: &mut StdRng) -> Vec<PolicyDecision> {
        if obs.round < self.from_round {
            return Vec::new();
        }
        // Credit the arm whose policy the observed round actually ran under
        // (the spec's static policy until our first switch lands).
        let ran = self
            .cfg
            .arms
            .iter()
            .position(|a| *a == obs.wait_policy)
            .unwrap_or(self.current);
        self.pulls[ran] += 1;
        let n = f64::from(self.pulls[ran]);
        self.value[ran] += (obs.accuracy_delta - self.value[ran]) / n;
        // ε-greedy selection for the next round.
        let next = if rng.gen::<f64>() < self.cfg.epsilon {
            rng.gen_range(0..self.cfg.arms.len())
        } else {
            // Prefer unexplored arms, then the best mean reward; ties go to
            // the lowest index so selection is deterministic.
            (0..self.cfg.arms.len())
                .max_by(|&a, &b| {
                    let score = |i: usize| {
                        if self.pulls[i] == 0 {
                            f64::INFINITY
                        } else {
                            self.value[i]
                        }
                    };
                    score(a)
                        .partial_cmp(&score(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.cmp(&a))
                })
                .unwrap_or(0)
        };
        self.current = next;
        if self.cfg.arms[next] != obs.wait_policy {
            vec![PolicyDecision::SetWaitPolicy(self.cfg.arms[next])]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn obs(round: u32, wait: f64, policy: WaitPolicy) -> RoundObservation {
        RoundObservation {
            round,
            wait_secs: wait,
            staleness_mean_secs: 0.0,
            fork_rate: 0.0,
            straggler_spread_secs: 0.0,
            accuracy: 0.5,
            accuracy_delta: 0.0,
            active_peers: 8,
            committees: 1,
            updates_used: 8,
            wait_policy: policy,
            staleness_decay: None,
        }
    }

    #[test]
    fn noop_never_fires() {
        let mut c = ControllerSpec::noop().build();
        let mut rng = StdRng::seed_from_u64(1);
        for r in 1..=5 {
            assert!(c
                .decide(&obs(r, 100.0, WaitPolicy::All), &mut rng)
                .is_empty());
        }
    }

    #[test]
    fn threshold_demotes_slow_wait_all_and_promotes_back() {
        let spec = ControllerSpec::threshold(RuleConfig::default());
        spec.validate().unwrap();
        let mut c = spec.build();
        let mut rng = StdRng::seed_from_u64(1);
        let d = c.decide(&obs(1, 8.0, WaitPolicy::All), &mut rng);
        assert_eq!(
            d,
            vec![PolicyDecision::SetWaitPolicy(WaitPolicy::FirstK(4))]
        );
        // Fast round with falling accuracy under FirstK promotes back.
        let mut o = obs(2, 0.5, WaitPolicy::FirstK(4));
        o.accuracy_delta = -0.01;
        let d = c.decide(&o, &mut rng);
        assert_eq!(d, vec![PolicyDecision::SetWaitPolicy(WaitPolicy::All)]);
        // A fast round with rising accuracy leaves the knobs alone.
        let mut o = obs(3, 0.5, WaitPolicy::FirstK(4));
        o.accuracy_delta = 0.01;
        assert!(c.decide(&o, &mut rng).is_empty());
    }

    #[test]
    fn threshold_enables_decay_on_high_staleness() {
        let mut c = ControllerSpec::threshold(RuleConfig::default()).build();
        let mut rng = StdRng::seed_from_u64(1);
        let mut o = obs(1, 0.5, WaitPolicy::All);
        o.staleness_mean_secs = 30.0;
        assert_eq!(
            c.decide(&o, &mut rng),
            vec![PolicyDecision::SetStalenessDecay(Some(
                StalenessDecay::Polynomial { a: 0.5 }
            ))]
        );
        // Already decayed rounds are left alone.
        o.staleness_decay = Some(StalenessDecay::Polynomial { a: 0.5 });
        assert!(c.decide(&o, &mut rng).is_empty());
    }

    #[test]
    fn from_round_suppresses_early_decisions() {
        let mut c = ControllerSpec::threshold(RuleConfig::default())
            .from_round(3)
            .build();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(c
            .decide(&obs(2, 50.0, WaitPolicy::All), &mut rng)
            .is_empty());
        assert!(!c
            .decide(&obs(3, 50.0, WaitPolicy::All), &mut rng)
            .is_empty());
    }

    #[test]
    fn bandit_is_deterministic_given_the_stream() {
        let spec = ControllerSpec::bandit(BanditConfig::default());
        spec.validate().unwrap();
        let run = |seed: u64| {
            let mut c = spec.build();
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=6)
                .map(|r| c.decide(&obs(r, 1.0, WaitPolicy::All), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same stream, same decisions");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let bad = ControllerSpec::bandit(BanditConfig {
            arms: Vec::new(),
            epsilon: 0.1,
        });
        assert!(bad.validate().is_err());
        let bad = ControllerSpec::bandit(BanditConfig {
            arms: vec![WaitPolicy::All],
            epsilon: 1.5,
        });
        assert!(bad.validate().is_err());
        let bad = ControllerSpec::threshold(RuleConfig {
            keep_fraction: 0.0,
            ..RuleConfig::default()
        });
        assert!(bad.validate().is_err());
        assert!(ControllerSpec::noop().from_round(0).validate().is_err());
    }

    #[test]
    fn display_names_are_compact() {
        assert_eq!(ControllerSpec::noop().to_string(), "noop");
        assert_eq!(
            ControllerSpec::threshold(RuleConfig::default())
                .from_round(2)
                .to_string(),
            "rule@r2"
        );
        assert_eq!(
            ControllerSpec::bandit(BanditConfig::default()).to_string(),
            "bandit2"
        );
    }
}
