//! `blockfed-core`: the paper's primary contribution — a **fully coupled
//! blockchain-based federated learning** system in which every participant is
//! simultaneously a trainer, an aggregator, and a blockchain peer.
//!
//! The crate wires the substrates together:
//!
//! * [`coupling`] — model updates become signed registry transactions on the
//!   `blockfed-chain` proof-of-work chain (via the `blockfed-vm` FL registry);
//! * [`orchestrator`] — the deterministic discrete-event driver of the
//!   decentralized experiment: training, gossip, mining races, per-peer
//!   customized ("consider") aggregation and asynchronous wait policies;
//! * [`nonrepudiation`] — evidence bundles (signature + merkle inclusion +
//!   proof-of-work block) that make model authorship undeniable;
//! * [`anomaly`] — abnormal-model detectors (norm outliers, fitness gates);
//! * [`compute`] — the mining⇄training contention model behind the paper's
//!   "resource exhaustion due to dual tasks" observation.
//!
//! The Vanilla (centralized) baseline lives in `blockfed-fl`; the experiment
//! harness regenerating every table and figure lives in `blockfed-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod committee;
pub mod compute;
pub mod coupling;
pub mod error;
pub mod faults;
pub mod nonrepudiation;
pub mod orchestrator;
pub mod policy;

pub use anomaly::{
    detect_degenerate, detect_norm_outliers, detect_unfit, AnomalyReason, AnomalyReport,
};
pub use blockfed_chain::{Blockchain, ChainStore, RetargetRule, StoreCounters, StoreLimits};
pub use committee::{CommitteeAssignment, CommitteeSpec};
pub use compute::ComputeProfile;
pub use coupling::{
    confirmed_aggregate_records, confirmed_aggregates, confirmed_submissions, model_fingerprint,
    record_aggregate_tx, register_tx, submit_model_tx, AggregateRecord, ConfirmedAggregate,
    ConfirmedSubmission,
};
pub use error::ConfigError;
pub use faults::{validate_timeline, Fault, TimedFault};
pub use nonrepudiation::{collect_evidence, verify_evidence, AuditError, Evidence};
pub use orchestrator::{
    registry_address, AuditRecord, ChainStats, Decentralized, DecentralizedConfig,
    DecentralizedRun, PeerRoundRecord, MAX_PEERS,
};
pub use policy::{
    BanditConfig, ControllerRule, ControllerSpec, PolicyController, PolicyDecision, PolicyEvent,
    RoundObservation, RuleConfig,
};
