//! The mining⇄training contention model.
//!
//! The paper's conclusion reports "resource exhaustion due to dual tasks on one
//! peer (mining and training model), a scenario that similar research with
//! simulation experiments do not encounter". We model it explicitly: a peer has
//! one compute budget; while it trains, its hash rate drops by a contention
//! factor, and while it mines, training slows by the complementary factor.
//! Setting the factor to zero disables the effect, which makes it an ablation
//! rather than a confound.

use blockfed_sim::SimDuration;

/// The compute capacity and contention behaviour of one peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeProfile {
    /// Hash rate in hashes per second when not training.
    pub hashrate: f64,
    /// Local training throughput in examples per second (one epoch = one pass).
    pub train_rate: f64,
    /// Fraction of compute that the *other* task steals when both run
    /// (`0.0` = perfect isolation, `0.9` = severe exhaustion).
    pub contention: f64,
    /// Whether this peer's local training splits each mini-batch across the
    /// host's `blockfed-compute` workers
    /// (`blockfed_nn::Sequential::par_train_epochs`). The parallel loop is
    /// bit-identical to the sequential one at any thread count, so the knob
    /// trades host wall-clock only — never simulation outcomes. Off by
    /// default; paper-scale scenario cells switch it on.
    pub batch_parallel: bool,
}

impl ComputeProfile {
    /// A profile shaped like the paper's testbed: one i7-8700 core pair per VM,
    /// with visible contention between Geth mining and PyTorch training.
    pub fn paper_vm() -> Self {
        ComputeProfile {
            hashrate: 80_000.0,
            train_rate: 900.0,
            contention: 0.35,
            batch_parallel: false,
        }
    }

    /// A contention-free profile (the ablation baseline).
    pub fn isolated(hashrate: f64, train_rate: f64) -> Self {
        ComputeProfile {
            hashrate,
            train_rate,
            contention: 0.0,
            batch_parallel: false,
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.hashrate.is_nan() || self.hashrate <= 0.0 || !self.hashrate.is_finite() {
            return Err("hashrate must be positive".into());
        }
        if self.train_rate.is_nan() || self.train_rate <= 0.0 || !self.train_rate.is_finite() {
            return Err("train_rate must be positive".into());
        }
        if !(0.0..1.0).contains(&self.contention) {
            return Err("contention must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Effective hash rate, reduced while the peer trains.
    pub fn effective_hashrate(&self, training: bool) -> f64 {
        if training {
            self.hashrate * (1.0 - self.contention)
        } else {
            self.hashrate
        }
    }

    /// Wall-clock duration of local training: `examples × epochs` at the
    /// training rate, inflated by contention when the peer also mines.
    pub fn training_time(&self, examples: usize, epochs: usize, mining: bool) -> SimDuration {
        let work = (examples * epochs) as f64;
        let rate = if mining {
            self.train_rate * (1.0 - self.contention)
        } else {
            self.train_rate
        };
        SimDuration::from_secs_f64(work / rate)
    }
}

impl Default for ComputeProfile {
    fn default() -> Self {
        ComputeProfile::paper_vm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_reduces_hashrate_only_while_training() {
        let p = ComputeProfile {
            hashrate: 1000.0,
            train_rate: 100.0,
            contention: 0.4,
            batch_parallel: false,
        };
        assert_eq!(p.effective_hashrate(false), 1000.0);
        assert_eq!(p.effective_hashrate(true), 600.0);
    }

    #[test]
    fn training_time_scales_with_work() {
        let p = ComputeProfile::isolated(1.0, 100.0);
        let t1 = p.training_time(100, 1, false);
        let t5 = p.training_time(100, 5, false);
        assert_eq!(t1.as_secs_f64(), 1.0);
        assert_eq!(t5.as_secs_f64(), 5.0);
    }

    #[test]
    fn mining_inflates_training_time() {
        let p = ComputeProfile {
            hashrate: 1000.0,
            train_rate: 100.0,
            contention: 0.5,
            batch_parallel: false,
        };
        let quiet = p.training_time(100, 1, false);
        let contended = p.training_time(100, 1, true);
        assert_eq!(contended.as_secs_f64(), 2.0 * quiet.as_secs_f64());
    }

    #[test]
    fn isolated_profile_has_no_interference() {
        let p = ComputeProfile::isolated(500.0, 50.0);
        assert_eq!(p.effective_hashrate(true), 500.0);
        assert_eq!(p.training_time(10, 1, true), p.training_time(10, 1, false));
    }

    #[test]
    fn validation() {
        assert!(ComputeProfile::paper_vm().validate().is_ok());
        let bad = ComputeProfile {
            hashrate: 0.0,
            ..ComputeProfile::paper_vm()
        };
        assert!(bad.validate().is_err());
        let bad = ComputeProfile {
            contention: 1.0,
            ..ComputeProfile::paper_vm()
        };
        assert!(bad.validate().is_err());
        let bad = ComputeProfile {
            train_rate: f64::NAN,
            ..ComputeProfile::paper_vm()
        };
        assert!(bad.validate().is_err());
    }
}
