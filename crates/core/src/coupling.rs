//! The blockchain⇄FL coupling: turning model updates into signed registry
//! transactions and reading confirmed updates back off a peer's chain.

use blockfed_chain::{Blockchain, CallContext, Transaction};
use blockfed_crypto::sha256::sha256;
use blockfed_crypto::{KeyPair, H160, H256};
use blockfed_fl::ModelUpdate;
use blockfed_nn::serialize::encode_params;
use blockfed_vm::{parse_aggregate, ComboMask, RegistryCall};

/// Fingerprint of a model update: the hash of its serialized parameters.
pub fn model_fingerprint(update: &ModelUpdate) -> H256 {
    sha256(&encode_params(&update.params))
}

/// Builds the signed `submit_model` transaction for an update.
///
/// The transaction's declared `payload_bytes` is the update's full artifact
/// size (21.2 MB for the complex model), so gas and bandwidth behave as in the
/// paper's "transaction size exceeds the model's size" configuration.
pub fn submit_model_tx(
    update: &ModelUpdate,
    registry: H160,
    key: &KeyPair,
    nonce: u64,
) -> Transaction {
    let call = RegistryCall::SubmitModel {
        round: update.round,
        model_hash: model_fingerprint(update),
        payload_bytes: update.payload_bytes,
        sample_count: update.sample_count as u64,
    };
    Transaction::call(key.address(), registry, call.encode(), nonce)
        .with_payload_bytes(update.payload_bytes)
        .with_gas_limit(100_000_000)
        .signed(key)
}

/// Builds the signed `register` transaction.
pub fn register_tx(registry: H160, key: &KeyPair, nonce: u64) -> Transaction {
    Transaction::call(
        key.address(),
        registry,
        RegistryCall::Register.encode(),
        nonce,
    )
    .signed(key)
}

/// Builds the signed `record_aggregate` transaction. The mask is the
/// variable-width member bitset, so populations past 32 peers record their
/// full combination on chain.
pub fn record_aggregate_tx(
    round: u32,
    combo_mask: ComboMask,
    agg_hash: H256,
    registry: H160,
    key: &KeyPair,
    nonce: u64,
) -> Transaction {
    let call = RegistryCall::RecordAggregate {
        round,
        combo_mask,
        agg_hash,
    };
    Transaction::call(key.address(), registry, call.encode(), nonce).signed(key)
}

/// A model submission confirmed on a peer's canonical chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmedSubmission {
    /// The submitting account.
    pub sender: H160,
    /// Communication round.
    pub round: u32,
    /// Model fingerprint anchored on chain.
    pub model_hash: H256,
    /// Declared artifact size.
    pub payload_bytes: u64,
    /// FedAvg weight.
    pub sample_count: u64,
    /// Hash of the carrying transaction (evidence pointer).
    pub tx_hash: H256,
    /// Hash of the including block.
    pub block_hash: H256,
}

/// Scans a peer's canonical chain for successfully executed `submit_model`
/// calls to `registry` in the given round.
pub fn confirmed_submissions(
    chain: &Blockchain,
    registry: H160,
    round: u32,
) -> Vec<ConfirmedSubmission> {
    let mut out = Vec::new();
    for block_hash in chain.canonical_chain() {
        let block = chain.block(&block_hash).expect("canonical block exists");
        let receipts = chain.receipts(&block_hash);
        for (i, tx) in block.transactions.iter().enumerate() {
            if tx.to != Some(registry) {
                continue;
            }
            let ok = receipts
                .and_then(|rs| rs.get(i))
                .map(blockfed_chain::Receipt::is_success)
                .unwrap_or(false);
            if !ok {
                continue;
            }
            if let Some(RegistryCall::SubmitModel {
                round: r,
                model_hash,
                payload_bytes,
                sample_count,
            }) = RegistryCall::decode(&tx.data)
            {
                if r == round {
                    out.push(ConfirmedSubmission {
                        sender: tx.from,
                        round: r,
                        model_hash,
                        payload_bytes,
                        sample_count,
                        tx_hash: tx.hash(),
                        block_hash,
                    });
                }
            }
        }
    }
    out
}

/// A `record_aggregate` call confirmed on a peer's canonical chain, decoded
/// from calldata only — the light form the tier-2 committee merge polls on
/// every block arrival (see [`confirmed_aggregate_records`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateRecord {
    /// The peer that recorded the aggregate.
    pub sender: H160,
    /// Communication round.
    pub round: u32,
    /// The member bitset the record committed to.
    pub combo_mask: ComboMask,
    /// Fingerprint of the aggregated model.
    pub agg_hash: H256,
}

/// Scans a peer's canonical chain for successfully executed
/// `record_aggregate` calls to `registry` in the given round, decoding
/// calldata without any storage readback.
///
/// This is the hot-path sibling of [`confirmed_aggregates`]: the tier-2
/// merge re-checks readiness on every block delivery, so it wants receipts +
/// calldata (cheap, and sees *every* confirmed record, including re-recorded
/// rounds) rather than the executed `get_aggregate` audit path.
pub fn confirmed_aggregate_records(
    chain: &Blockchain,
    registry: H160,
    round: u32,
) -> Vec<AggregateRecord> {
    let mut out = Vec::new();
    for block_hash in chain.canonical_chain() {
        let block = chain.block(&block_hash).expect("canonical block exists");
        let receipts = chain.receipts(&block_hash);
        for (i, tx) in block.transactions.iter().enumerate() {
            if tx.to != Some(registry) {
                continue;
            }
            let ok = receipts
                .and_then(|rs| rs.get(i))
                .map(blockfed_chain::Receipt::is_success)
                .unwrap_or(false);
            if !ok {
                continue;
            }
            if let Some(RegistryCall::RecordAggregate {
                round: r,
                combo_mask,
                agg_hash,
            }) = RegistryCall::decode(&tx.data)
            {
                if r == round {
                    out.push(AggregateRecord {
                        sender: tx.from,
                        round: r,
                        combo_mask,
                        agg_hash,
                    });
                }
            }
        }
    }
    out
}

/// An aggregate decision confirmed on a peer's canonical chain, read back
/// through the registry's `get_aggregate` ABI — i.e. out of the contract's
/// packed mask storage, not merely re-decoded from transaction calldata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfirmedAggregate {
    /// The peer that recorded the aggregate.
    pub aggregator: H160,
    /// Communication round.
    pub round: u32,
    /// The member bitset the aggregator committed to.
    pub combo_mask: ComboMask,
    /// Fingerprint of the aggregated model.
    pub agg_hash: H256,
    /// Hash of the carrying transaction.
    pub tx_hash: H256,
    /// Hash of the including block.
    pub block_hash: H256,
}

/// Scans a peer's canonical chain for successfully executed
/// `record_aggregate` calls to `registry` and reads each one back through
/// the executed `get_aggregate` path against the chain's final state — so a
/// returned entry proves the storage-packed mask decodes to the member set
/// that was submitted. The registry lets an aggregator re-record a round
/// (latest write wins in storage); a superseded transaction's readback no
/// longer matches its calldata and is skipped, so every returned entry's
/// mask is both what its transaction said and what storage still holds.
pub fn confirmed_aggregates(chain: &Blockchain, registry: H160) -> Vec<ConfirmedAggregate> {
    let mut out = Vec::new();
    let mut state = chain.state().clone();
    let head_number = chain.head_block().number();
    for block_hash in chain.canonical_chain() {
        let block = chain.block(&block_hash).expect("canonical block exists");
        let receipts = chain.receipts(&block_hash);
        for (i, tx) in block.transactions.iter().enumerate() {
            if tx.to != Some(registry) {
                continue;
            }
            let ok = receipts
                .and_then(|rs| rs.get(i))
                .map(blockfed_chain::Receipt::is_success)
                .unwrap_or(false);
            if !ok {
                continue;
            }
            let Some(RegistryCall::RecordAggregate {
                round,
                combo_mask: submitted_mask,
                agg_hash: submitted_hash,
            }) = RegistryCall::decode(&tx.data)
            else {
                continue;
            };
            let read = RegistryCall::GetAggregate {
                round,
                aggregator: tx.from,
            };
            let ctx = CallContext {
                caller: tx.from,
                contract: registry,
                calldata: read.encode(),
                gas_budget: 1_000_000,
                block_number: head_number,
                timestamp_ns: 0,
            };
            let got = blockfed_vm::registry::execute_registry(&ctx, &mut state);
            if !got.success {
                continue;
            }
            let Some((agg_hash, combo_mask)) = parse_aggregate(&got.output) else {
                continue;
            };
            if agg_hash != submitted_hash || combo_mask != submitted_mask {
                continue; // superseded by a later re-record for this round
            }
            out.push(ConfirmedAggregate {
                aggregator: tx.from,
                round,
                combo_mask,
                agg_hash,
                tx_hash: tx.hash(),
                block_hash,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_chain::{GenesisSpec, SealPolicy};
    use blockfed_fl::ClientId;
    use blockfed_vm::BlockfedRuntime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    fn registry_addr() -> H160 {
        let mut b = [0u8; 20];
        b[0] = 0xEE;
        H160::from_bytes(b)
    }

    fn update(client: usize, round: u32) -> ModelUpdate {
        ModelUpdate::new(ClientId(client), round, vec![0.5, -0.5, 1.0], 100)
            .with_payload_bytes(253_952)
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = update(0, 1);
        let mut b = update(0, 1);
        assert_eq!(model_fingerprint(&a), model_fingerprint(&b));
        b.params[0] += 0.1;
        assert_ne!(model_fingerprint(&a), model_fingerprint(&b));
    }

    #[test]
    fn txs_are_signed_and_payload_stamped() {
        let k = key(1);
        let tx = submit_model_tx(&update(0, 3), registry_addr(), &k, 1);
        assert!(tx.verify_signature().is_ok());
        assert_eq!(tx.payload_bytes, 253_952);
        assert_eq!(tx.nonce, 1);
        let reg = register_tx(registry_addr(), &k, 0);
        assert!(reg.verify_signature().is_ok());
        let agg = record_aggregate_tx(
            3,
            ComboMask::from_u32(0b111),
            sha256(b"agg"),
            registry_addr(),
            &k,
            2,
        );
        assert!(agg.verify_signature().is_ok());
    }

    #[test]
    fn wide_aggregates_confirm_through_storage_readback() {
        // A mask spanning bit 40 — impossible under the old u32 ABI — must
        // survive tx → block → contract storage → get_aggregate readback.
        let k = key(5);
        let registry = registry_addr();
        let spec = GenesisSpec::with_accounts(&[k.address()], u64::MAX / 4)
            .with_code(registry, blockfed_vm::NATIVE_REGISTRY_CODE.to_vec());
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let mut runtime = BlockfedRuntime::new();
        runtime.register_native(registry, blockfed_vm::NativeContract::FlRegistry);

        let mask = ComboMask::from_members([0, 2, 33, 40]);
        let txs = vec![
            register_tx(registry, &k, 0),
            record_aggregate_tx(1, mask.clone(), sha256(b"agg"), registry, &k, 1),
        ];
        let block = chain.build_candidate(k.address(), txs, 1_000, &mut runtime);
        chain.import(block, &mut runtime).unwrap();

        let confirmed = confirmed_aggregates(&chain, registry);
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].aggregator, k.address());
        assert_eq!(confirmed[0].round, 1);
        assert_eq!(confirmed[0].combo_mask, mask);
        assert_eq!(confirmed[0].agg_hash, sha256(b"agg"));

        // Re-record the same round with a different mask: storage now holds
        // the new mask, so the superseded transaction must be skipped rather
        // than misattributed the latest member set.
        let second = ComboMask::from_members([1, 2]);
        let tx = record_aggregate_tx(1, second.clone(), sha256(b"agg2"), registry, &k, 2);
        let block = chain.build_candidate(k.address(), vec![tx], 2_000, &mut runtime);
        chain.import(block, &mut runtime).unwrap();
        let confirmed = confirmed_aggregates(&chain, registry);
        assert_eq!(confirmed.len(), 1, "{confirmed:?}");
        assert_eq!(confirmed[0].combo_mask, second);
        assert_eq!(confirmed[0].agg_hash, sha256(b"agg2"));
    }

    #[test]
    fn light_record_scan_sees_every_confirmed_record() {
        let k = key(7);
        let registry = registry_addr();
        let spec = GenesisSpec::with_accounts(&[k.address()], u64::MAX / 4)
            .with_code(registry, blockfed_vm::NATIVE_REGISTRY_CODE.to_vec());
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let mut runtime = BlockfedRuntime::new();
        runtime.register_native(registry, blockfed_vm::NativeContract::FlRegistry);

        let mask = ComboMask::from_members([0, 300]);
        let txs = vec![
            register_tx(registry, &k, 0),
            record_aggregate_tx(2, mask.clone(), sha256(b"c0"), registry, &k, 1),
            record_aggregate_tx(3, mask.clone(), sha256(b"other-round"), registry, &k, 2),
        ];
        let block = chain.build_candidate(k.address(), txs, 1_000, &mut runtime);
        chain.import(block, &mut runtime).unwrap();

        let recs = confirmed_aggregate_records(&chain, registry, 2);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].sender, k.address());
        assert_eq!(recs[0].round, 2);
        assert_eq!(recs[0].combo_mask, mask);
        assert_eq!(recs[0].agg_hash, sha256(b"c0"));
        // Unlike the readback audit, a re-record keeps *both* entries: the
        // merge wants every confirmed record for the round, superseded or
        // not, so a tier-1 record overwritten in storage stays visible.
        let tx = record_aggregate_tx(2, mask.clone(), sha256(b"c0-again"), registry, &k, 3);
        let block = chain.build_candidate(k.address(), vec![tx], 2_000, &mut runtime);
        chain.import(block, &mut runtime).unwrap();
        assert_eq!(confirmed_aggregate_records(&chain, registry, 2).len(), 2);
    }

    #[test]
    fn end_to_end_submission_confirmation() {
        let peers: Vec<KeyPair> = (1..=3).map(key).collect();
        let addrs: Vec<H160> = peers.iter().map(KeyPair::address).collect();
        let registry = registry_addr();
        let spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
            .with_code(registry, blockfed_vm::NATIVE_REGISTRY_CODE.to_vec());
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let mut runtime = BlockfedRuntime::new();
        runtime.register_native(registry, blockfed_vm::NativeContract::FlRegistry);

        // Block 1: everyone registers. Block 2: two submissions for round 1.
        let mut txs = Vec::new();
        for k in &peers {
            txs.push(register_tx(registry, k, 0));
        }
        let block1 = chain.build_candidate(addrs[0], txs, 1_000, &mut runtime);
        chain.import(block1, &mut runtime).unwrap();

        let u0 = update(0, 1);
        let u1 = update(1, 1);
        let txs = vec![
            submit_model_tx(&u0, registry, &peers[0], 1),
            submit_model_tx(&u1, registry, &peers[1], 1),
        ];
        let block2 = chain.build_candidate(addrs[1], txs, 2_000, &mut runtime);
        chain.import(block2, &mut runtime).unwrap();

        let confirmed = confirmed_submissions(&chain, registry, 1);
        assert_eq!(confirmed.len(), 2);
        assert_eq!(confirmed[0].sender, addrs[0]);
        assert_eq!(confirmed[0].model_hash, model_fingerprint(&u0));
        assert_eq!(confirmed[0].sample_count, 100);
        assert_eq!(confirmed[1].sender, addrs[1]);
        // No submissions confirmed for other rounds.
        assert!(confirmed_submissions(&chain, registry, 2).is_empty());
    }

    #[test]
    fn failed_submissions_are_not_confirmed() {
        let k = key(9);
        let registry = registry_addr();
        let spec = GenesisSpec::with_accounts(&[k.address()], u64::MAX / 4)
            .with_code(registry, blockfed_vm::NATIVE_REGISTRY_CODE.to_vec());
        let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
        let mut runtime = BlockfedRuntime::new();
        runtime.register_native(registry, blockfed_vm::NativeContract::FlRegistry);

        // Submission without registration reverts; it must not count.
        let tx = submit_model_tx(&update(0, 1), registry, &k, 0);
        let block = chain.build_candidate(k.address(), vec![tx], 1_000, &mut runtime);
        chain.import(block, &mut runtime).unwrap();
        assert!(confirmed_submissions(&chain, registry, 1).is_empty());
    }
}
