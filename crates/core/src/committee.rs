//! Hierarchical committee assignment for two-tier aggregation.
//!
//! Flat aggregation makes every peer wait on — and fetch the payload of —
//! every other peer, so dissemination grows superlinearly and the run hits
//! the mask-width ceiling. A [`CommitteeSpec`] shards the population into
//! committees that aggregate locally (tier 1, the existing wait policies
//! applied per committee) and publish one committee-level aggregate each,
//! which peers then merge deterministically across committees (tier 2).
//!
//! Assignment is pure data: given the peer count it derives the same
//! peer→committee map on every peer, with no communication. `Seeded`
//! assignment shuffles peer indices with its own seed before chunking, so
//! committee composition decouples from peer numbering without touching any
//! of the orchestrator's RNG streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How peers are mapped to committees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommitteeAssignment {
    /// Peer `i` joins committee `i * count / n`: contiguous index ranges of
    /// near-equal size. Deterministic and seed-free.
    #[default]
    Contiguous,
    /// Peer indices are shuffled by the spec's seed (Fisher–Yates over a
    /// dedicated `StdRng`) and the shuffled order is chunked contiguously —
    /// committee sizes match `Contiguous`, membership does not.
    Seeded,
}

impl std::fmt::Display for CommitteeAssignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitteeAssignment::Contiguous => write!(f, "contiguous"),
            CommitteeAssignment::Seeded => write!(f, "seeded"),
        }
    }
}

/// Committee layout for hierarchical aggregation: how many committees, how
/// peers map onto them, and the seed the `Seeded` assignment shuffles with.
///
/// A spec with `count <= 1` is the flat topology — the orchestrator
/// normalizes it to "no committees" so a single-committee run reproduces the
/// flat run byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommitteeSpec {
    /// Number of committees the population is sharded into.
    pub count: usize,
    /// How peers are mapped to committees.
    pub assignment: CommitteeAssignment,
    /// Shuffle seed for [`CommitteeAssignment::Seeded`] (ignored by
    /// `Contiguous`). Not drawn from any orchestrator stream.
    pub seed: u64,
}

impl CommitteeSpec {
    /// A contiguous assignment into `count` committees.
    pub fn contiguous(count: usize) -> Self {
        CommitteeSpec {
            count,
            assignment: CommitteeAssignment::Contiguous,
            seed: 0,
        }
    }

    /// A seed-shuffled assignment into `count` committees.
    pub fn seeded(count: usize, seed: u64) -> Self {
        CommitteeSpec {
            count,
            assignment: CommitteeAssignment::Seeded,
            seed,
        }
    }

    /// Derives the peer→committee map for a population of `n` peers.
    ///
    /// Every committee is non-empty when `count <= n`; sizes differ by at
    /// most one. The map depends only on the spec and `n`, so all peers (and
    /// all threads) derive the same one.
    pub fn assign(&self, n: usize) -> Vec<usize> {
        let count = self.count.max(1);
        let mut order: Vec<usize> = (0..n).collect();
        if self.assignment == CommitteeAssignment::Seeded {
            let mut rng = StdRng::seed_from_u64(self.seed);
            // Fisher–Yates; the dedicated RNG keeps the shuffle off every
            // simulation stream.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
        }
        let mut of = vec![0usize; n];
        for (pos, &peer) in order.iter().enumerate() {
            of[peer] = pos * count / n.max(1);
        }
        of
    }
}

impl std::fmt::Display for CommitteeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.assignment {
            CommitteeAssignment::Contiguous => write!(f, "c{}", self.count),
            CommitteeAssignment::Seeded => write!(f, "c{}s{}", self.count, self.seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_assignment_is_balanced_and_ordered() {
        let of = CommitteeSpec::contiguous(4).assign(10);
        assert_eq!(of, vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
        // Every committee non-empty, sizes within one of each other.
        let mut sizes = vec![0usize; 4];
        for c in &of {
            sizes[*c] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
    }

    #[test]
    fn seeded_assignment_is_deterministic_and_balanced() {
        let spec = CommitteeSpec::seeded(8, 42);
        let a = spec.assign(48);
        let b = spec.assign(48);
        assert_eq!(a, b, "same spec + n must derive the same map");
        let mut sizes = vec![0usize; 8];
        for c in &a {
            sizes[*c] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 6), "{sizes:?}");
        // A different seed shuffles differently (overwhelmingly likely).
        assert_ne!(a, CommitteeSpec::seeded(8, 43).assign(48));
        // And differs from contiguous chunking.
        assert_ne!(a, CommitteeSpec::contiguous(8).assign(48));
    }

    #[test]
    fn single_committee_maps_everyone_to_zero() {
        assert!(CommitteeSpec::contiguous(1)
            .assign(5)
            .iter()
            .all(|&c| c == 0));
    }

    #[test]
    fn displays_are_compact() {
        assert_eq!(CommitteeSpec::contiguous(16).to_string(), "c16");
        assert_eq!(CommitteeSpec::seeded(4, 7).to_string(), "c4s7");
        assert_eq!(CommitteeAssignment::Seeded.to_string(), "seeded");
    }
}
