//! # blockfed-telemetry
//!
//! Deterministic structured tracing for the blockfed stack.
//!
//! The simulation is bit-reproducible from a seed, and telemetry must keep
//! it that way. The design splits observation into three layers:
//!
//! 1. **Trace records** ([`TraceRecord`]): span begins/ends and instant
//!    events stamped with **virtual sim time**, emitted through a
//!    [`Telemetry`] handle into a [`TraceSink`]. The [`NoopSink`] reduces
//!    every emission site to a branch on a cached bool, and span ids are
//!    allocated identically whether tracing is on or off — so a traced run
//!    is bit-identical to an untraced one (enforced by the
//!    `telemetry_invariance` test suite).
//! 2. **Metrics** ([`MetricSet`]): counters/gauges/histograms folded
//!    unconditionally during the run (wait time per round, staleness
//!    distribution, fetch-retry latency). Deterministic and comparable;
//!    this is what lands in `CellReport` and the bench JSON.
//! 3. **Wall-clock profiling** ([`PhaseProfiler`]): host time per phase,
//!    kept strictly outside the deterministic record.
//!
//! Exports: [`jsonl`] writes one record per line with a self-contained
//! schema validator; [`chrome`] renders a Chrome-trace / Perfetto document.
//!
//! ## Adding spans in a new subsystem
//!
//! Take `&mut Telemetry` (or reach the run's handle), then:
//!
//! ```
//! use blockfed_telemetry::{MemorySink, Telemetry};
//! use blockfed_sim::SimTime;
//!
//! let mut sink = MemorySink::new();
//! let mut tel = Telemetry::new(&mut sink);
//! // Open a span on a track (peer index, or RUN_TRACK for run-level)...
//! let id = tel.begin(SimTime::ZERO, "committee.merge", 0, || {
//!     vec![("members", 8u32.into())]
//! });
//! // ...and close it with the same name/track/id. Attr closures only run
//! // when a real sink is attached, so emission is free when tracing is off.
//! tel.end(SimTime::from_millis(3), "committee.merge", 0, id, Vec::new);
//! assert_eq!(sink.records().len(), 2);
//! ```
//!
//! Rules: stamp records with sim time only (never `Instant::now()`); never
//! draw simulation RNG inside an attr closure; pick dotted lowercase names
//! (`subsystem.verb`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod jsonl;
mod metrics;
mod profile;
mod record;
mod sink;

pub use metrics::{Histogram, MetricSet};
pub use profile::PhaseProfiler;
pub use record::{Attr, AttrValue, RecordKind, TraceRecord, RUN_TRACK};
pub use sink::{MemorySink, NoopSink, Telemetry, TraceSink};
