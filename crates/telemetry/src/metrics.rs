//! The in-process aggregator: counters, gauges, and histograms folded from
//! the instrumented run, independent of whether a trace sink is attached.
//!
//! A [`MetricSet`] is always populated (folding is cheap arithmetic on
//! values the simulation computes anyway), deterministic (fold order is the
//! single-threaded event-loop order), and comparable (`PartialEq`), so two
//! runs of the same seed produce equal metric sets bit for bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary histogram: count / sum / min / max (mean derived).
///
/// Enough for wait-time, staleness, and latency distributions without
/// committing to a bucket layout; exact f64 arithmetic in deterministic
/// fold order keeps it reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Folds one observation in.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// An extensible, ordered set of named counters, gauges, and histograms.
///
/// Replaces ad-hoc one-off meter fields: consumers read by name with
/// zero-default semantics, so adding a metric never breaks existing readers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Reads a gauge; missing gauges read as zero.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Folds one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Reads a histogram, if any observation was ever folded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the whole set as one stable JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,"mean":..}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_number(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                json_string(k),
                h.count(),
                json_number(h.sum()),
                json_number(h.min()),
                json_number(h.max()),
                json_number(h.mean()),
            );
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 as a JSON number; non-finite values become `null`.
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summarizes() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        for v in [2.0, 4.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 9.0);
        assert_eq!(h.mean(), 5.0);
    }

    #[test]
    fn missing_metrics_read_as_zero() {
        let m = MetricSet::new();
        assert_eq!(m.counter("dropped_msgs"), 0);
        assert_eq!(m.gauge("recovery_ms"), 0.0);
        assert!(m.histogram("wait_secs").is_none());
    }

    #[test]
    fn counters_accumulate_and_sets_compare() {
        let mut a = MetricSet::new();
        a.add("fetch_retries", 2);
        a.add("fetch_retries", 3);
        assert_eq!(a.counter("fetch_retries"), 5);
        let mut b = MetricSet::new();
        b.add("fetch_retries", 5);
        assert_eq!(a, b);
        b.set_gauge("recovery_ms", 1.5);
        assert_ne!(a, b);
    }

    #[test]
    fn json_is_stable_and_ordered() {
        let mut m = MetricSet::new();
        m.add("b_counter", 1);
        m.add("a_counter", 2);
        m.set_gauge("g", 0.5);
        m.observe("h", 3.0);
        let json = m.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a_counter\":2,\"b_counter\":1},\
             \"gauges\":{\"g\":0.5},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"mean\":3}}}"
        );
        assert_eq!(json, m.clone().to_json(), "rendering must be stable");
    }

    #[test]
    fn json_escapes_and_non_finite() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(2.5), "2.5");
    }
}
