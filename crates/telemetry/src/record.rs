//! The trace record: what a span or event looks like on the wire.
//!
//! Records are stamped with **virtual sim time** only. Wall-clock never
//! appears here — host timing lives in [`crate::PhaseProfiler`], strictly
//! outside the deterministic record, so a traced run and an untraced run
//! are bit-identical.

use blockfed_sim::SimTime;

/// Track number for run-level (not per-peer) records.
///
/// Peer-scoped records use the peer index as their track; everything that
/// belongs to the run as a whole (faults, watchdog, seals attributed to the
/// network) goes on this sentinel track.
pub const RUN_TRACK: u32 = u32::MAX;

/// A single attribute value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute (counts, byte sizes, rounds).
    U64(u64),
    /// Signed integer attribute.
    I64(i64),
    /// Float attribute (durations in seconds, rates).
    F64(f64),
    /// Boolean attribute (flags like `aborted`).
    Bool(bool),
    /// String attribute (artifact fingerprints, labels).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A named attribute. Names are static so emission never allocates for keys.
pub type Attr = (&'static str, AttrValue);

/// Whether a record opens a span, closes one, or marks an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Span begin (`ph: "B"` in Chrome-trace terms).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Instantaneous event (`ph: "i"`).
    Instant,
}

impl RecordKind {
    /// The Chrome-trace phase letter for this kind.
    pub const fn phase(self) -> &'static str {
        match self {
            RecordKind::Begin => "B",
            RecordKind::End => "E",
            RecordKind::Instant => "i",
        }
    }
}

/// One trace record: a span boundary or instant event at a virtual instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual sim time of the record.
    pub time: SimTime,
    /// Span begin / span end / instant.
    pub kind: RecordKind,
    /// Static record name, e.g. `"round"`, `"net.flood"`, `"fetch"`.
    pub name: &'static str,
    /// Track the record belongs to: a peer index, or [`RUN_TRACK`].
    pub track: u32,
    /// Span id pairing a `Begin` with its `End`; `0` for instants.
    pub id: u64,
    /// Attributes attached to this record.
    pub attrs: Vec<Attr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_conversions_cover_common_types() {
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(-3i64), AttrValue::I64(-3));
        assert_eq!(AttrValue::from(0.5f64), AttrValue::F64(0.5));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
    }

    #[test]
    fn kinds_map_to_chrome_phases() {
        assert_eq!(RecordKind::Begin.phase(), "B");
        assert_eq!(RecordKind::End.phase(), "E");
        assert_eq!(RecordKind::Instant.phase(), "i");
    }
}
