//! Chrome-trace / Perfetto export.
//!
//! Produces a `{"traceEvents":[...]}` JSON document loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Each simulation track
//! (peer) becomes a named thread; virtual sim time maps to the trace
//! timestamp axis in microseconds.

use crate::metrics::{json_number, json_string};
use crate::record::{AttrValue, RecordKind, TraceRecord, RUN_TRACK};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Thread id used for run-level records in the exported trace. Peer tracks
/// export as `tid = peer + 1`, so tid 0 is free for the run track.
const RUN_TID: u32 = 0;

fn tid(track: u32) -> u32 {
    if track == RUN_TRACK {
        RUN_TID
    } else {
        track + 1
    }
}

/// Renders records as a Chrome-trace JSON document.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
        out.push('\n');
    };

    // Thread-name metadata so the viewer labels tracks "run" / "peer N".
    let tracks: BTreeSet<u32> = records.iter().map(|r| r.track).collect();
    for track in &tracks {
        let name = if *track == RUN_TRACK {
            "run".to_string()
        } else {
            format!("peer {track}")
        };
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                tid(*track),
                json_string(&name)
            ),
            &mut first,
        );
    }

    for rec in records {
        let ts = rec.time.as_nanos() as f64 / 1e3; // trace timestamps are µs
        let mut ev = String::with_capacity(128);
        let _ = write!(
            ev,
            "{{\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{},\"name\":{}",
            rec.kind.phase(),
            tid(rec.track),
            json_number(ts),
            json_string(rec.name),
        );
        if rec.kind == RecordKind::Instant {
            ev.push_str(",\"s\":\"t\"");
        }
        ev.push_str(",\"args\":{");
        let mut wrote = false;
        if rec.id != 0 {
            let _ = write!(ev, "\"span\":{}", rec.id);
            wrote = true;
        }
        for (k, v) in &rec.attrs {
            if wrote {
                ev.push(',');
            }
            wrote = true;
            let _ = write!(ev, "{}:", json_string(k));
            match v {
                AttrValue::U64(n) => {
                    let _ = write!(ev, "{n}");
                }
                AttrValue::I64(n) => {
                    let _ = write!(ev, "{n}");
                }
                AttrValue::F64(n) => ev.push_str(&json_number(*n)),
                AttrValue::Bool(b) => ev.push_str(if *b { "true" } else { "false" }),
                AttrValue::Str(s) => ev.push_str(&json_string(s)),
            }
        }
        ev.push_str("}}");
        emit(ev, &mut first);
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_sim::SimTime;

    #[test]
    fn exports_metadata_and_events() {
        let records = vec![
            TraceRecord {
                time: SimTime::from_micros(1500),
                kind: RecordKind::Begin,
                name: "round",
                track: 2,
                id: 4,
                attrs: vec![("round", 1u32.into())],
            },
            TraceRecord {
                time: SimTime::from_micros(2500),
                kind: RecordKind::End,
                name: "round",
                track: 2,
                id: 4,
                attrs: vec![],
            },
            TraceRecord {
                time: SimTime::from_micros(2000),
                kind: RecordKind::Instant,
                name: "watchdog.armed",
                track: RUN_TRACK,
                id: 0,
                attrs: vec![],
            },
        ];
        let doc = chrome_trace(&records);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // Metadata names both tracks; peers shift to tid = peer + 1.
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"name\":\"peer 2\""));
        assert!(doc.contains("\"name\":\"run\""));
        // Virtual µs timestamps, B/E pairing via the span arg, instant scope.
        assert!(doc.contains("\"ts\":1500"));
        assert!(doc.contains("\"span\":4"));
        assert!(doc.contains("\"s\":\"t\""));
    }
}
