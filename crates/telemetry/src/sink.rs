//! Sinks that consume trace records, and the [`Telemetry`] handle that
//! instrumented code emits through.
//!
//! The invariance contract: a sink only *observes*. It must never draw from
//! simulation RNG streams or influence scheduling, so a run traced into any
//! sink is bit-identical to the same run with [`NoopSink`].

use crate::jsonl;
use crate::record::{Attr, RecordKind, TraceRecord, RUN_TRACK};
use blockfed_sim::SimTime;

/// A consumer of trace records.
pub trait TraceSink {
    /// Whether this sink wants records at all. When `false`, emission is
    /// skipped entirely — attribute closures are never invoked, so a
    /// disabled sink costs one branch per emission site.
    fn enabled(&self) -> bool {
        true
    }
    /// Consume one record.
    fn record(&mut self, rec: TraceRecord);
}

/// The no-op sink: discards everything, reports itself disabled.
///
/// [`Telemetry`] caches `enabled()` at construction, so with this sink every
/// emission site reduces to a branch on a bool (plus one span-id increment
/// for begins, kept unconditional so span ids never depend on the sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _rec: TraceRecord) {}
}

/// A sink that buffers every record in memory for later export.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the sink, returning the buffered records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of records with the given name.
    pub fn count(&self, name: &str) -> usize {
        self.records.iter().filter(|r| r.name == name).count()
    }

    /// Whether any record with the given name was emitted.
    pub fn contains(&self, name: &str) -> bool {
        self.records.iter().any(|r| r.name == name)
    }

    /// Renders the buffer as JSONL, one record per line (see [`crate::jsonl`]).
    pub fn to_jsonl(&self) -> String {
        jsonl::records_to_jsonl(&self.records)
    }

    /// Renders the buffer as a Chrome-trace / Perfetto JSON document.
    pub fn to_chrome_trace(&self) -> String {
        crate::chrome::chrome_trace(&self.records)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }
}

/// The emission handle instrumented code holds.
///
/// Wraps a sink with a cached enabled flag and a span-id counter. Span ids
/// are allocated on every [`Telemetry::begin`] regardless of the sink, so
/// instrumented state (a stored span id) is identical whether tracing is on
/// or off — the invariance proof relies on this.
pub struct Telemetry<'a> {
    sink: &'a mut dyn TraceSink,
    enabled: bool,
    next_id: u64,
}

impl<'a> Telemetry<'a> {
    /// Wraps a sink.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        let enabled = sink.enabled();
        Telemetry {
            sink,
            enabled,
            next_id: 1,
        }
    }

    /// Whether records are being kept. Use to skip expensive attribute
    /// construction that the closure forms can't express.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span on a peer track (or [`RUN_TRACK`]) and returns its id.
    /// The attribute closure runs only when the sink is enabled.
    pub fn begin(
        &mut self,
        time: SimTime,
        name: &'static str,
        track: u32,
        attrs: impl FnOnce() -> Vec<Attr>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if self.enabled {
            self.sink.record(TraceRecord {
                time,
                kind: RecordKind::Begin,
                name,
                track,
                id,
                attrs: attrs(),
            });
        }
        id
    }

    /// Closes the span `id` opened with the same `name` and `track`.
    pub fn end(
        &mut self,
        time: SimTime,
        name: &'static str,
        track: u32,
        id: u64,
        attrs: impl FnOnce() -> Vec<Attr>,
    ) {
        if self.enabled {
            self.sink.record(TraceRecord {
                time,
                kind: RecordKind::End,
                name,
                track,
                id,
                attrs: attrs(),
            });
        }
    }

    /// Emits an instantaneous event.
    pub fn instant(
        &mut self,
        time: SimTime,
        name: &'static str,
        track: u32,
        attrs: impl FnOnce() -> Vec<Attr>,
    ) {
        if self.enabled {
            self.sink.record(TraceRecord {
                time,
                kind: RecordKind::Instant,
                name,
                track,
                id: 0,
                attrs: attrs(),
            });
        }
    }

    /// Emits a run-level instant (shorthand for `instant(.., RUN_TRACK, ..)`).
    pub fn run_instant(
        &mut self,
        time: SimTime,
        name: &'static str,
        attrs: impl FnOnce() -> Vec<Attr>,
    ) {
        self.instant(time, name, RUN_TRACK, attrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_skips_attr_closures() {
        let mut sink = NoopSink;
        let mut tel = Telemetry::new(&mut sink);
        assert!(!tel.enabled());
        let id = tel.begin(SimTime::ZERO, "span", 0, || {
            panic!("attr closure must not run when disabled")
        });
        tel.end(SimTime::from_secs(1), "span", 0, id, || unreachable!());
        tel.instant(SimTime::ZERO, "evt", 0, || unreachable!());
    }

    #[test]
    fn span_ids_are_allocated_identically_on_and_off() {
        let mut noop = NoopSink;
        let mut mem = MemorySink::new();
        let mut off = Telemetry::new(&mut noop);
        let mut on = Telemetry::new(&mut mem);
        for _ in 0..3 {
            let a = off.begin(SimTime::ZERO, "s", 0, Vec::new);
            let b = on.begin(SimTime::ZERO, "s", 0, Vec::new);
            assert_eq!(a, b, "span ids must not depend on the sink");
        }
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut sink = MemorySink::new();
        let mut tel = Telemetry::new(&mut sink);
        let id = tel.begin(SimTime::ZERO, "round", 2, || vec![("round", 1u32.into())]);
        tel.instant(SimTime::from_millis(5), "net.flood", 2, Vec::new);
        tel.end(SimTime::from_secs(1), "round", 2, id, Vec::new);
        assert_eq!(sink.records().len(), 3);
        assert_eq!(sink.count("round"), 2);
        assert!(sink.contains("net.flood"));
        assert_eq!(sink.records()[0].kind, RecordKind::Begin);
        assert_eq!(sink.records()[2].kind, RecordKind::End);
        assert_eq!(sink.records()[0].id, sink.records()[2].id);
    }
}
