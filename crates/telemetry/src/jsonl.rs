//! JSONL trace encoding and a self-contained schema check.
//!
//! One record per line:
//!
//! ```json
//! {"t":1500000,"ph":"B","name":"round","track":3,"id":7,"attrs":{"round":1}}
//! ```
//!
//! `t` is virtual sim time in nanoseconds; `track` is a peer index or `-1`
//! for run-level records; `id` pairs span begins with ends (`0` for
//! instants). [`validate_jsonl`] re-parses emitted text with a minimal JSON
//! scanner (the workspace has no JSON parser dependency) and enforces the
//! schema, so CI can assert a trace file is well formed without external
//! tooling.

use crate::metrics::{json_number, json_string};
use crate::record::{AttrValue, TraceRecord, RUN_TRACK};
use std::fmt::Write as _;

/// Encodes one record as a single JSON line (no trailing newline).
pub fn record_to_jsonl(rec: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    let track: i64 = if rec.track == RUN_TRACK {
        -1
    } else {
        i64::from(rec.track)
    };
    let _ = write!(
        out,
        "{{\"t\":{},\"ph\":\"{}\",\"name\":{},\"track\":{},\"id\":{},\"attrs\":{{",
        rec.time.as_nanos(),
        rec.kind.phase(),
        json_string(rec.name),
        track,
        rec.id,
    );
    for (i, (k, v)) in rec.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:", json_string(k));
        match v {
            AttrValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::F64(n) => out.push_str(&json_number(*n)),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            AttrValue::Str(s) => out.push_str(&json_string(s)),
        }
    }
    out.push_str("}}");
    out
}

/// Encodes a slice of records as JSONL (newline-terminated lines).
pub fn records_to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_to_jsonl(rec));
        out.push('\n');
    }
    out
}

/// Validates JSONL trace text against the schema. Returns the number of
/// records on success, or a message naming the first offending line.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        n += 1;
    }
    Ok(n)
}

fn validate_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    let keys = p.object_keys()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err("trailing bytes after JSON object".to_string());
    }
    for required in ["t", "ph", "name", "track", "id", "attrs"] {
        if !keys.iter().any(|(k, _)| k == required) {
            return Err(format!("missing key \"{required}\""));
        }
    }
    for (k, v) in &keys {
        match (k.as_str(), v) {
            ("t", Value::Number) | ("track", Value::Number) | ("id", Value::Number) => {}
            ("ph", Value::String(s)) if s == "B" || s == "E" || s == "i" => {}
            ("ph", Value::String(s)) => return Err(format!("bad phase {s:?}")),
            ("name", Value::String(s)) if !s.is_empty() => {}
            ("name", Value::String(_)) => return Err("empty name".to_string()),
            ("attrs", Value::Object) => {}
            (k, v) => return Err(format!("key {k:?} has wrong type ({v:?})")),
        }
    }
    Ok(())
}

/// Shallow type of a validated JSON value.
#[derive(Debug)]
enum Value {
    Number,
    String(String),
    Object,
    Other,
}

/// Minimal recursive-descent JSON scanner: checks well-formedness and
/// reports top-level key/value types without building a document tree.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    /// Parses a top-level object, returning its keys and value types.
    fn object_keys(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            keys.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(keys);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'{') => {
                self.object_keys()?;
                Ok(Value::Object)
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Other);
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Other);
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b't') => self.literal("true").map(|_| Value::Other),
            Some(b'f') => self.literal("false").map(|_| Value::Other),
            Some(b'n') => self.literal("null").map(|_| Value::Other),
            Some(b'-' | b'0'..=b'9') => {
                self.number()?;
                Ok(Value::Number)
            }
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') | Some(b'f') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 scalar; the input is a &str so the
                    // encoding is already valid.
                    let s = &self.bytes[self.pos..];
                    let step = match s[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&s[..step]).map_err(|_| "bad utf8")?);
                    self.pos += step;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if self.pos == start || self.bytes[start..self.pos] == [b'-'] {
            Err(format!("bad number at byte {start}"))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use blockfed_sim::SimTime;

    fn rec() -> TraceRecord {
        TraceRecord {
            time: SimTime::from_millis(5),
            kind: RecordKind::Begin,
            name: "round",
            track: 3,
            id: 7,
            attrs: vec![
                ("round", 1u32.into()),
                ("fp", "ab12\"cd".into()),
                ("wait", 0.25f64.into()),
                ("ok", true.into()),
            ],
        }
    }

    #[test]
    fn encodes_the_documented_shape() {
        let line = record_to_jsonl(&rec());
        assert_eq!(
            line,
            "{\"t\":5000000,\"ph\":\"B\",\"name\":\"round\",\"track\":3,\"id\":7,\
             \"attrs\":{\"round\":1,\"fp\":\"ab12\\\"cd\",\"wait\":0.25,\"ok\":true}}"
        );
    }

    #[test]
    fn run_track_encodes_as_minus_one() {
        let mut r = rec();
        r.track = RUN_TRACK;
        assert!(record_to_jsonl(&r).contains("\"track\":-1"));
    }

    #[test]
    fn emitted_jsonl_validates() {
        let text = records_to_jsonl(&[rec(), rec()]);
        assert_eq!(validate_jsonl(&text), Ok(2));
    }

    #[test]
    fn validator_rejects_schema_violations() {
        // Not JSON at all.
        assert!(validate_jsonl("not json\n").is_err());
        // Valid JSON, missing keys.
        assert!(validate_jsonl("{\"t\":1}\n").is_err());
        // Wrong phase letter.
        let bad = "{\"t\":1,\"ph\":\"X\",\"name\":\"a\",\"track\":0,\"id\":0,\"attrs\":{}}\n";
        assert!(validate_jsonl(bad).is_err());
        // Wrong type for t.
        let bad = "{\"t\":\"1\",\"ph\":\"i\",\"name\":\"a\",\"track\":0,\"id\":0,\"attrs\":{}}\n";
        assert!(validate_jsonl(bad).is_err());
        // Trailing garbage.
        let bad = "{\"t\":1,\"ph\":\"i\",\"name\":\"a\",\"track\":0,\"id\":0,\"attrs\":{}}x\n";
        assert!(validate_jsonl(bad).is_err());
    }

    #[test]
    fn validator_accepts_blank_lines_and_nested_attrs() {
        let ok = "\n{\"t\":1,\"ph\":\"i\",\"name\":\"a\",\"track\":-1,\"id\":0,\
                  \"attrs\":{\"s\":\"x\",\"n\":-2.5e3,\"b\":false,\"z\":null}}\n\n";
        assert_eq!(validate_jsonl(ok), Ok(1));
    }
}
