//! Wall-clock phase profiling — the one place host time is allowed.
//!
//! [`PhaseProfiler`] accumulates real elapsed time per named phase with
//! `std::time::Instant`. It is strictly separate from the deterministic
//! trace record: nothing measured here may feed back into simulation state,
//! and profiler output never participates in run equality.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named phase.
#[derive(Debug, Default, Clone)]
pub struct PhaseProfiler {
    totals: BTreeMap<String, Duration>,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, charging its wall-clock time to `phase`.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Adds an externally measured duration to `phase`.
    pub fn add(&mut self, phase: &str, d: Duration) {
        *self
            .totals
            .entry(phase.to_string())
            .or_insert(Duration::ZERO) += d;
    }

    /// Total wall-clock seconds charged to `phase` (0.0 if never timed).
    pub fn secs(&self, phase: &str) -> f64 {
        self.totals
            .get(phase)
            .map(Duration::as_secs_f64)
            .unwrap_or(0.0)
    }

    /// Iterates phases in name order as `(phase, seconds)`.
    pub fn phases(&self) -> impl Iterator<Item = (&str, f64)> {
        self.totals
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_secs_f64()))
    }

    /// Renders an aligned two-column text table of phase totals.
    pub fn table(&self) -> String {
        let width = self
            .totals
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(5)
            .max("phase".len());
        let mut out = String::new();
        let _ = writeln!(out, "{:<width$}  wall_secs", "phase");
        for (phase, secs) in self.phases() {
            let _ = writeln!(out, "{phase:<width$}  {secs:.6}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports() {
        let mut p = PhaseProfiler::new();
        let v = p.time("work", || 40 + 2);
        assert_eq!(v, 42);
        p.add("work", Duration::from_millis(10));
        p.add("idle", Duration::from_millis(5));
        assert!(p.secs("work") >= 0.010);
        assert!(p.secs("missing") == 0.0);
        let phases: Vec<&str> = p.phases().map(|(k, _)| k).collect();
        assert_eq!(phases, vec!["idle", "work"], "name-ordered");
        let table = p.table();
        assert!(table.contains("phase"));
        assert!(table.contains("work"));
    }
}
