//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p blockfed-bench --bin experiments -- <id> [--full] [--seed N]
//!
//! ids: table1 fig3 table2 table3 table4 fig4 tradeoff chainperf contention all
//! ```
//!
//! Text tables and ASCII figures go to stdout; CSVs land in `results/`.

use blockfed_bench::{
    prepare, run_asyncopt, run_chainperf, run_contention, run_poisoning, run_retarget,
    run_robustness, run_table1, run_tables234, run_tradeoff, run_tradeoff_sweep, Profile,
};
use blockfed_report::write_csv;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table1|fig3|table2|table3|table4|fig4|tradeoff|chainperf|contention|poisoning|robustness|asyncopt|retarget|sweep|all> [--full] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut full = false;
    let mut seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--seed" => {
                i += 1;
                seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            other if id.is_none() && !other.starts_with('-') => id = Some(other.to_owned()),
            _ => usage(),
        }
        i += 1;
    }
    let id = id.unwrap_or_else(|| "all".to_owned());
    let mut profile = if full {
        Profile::full()
    } else {
        Profile::quick()
    };
    if let Some(s) = seed {
        profile = profile.with_seed(s);
    }
    println!("profile: {} (seed {})", profile.name, profile.seed);

    let results_dir = "results";
    let needs_data = matches!(
        id.as_str(),
        "table1"
            | "fig3"
            | "table2"
            | "table3"
            | "table4"
            | "fig4"
            | "tradeoff"
            | "contention"
            | "poisoning"
            | "robustness"
            | "asyncopt"
            | "all"
    );
    let data = if needs_data {
        println!("preparing data (generate, partition, pretrain backbone)…");
        Some(prepare(profile.clone()))
    } else {
        None
    };

    let want = |x: &str| id == x || id == "all";

    if want("table1") || want("fig3") {
        let data = data.as_ref().expect("prepared");
        println!("running Table I / Figure 3 (Vanilla FL, both models × both strategies)…");
        let out = run_table1(data);
        println!("{}", out.table);
        for fig in &out.figures {
            println!("{fig}");
        }
        let path = write_csv(results_dir, "table1", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("table2") || want("table3") || want("table4") || want("fig4") {
        let data = data.as_ref().expect("prepared");
        println!("running Tables II–IV / Figure 4 (decentralized, both models)…");
        let out = run_tables234(data);
        for (i, table) in out.tables.iter().enumerate() {
            let tid = format!("table{}", i + 2);
            if want(&tid) || want("fig4") || id == "all" {
                println!("{table}");
                let path = write_csv(results_dir, &tid, table).expect("write csv");
                println!("wrote {}", path.display());
            }
        }
        if want("fig4") {
            for fig in &out.figures {
                println!("{fig}");
            }
        }
        for (sel, run) in &out.runs {
            println!(
                "[{}] chain: {} blocks, mean interval {:?}, {} txs, {:.1} MB payload, finished at {:.1}s",
                sel.kind(),
                run.chain.blocks,
                run.chain.mean_block_interval.map(|d| d.as_secs_f64()),
                run.chain.total_txs,
                run.chain.total_payload_bytes as f64 / 1e6,
                run.finished_at.as_secs_f64(),
            );
        }
    }

    if want("tradeoff") {
        let data = data.as_ref().expect("prepared");
        println!("running the wait-or-not trade-off (both models × wait-all/2/1)…");
        let out = run_tradeoff(data);
        println!("{}", out.table);
        let path = write_csv(results_dir, "tradeoff", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("chainperf") {
        println!("running the chain performance sweep…");
        let out = run_chainperf(&[3, 6, 12, 24], &[253_952, 21_200_000], 12, profile.seed);
        println!("{}", out.table);
        let path = write_csv(results_dir, "chainperf", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("contention") {
        let data = data.as_ref().expect("prepared");
        println!("running the mining⇄training contention sweep…");
        let out = run_contention(data, &[0.0, 0.25, 0.5, 0.75]);
        println!("{}", out.table);
        let path = write_csv(results_dir, "contention", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("poisoning") {
        let data = data.as_ref().expect("prepared");
        println!("running the poisoning / non-repudiation study (peer A compromised)…");
        let out = run_poisoning(data);
        println!("{}", out.table);
        let path = write_csv(results_dir, "poisoning", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("robustness") {
        let data = data.as_ref().expect("prepared");
        println!("running the robust-aggregation baseline comparison (6 clients)…");
        let out = run_robustness(data);
        println!("{}", out.table);
        let path = write_csv(results_dir, "robustness", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("asyncopt") {
        let data = data.as_ref().expect("prepared");
        println!("running the asynchronous-optimum study (wait-k + FedAsync α×decay)…");
        let out = run_asyncopt(data);
        println!("{}", out.waitk_table);
        println!("{}", out.alpha_table);
        println!("{}", out.bestk_table);
        let path = write_csv(results_dir, "asyncopt_waitk", &out.waitk_table).expect("write csv");
        println!("wrote {}", path.display());
        let path = write_csv(results_dir, "asyncopt_alpha", &out.alpha_table).expect("write csv");
        println!("wrote {}", path.display());
        let path = write_csv(results_dir, "asyncopt_bestk", &out.bestk_table).expect("write csv");
        println!("wrote {}", path.display());
    }

    if want("retarget") {
        println!("running the adaptive-difficulty retarget ablation…");
        let out = run_retarget(profile.seed);
        println!("{}", out.table);
        let path = write_csv(results_dir, "retarget", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }

    // The seed sweep re-prepares data per seed, so it is not part of `all`;
    // request it explicitly.
    if id == "sweep" {
        let seeds: Vec<u64> = (0..5).map(|i| profile.seed + i).collect();
        println!("running the trade-off seed sweep over seeds {seeds:?}…");
        let out = run_tradeoff_sweep(&profile, &seeds);
        println!("{}", out.table);
        let path = write_csv(results_dir, "tradeoff_sweep", &out.table).expect("write csv");
        println!("wrote {}", path.display());
    }
}
