//! The adaptive-difficulty ablation — §II-A2's Sethi et al. reference:
//! predictive difficulty control "to enhance blockchain performance,
//! especially in the usage of blockchain-based FL where the number of
//! participants is flexible".
//!
//! Simulates a miner-population shock (participants join at one point, leave
//! at another) and measures how quickly each retarget rule restores the ~13 s
//! cadence. The Homestead fixed step is the control arm; the epochal
//! moving-average and PI-controller rules stand in for the learned predictor
//! (see DESIGN.md's substitution table).

use blockfed_chain::pow::TARGET_BLOCK_TIME_NS;
use blockfed_chain::{simulate_cadence, DifficultyController, RetargetRule};
use blockfed_report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the retarget study.
#[derive(Debug, Clone, PartialEq)]
pub struct RetargetRow {
    /// The rule evaluated.
    pub rule: RetargetRule,
    /// Mean cadence over the tail of the calm phase (seconds).
    pub calm_cadence_secs: f64,
    /// Mean cadence over the tail of the 4×-miners phase (seconds).
    pub join_cadence_secs: f64,
    /// Mean cadence over the tail of the miners-left phase (seconds).
    pub leave_cadence_secs: f64,
    /// Relative cadence error across both post-shock windows.
    pub shock_error: f64,
}

/// Output of the retarget study.
pub struct RetargetOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<RetargetRow>,
}

/// The rules compared.
pub fn retarget_rules() -> Vec<RetargetRule> {
    vec![
        RetargetRule::Homestead,
        RetargetRule::MovingAverage { window: 8 },
        RetargetRule::Pi { kp: 0.3, ki: 0.05 },
    ]
}

/// Runs the miner-population shock scenario for every rule.
///
/// Schedule: blocks 0–99 at base hash rate, 100–199 at 4× (peers join),
/// 200–299 back at base (peers leave). Each phase's cadence is measured over
/// its **last 60 blocks**, i.e. "did the rule recover the 13 s target before
/// the phase ended" — a rule that never adapts fails the join phase; a rule
/// that adapts but cannot un-adapt fails the leave phase.
pub fn run_retarget(seed: u64) -> RetargetOutput {
    let target_s = TARGET_BLOCK_TIME_NS as f64 / 1e9;
    let base = 240_000.0; // three paper VMs' pooled hash rate
    let schedule = move |b: usize| -> f64 {
        if (100..200).contains(&b) {
            4.0 * base
        } else {
            base
        }
    };
    let initial = (base * target_s) as u128;

    let mut rows = Vec::new();
    for rule in retarget_rules() {
        let mut controller = DifficultyController::new(rule, initial);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let intervals = simulate_cadence(&mut controller, schedule, 300, &mut rng);
        let mean = |range: std::ops::Range<usize>| -> f64 {
            let slice = &intervals[range];
            slice.iter().sum::<f64>() / slice.len() as f64
        };
        let calm = mean(40..100);
        let join = mean(140..200);
        let leave = mean(240..300);
        let shock_error = ((join - target_s).abs() + (leave - target_s).abs()) / (2.0 * target_s);
        rows.push(RetargetRow {
            rule,
            calm_cadence_secs: calm,
            join_cadence_secs: join,
            leave_cadence_secs: leave,
            shock_error,
        });
    }

    let mut table = Table::new(
        "Difficulty retarget — cadence through a miner-population shock (target 13 s)",
        &[
            "Rule",
            "Calm (s)",
            "After join (s)",
            "After leave (s)",
            "Shock error",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.rule.to_string(),
            format!("{:.2}", r.calm_cadence_secs),
            format!("{:.2}", r.join_cadence_secs),
            format!("{:.2}", r.leave_cadence_secs),
            format!("{:.3}", r.shock_error),
        ]);
    }
    RetargetOutput { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_rules_absorb_the_shock_better() {
        // Average over seeds: single-run tail means still carry exponential
        // noise; Homestead's failure to adapt is structural and dominates.
        let mut errs = [0.0f64; 3];
        for seed in [42, 43, 44] {
            let out = run_retarget(seed);
            assert_eq!(out.rows.len(), 3);
            for (e, r) in errs.iter_mut().zip(&out.rows) {
                *e += r.shock_error / 3.0;
            }
        }
        let homestead = errs[0];
        for (i, err) in errs.iter().enumerate().skip(1) {
            assert!(
                *err < homestead,
                "rule #{i} error {err} not better than homestead {homestead}"
            );
        }
    }

    #[test]
    fn calm_cadence_is_near_target_for_all_rules() {
        let out = run_retarget(7);
        for r in &out.rows {
            assert!(
                (r.calm_cadence_secs - 13.0).abs() < 5.0,
                "{}: calm cadence {}",
                r.rule,
                r.calm_cadence_secs
            );
        }
    }
}
