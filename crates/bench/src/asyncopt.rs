//! The asynchronous-optimum study — the paper's second future-work question:
//! "the impact of an arbitrary number of local updates on each peer in
//! asynchronous communication is another intriguing question we aim to
//! explore for optimal values".
//!
//! Three sub-studies (the on-chain arms are declarative
//! `blockfed-scenario` specs lowered via [`crate::decentralized_scenario`]):
//!
//! 1. **Wait-for-k on chain** (heterogeneous compute, one straggler) — the
//!    fully coupled system at `k ∈ {all, 2, 1}`: per-round aggregation wait,
//!    the age-of-block freshness of what gets aggregated, and final accuracy.
//! 2. **Full asynchrony** — the FedAsync-style driver sweeping the mixing
//!    rate α and the staleness decay; reports final accuracy and mean
//!    staleness, mapping where "no waiting at all" lands on the same
//!    speed-precision frontier.
//! 3. **Aggregation size** — at fixed synchrony, how many models should
//!    enter the aggregate at all: [`Strategy::BestK`] (the k best standalone
//!    models, linear cost) vs everything vs the exponential "consider"
//!    search, for both of the paper's models.

use blockfed_fl::{AsyncFl, AsyncFlConfig, StalenessDecay, Strategy, WaitPolicy};
use blockfed_report::{fmt_acc, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    decentralized_run_with_computes, straggler_profiles, vanilla_run, ModelSel, PreparedData,
};

/// One row of the wait-for-k sub-study.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitKRow {
    /// The wait policy.
    pub policy: WaitPolicy,
    /// Mean final-round accuracy across peers.
    pub final_accuracy: f64,
    /// Mean per-round aggregation wait (seconds).
    pub mean_wait_secs: f64,
    /// Mean age-of-block of aggregated updates (seconds).
    pub age_mean_secs: f64,
    /// Maximum observed update age (seconds).
    pub age_max_secs: f64,
    /// Mean number of updates per aggregation.
    pub mean_updates_used: f64,
}

/// One row of the full-asynchrony sub-study.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaRow {
    /// FedAsync base mixing rate.
    pub alpha: f64,
    /// Staleness decay in force.
    pub decay: StalenessDecay,
    /// Final global accuracy.
    pub final_accuracy: f64,
    /// Mean staleness across merges (in server versions).
    pub mean_staleness: f64,
}

/// One row of the best-k aggregation-size sub-study.
#[derive(Debug, Clone, PartialEq)]
pub struct BestKRow {
    /// Which model.
    pub model: blockfed_nn::ModelKind,
    /// The aggregation strategy.
    pub strategy: Strategy,
    /// Final-round accuracy (client A's series).
    pub final_accuracy: f64,
}

/// Output of the asynchronous-optimum study.
pub struct AsyncOptOutput {
    /// Rendered wait-for-k table.
    pub waitk_table: Table,
    /// Rendered α × decay table.
    pub alpha_table: Table,
    /// Rendered best-k aggregation-size table.
    pub bestk_table: Table,
    /// Raw wait-for-k rows.
    pub waitk_rows: Vec<WaitKRow>,
    /// Raw α × decay rows.
    pub alpha_rows: Vec<AlphaRow>,
    /// Raw best-k rows.
    pub bestk_rows: Vec<BestKRow>,
}

/// Runs all three sub-studies (1 and 2 on SimpleNN; 3 on both models).
pub fn run_asyncopt(data: &PreparedData) -> AsyncOptOutput {
    let sel = ModelSel::Simple;

    // --- sub-study 1: wait-for-k on the full stack -----------------------
    let mut waitk_rows = Vec::new();
    for policy in [
        WaitPolicy::All,
        WaitPolicy::FirstK(2),
        WaitPolicy::FirstK(1),
    ] {
        let run = decentralized_run_with_computes(data, sel, policy, Some(straggler_profiles()));
        let final_accuracy = (0..3).map(|p| run.final_accuracy(p)).sum::<f64>() / 3.0;
        let age = run.age_of_block();
        let (mut used, mut rounds) = (0usize, 0usize);
        for peer in &run.peer_records {
            for r in peer {
                used += r.updates_used;
                rounds += 1;
            }
        }
        waitk_rows.push(WaitKRow {
            policy,
            final_accuracy,
            mean_wait_secs: run.mean_wait().as_secs_f64(),
            age_mean_secs: age.mean(),
            age_max_secs: age.max(),
            mean_updates_used: used as f64 / rounds.max(1) as f64,
        });
    }
    let mut waitk_table = Table::new(
        "Async optimum (1/3) — wait-for-k under a straggler: freshness vs accuracy",
        &[
            "Policy",
            "Final acc",
            "Mean wait (s)",
            "Age mean (s)",
            "Age max (s)",
            "Updates/agg",
        ],
    );
    for r in &waitk_rows {
        waitk_table.row_owned(vec![
            r.policy.to_string(),
            fmt_acc(r.final_accuracy),
            format!("{:.2}", r.mean_wait_secs),
            format!("{:.2}", r.age_mean_secs),
            format!("{:.2}", r.age_max_secs),
            format!("{:.2}", r.mean_updates_used),
        ]);
    }

    // --- sub-study 2: full asynchrony (α × decay) -------------------------
    let p = &data.profile;
    let total_merges = (p.rounds * 3).max(12);
    let decays = [
        StalenessDecay::Constant,
        StalenessDecay::Polynomial { a: 0.5 },
        StalenessDecay::Polynomial { a: 1.0 },
    ];
    let mut alpha_rows = Vec::new();
    for &alpha in &[0.3, 0.6, 0.9] {
        for &decay in &decays {
            let config = AsyncFlConfig {
                total_merges,
                local_epochs: p.local_epochs,
                batch_size: p.batch_size,
                lr: data.lr(sel),
                momentum: p.momentum,
                alpha,
                decay,
                // Mirror the straggler compute spread of sub-study 1.
                client_speeds: vec![11.0, 7.0, 1.0],
                eval_every: total_merges,
                batch_parallel: p.batch_parallel,
            };
            let driver = AsyncFl::new(config, data.shards(sel), data.test(sel));
            let mut factory = data.model_factory(sel);
            let mut rng = StdRng::seed_from_u64(p.seed ^ 0xA57);
            let run = driver.run(&mut *factory, &mut rng);
            alpha_rows.push(AlphaRow {
                alpha,
                decay,
                final_accuracy: run.final_accuracy,
                mean_staleness: run.mean_staleness(),
            });
        }
    }
    let mut alpha_table = Table::new(
        "Async optimum (2/3) — FedAsync α × staleness decay (no waiting at all)",
        &["Alpha", "Decay", "Final acc", "Mean staleness"],
    );
    for r in &alpha_rows {
        alpha_table.row_owned(vec![
            format!("{:.1}", r.alpha),
            r.decay.to_string(),
            fmt_acc(r.final_accuracy),
            format!("{:.2}", r.mean_staleness),
        ]);
    }

    // --- sub-study 3: how many models should enter the aggregate? ---------
    // The same "arbitrary number of local updates" question at the
    // aggregation level: BestK(k) averages the k best standalone models at
    // linear cost; Consider is the exponential search; NotConsider is all.
    let mut bestk_rows = Vec::new();
    for sel in [ModelSel::Simple, ModelSel::EffNet] {
        for strategy in [
            Strategy::BestK(1),
            Strategy::BestK(2),
            Strategy::NotConsider,
            Strategy::Consider,
        ] {
            let run = vanilla_run(data, sel, strategy);
            bestk_rows.push(BestKRow {
                model: sel.kind(),
                strategy,
                final_accuracy: run.final_accuracy(blockfed_fl::ClientId(0)),
            });
        }
    }
    let mut bestk_table = Table::new(
        "Async optimum (3/3) — aggregation size: best-k vs all vs full search",
        &["Model", "Strategy", "Final acc"],
    );
    for r in &bestk_rows {
        bestk_table.row_owned(vec![
            r.model.to_string(),
            r.strategy.to_string(),
            fmt_acc(r.final_accuracy),
        ]);
    }

    AsyncOptOutput {
        waitk_table,
        alpha_table,
        bestk_table,
        waitk_rows,
        alpha_rows,
        bestk_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, Profile};

    #[test]
    fn asyncopt_shapes_and_orderings() {
        let data = prepare(Profile::tiny());
        let out = run_asyncopt(&data);
        assert_eq!(out.waitk_rows.len(), 3);
        assert_eq!(out.alpha_rows.len(), 9);
        // 2 models × {best-1, best-2, all, consider}.
        assert_eq!(out.bestk_rows.len(), 8);
        for r in &out.bestk_rows {
            assert!((0.0..=1.0).contains(&r.final_accuracy), "{:?}", r);
        }
        // Waiting less can never increase the mean wait.
        assert!(out.waitk_rows[2].mean_wait_secs <= out.waitk_rows[0].mean_wait_secs + 1e-9);
        for r in &out.waitk_rows {
            assert!((0.0..=1.0).contains(&r.final_accuracy));
            assert!(r.age_max_secs >= r.age_mean_secs);
            assert!(r.mean_updates_used >= 1.0);
        }
        // The straggler speed spread must induce staleness somewhere.
        assert!(out.alpha_rows.iter().any(|r| r.mean_staleness > 0.5));
        for r in &out.alpha_rows {
            assert!((0.0..=1.0).contains(&r.final_accuracy));
        }
    }

    #[test]
    fn waiting_for_fewer_updates_uses_fewer_models() {
        let data = prepare(Profile::tiny());
        let out = run_asyncopt(&data);
        let all = &out.waitk_rows[0];
        let one = &out.waitk_rows[2];
        assert!(
            one.mean_updates_used <= all.mean_updates_used,
            "wait-1 {} vs wait-all {}",
            one.mean_updates_used,
            all.mean_updates_used
        );
    }
}
