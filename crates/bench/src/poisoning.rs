//! The poisoning / non-repudiation study — the paper's stated future work:
//! "deploying and evaluating the robustness of this method on the
//! non-repudiation in various poisonous data attacks".
//!
//! Two sub-studies:
//!
//! 1. **On-chain defence arms** ([`run_poisoning`]): the fully coupled
//!    decentralized system under one compromised peer mounting each attack,
//!    with the paper's fitness gate and the statistical norm gate on or off.
//!    Reports honest-peer accuracy, how often the attacker was detected and
//!    dropped, and whether the on-chain evidence pins the poisoned artefact
//!    to its author (non-repudiation).
//! 2. **Robust-estimator baselines** ([`run_robustness`]): chain-free FL with
//!    six clients comparing FedAvg against Krum / trimmed-mean / median /
//!    clipped-mean under the same attacks — the estimator-side defence family
//!    the paper's combination search is an alternative to.

use blockfed_data::{partition_dataset, Batcher, Partition};
use blockfed_fl::robust::RobustRule;
use blockfed_fl::{Adversary, Attack, ClientId, ModelUpdate, WaitPolicy};
use blockfed_nn::Sgd;
use blockfed_report::{fmt_acc, Table};
use blockfed_sim::RngHub;

use crate::{decentralized_scenario, ModelSel, PreparedData};

/// The attack suite swept by both sub-studies.
pub fn attack_suite() -> Vec<Attack> {
    vec![
        Attack::Scale { factor: 50.0 },
        Attack::SignFlip { scale: 1.0 },
        Attack::GaussianNoise { sigma: 0.5 },
        Attack::Constant { value: 0.0 },
        Attack::NanInjection { fraction: 1.0 },
    ]
}

/// One row of the on-chain poisoning study.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisoningRow {
    /// The attack peer A mounts.
    pub attack: Attack,
    /// Whether the fitness + norm gates were enabled.
    pub defended: bool,
    /// Mean final-round accuracy of the two honest peers.
    pub honest_accuracy: f64,
    /// Rounds (out of the total) in which at least one honest peer dropped
    /// the attacker's model.
    pub detected_rounds: u32,
    /// Rounds in which an honest peer's *chosen* combination still included
    /// the attacker.
    pub absorbed_rounds: u32,
    /// Whether the non-repudiation audit reproduced signed on-chain evidence
    /// binding the attacker to a poisoned artefact.
    pub evidence_ok: bool,
}

/// Output of the on-chain poisoning study.
pub struct PoisoningOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<PoisoningRow>,
}

/// Runs the decentralized system (SimpleNN) with peer A compromised, for every
/// attack × {undefended, defended} arm.
pub fn run_poisoning(data: &PreparedData) -> PoisoningOutput {
    let mut rows = Vec::new();
    for attack in attack_suite() {
        for defended in [false, true] {
            rows.push(poisoning_arm(data, attack.clone(), defended));
        }
    }
    let mut table = Table::new(
        "Poisoning — attacks on the fully coupled system (peer A compromised)",
        &[
            "Attack",
            "Defended",
            "Honest acc",
            "Detected rounds",
            "Absorbed rounds",
            "Evidence",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.attack.to_string(),
            if r.defended { "fitness+norm" } else { "none" }.to_string(),
            fmt_acc(r.honest_accuracy),
            r.detected_rounds.to_string(),
            r.absorbed_rounds.to_string(),
            if r.evidence_ok {
                "signed+anchored"
            } else {
                "MISSING"
            }
            .to_string(),
        ]);
    }
    PoisoningOutput { table, rows }
}

fn poisoning_arm(data: &PreparedData, attack: Attack, defended: bool) -> PoisoningRow {
    let sel = ModelSel::Simple;
    let mut spec = decentralized_scenario(data, sel, WaitPolicy::All, None)
        .named(format!(
            "poisoning-{attack}-{}",
            if defended { "defended" } else { "open" }
        ))
        .adversary(Adversary::new(ClientId(0), attack.clone()));
    if defended {
        // Slightly above chance on the peer's own test data; and a loose
        // cohort-norm gate. Both mirror §III's "ignored" semantics.
        spec = spec
            .fitness_threshold(1.2 / data.profile.synth.num_classes as f64)
            .norm_z_threshold(1.2);
    }
    let mut factory = data.model_factory(sel);
    let run = spec.run_with(data.shards(sel), data.peer_tests(sel), &mut *factory);

    let honest_accuracy = (1..3).map(|p| run.final_accuracy(p)).sum::<f64>() / 2.0;
    let mut detected = std::collections::BTreeSet::new();
    let mut absorbed = std::collections::BTreeSet::new();
    for peer in 1..3 {
        for r in &run.peer_records[peer] {
            if r.dropped.iter().any(|d| d.starts_with("A:")) {
                detected.insert(r.round);
            }
            if r.chosen.split(',').any(|c| c == "A") {
                absorbed.insert(r.round);
            }
        }
    }
    // Non-repudiation: every poisoned submission must still be provably A's.
    // The attack mutated the params before signing, so the evidence chain
    // (signature → tx → merkle root → PoW block) pins A to the artefact.
    let attacker_audits: Vec<_> = run
        .audits
        .iter()
        .filter(|a| a.client == ClientId(0))
        .collect();
    let evidence_ok = !attacker_audits.is_empty() && attacker_audits.iter().all(|a| a.verified);

    PoisoningRow {
        attack,
        defended,
        honest_accuracy,
        detected_rounds: detected.len() as u32,
        absorbed_rounds: absorbed.len() as u32,
        evidence_ok,
    }
}

/// One row of the robust-estimator study.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// The aggregation rule.
    pub rule: RobustRule,
    /// The attack mounted by one of six clients (`None` = no attack).
    pub attack: Option<Attack>,
    /// Final global accuracy on the held-out test set.
    pub final_accuracy: f64,
    /// Whether training collapsed before the last round: a poisoned global
    /// drove *every* client's subsequent local training to non-finite
    /// parameters, so no further aggregation was possible (the fate of an
    /// undefended FedAvg under a strong boosting attack).
    pub diverged: bool,
}

/// Output of the robust-estimator study.
pub struct RobustnessOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<RobustnessRow>,
}

/// The rule set compared: Krum's `n ≥ 2f+3` needs six clients at `f = 1`.
pub fn robust_rules() -> Vec<RobustRule> {
    vec![
        RobustRule::FedAvg,
        RobustRule::Krum { f: 1 },
        RobustRule::MultiKrum { f: 1, m: 3 },
        RobustRule::TrimmedMean { trim: 1 },
        RobustRule::Median,
        RobustRule::ClippedMean { max_norm: 10.0 },
    ]
}

/// Chain-free robust-aggregation comparison: six clients, client 0 poisoned,
/// every rule × every attack (plus a clean control), SimpleNN.
pub fn run_robustness(data: &PreparedData) -> RobustnessOutput {
    let p = &data.profile;
    let hub = RngHub::new(p.seed ^ 0xB0B);
    let mut part_rng = hub.stream("robust-partition");
    // Re-partition the training pool across six clients.
    let merged = {
        let mut all = data.train_shards[0].clone();
        for s in &data.train_shards[1..] {
            all = all.concat(s);
        }
        all
    };
    let shards = partition_dataset(
        &merged,
        6,
        Partition::DirichletLabelSkew { alpha: p.alpha },
        &mut part_rng,
    );
    let test = data.test(ModelSel::Simple);
    let batcher = Batcher::new(p.batch_size);
    let rounds = p.rounds.min(5);

    let mut attacks: Vec<Option<Attack>> = vec![None];
    attacks.extend(attack_suite().into_iter().map(Some));

    let mut rows = Vec::new();
    for rule in robust_rules() {
        for attack in &attacks {
            let mut factory = data.model_factory(ModelSel::Simple);
            let mut global = factory();
            let mut global_params = global.params_flat();
            let mut train_rng = hub.indexed_stream("robust-train", rows.len() as u64);
            let mut attack_rng = hub.indexed_stream("robust-attack", rows.len() as u64);
            let mut diverged = false;
            for round in 1..=rounds {
                let mut updates = Vec::with_capacity(shards.len());
                for (i, shard) in shards.iter().enumerate() {
                    let mut model = factory();
                    model.set_params_flat(&global_params);
                    let mut opt = Sgd::new(data.lr(ModelSel::Simple), p.momentum);
                    model.train_epochs_maybe_par(
                        p.batch_parallel,
                        shard,
                        p.local_epochs,
                        &batcher,
                        &mut opt,
                        &mut train_rng,
                    );
                    let mut update =
                        ModelUpdate::new(ClientId(i), round, model.params_flat(), shard.len());
                    if i == 0 {
                        if let Some(a) = attack {
                            a.apply(&mut update, &mut attack_rng);
                        }
                    }
                    updates.push(update);
                }
                // Malformed updates are screened before estimation, exactly as
                // the on-chain path does.
                let finite: Vec<&ModelUpdate> = updates.iter().filter(|u| u.is_finite()).collect();
                // A sufficiently poisoned global can drive every client's next
                // training round to NaN (or below a rule's minimum cohort):
                // record the collapse instead of pretending the run finished.
                match rule.apply(&finite) {
                    Ok(next) if next.iter().all(|p| p.is_finite()) => global_params = next,
                    _ => {
                        diverged = true;
                        break;
                    }
                }
            }
            global.set_params_flat(&global_params);
            let final_accuracy = global.evaluate(test).accuracy;
            rows.push(RobustnessRow {
                rule,
                attack: attack.clone(),
                final_accuracy,
                diverged,
            });
        }
    }

    let mut table = Table::new(
        "Robust aggregation — six clients, client 0 poisoned",
        &["Rule", "Attack", "Final acc", "Diverged"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.rule.to_string(),
            r.attack
                .as_ref()
                .map_or("none (clean)".to_string(), ToString::to_string),
            fmt_acc(r.final_accuracy),
            if r.diverged {
                "COLLAPSED".to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    RobustnessOutput { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, Profile};

    #[test]
    fn poisoning_matrix_shape_and_evidence() {
        let data = prepare(Profile::tiny());
        let out = run_poisoning(&data);
        // 5 attacks × {undefended, defended}.
        assert_eq!(out.rows.len(), 10);
        for r in &out.rows {
            assert!(
                r.evidence_ok,
                "evidence missing for {} defended={}",
                r.attack, r.defended
            );
            assert!((0.0..=1.0).contains(&r.honest_accuracy));
        }
    }

    #[test]
    fn defended_arms_detect_blatant_attacks() {
        let data = prepare(Profile::tiny());
        let out = run_poisoning(&data);
        let find = |attack: &Attack, defended: bool| {
            out.rows
                .iter()
                .find(|r| &r.attack == attack && r.defended == defended)
                .expect("row exists")
        };
        // Malformed payloads are screened even without gates.
        let nan = Attack::NanInjection { fraction: 1.0 };
        assert!(find(&nan, false).detected_rounds > 0);
        assert!(find(&nan, true).detected_rounds > 0);
        assert_eq!(find(&nan, true).absorbed_rounds, 0);
        // A 50x boost trips the norm gate whenever defences are on.
        let scale = Attack::Scale { factor: 50.0 };
        assert!(find(&scale, true).detected_rounds > 0);
        assert_eq!(find(&scale, true).absorbed_rounds, 0);
    }

    #[test]
    fn robustness_rules_shield_against_boosting() {
        let data = prepare(Profile::tiny());
        let out = run_robustness(&data);
        // 6 rules × (1 clean + 5 attacks).
        assert_eq!(out.rows.len(), 36);
        for r in &out.rows {
            assert!(
                (0.0..=1.0).contains(&r.final_accuracy),
                "{} under {:?}: {}",
                r.rule,
                r.attack,
                r.final_accuracy
            );
        }
        let acc = |rule: RobustRule, attack: &Option<Attack>| {
            out.rows
                .iter()
                .find(|r| r.rule == rule && &r.attack == attack)
                .expect("row")
                .final_accuracy
        };
        let boost = Some(Attack::Scale { factor: 50.0 });
        // The robust estimators must beat plain FedAvg under the boost attack.
        let fedavg = acc(RobustRule::FedAvg, &boost);
        assert!(acc(RobustRule::Median, &boost) > fedavg, "median {fedavg}");
        assert!(acc(RobustRule::TrimmedMean { trim: 1 }, &boost) > fedavg);
        assert!(acc(RobustRule::Krum { f: 1 }, &boost) > fedavg);
        // And they must never collapse to NaN training (FedAvg may).
        for r in &out.rows {
            if r.rule != RobustRule::FedAvg {
                assert!(!r.diverged, "{} collapsed under {:?}", r.rule, r.attack);
            }
        }
    }
}
