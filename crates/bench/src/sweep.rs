//! Seed-sweep ablation of the trade-off result.
//!
//! Every decentralized arm of the sweep runs through the `blockfed-scenario`
//! engine (see [`crate::decentralized_scenario`]): the per-seed trade-off is
//! a declarative spec lowered and executed per arm, so the ablation's shape
//! is exactly a scenario matrix varied along the seed axis.
//!
//! DESIGN.md's determinism note: every run is bit-for-bit reproducible from
//! one seed, so the cheap robustness check is to re-run the headline
//! trade-off across seeds and report mean ± std. If the "async loses only a
//! little accuracy but waits much less" shape held for a single lucky seed,
//! it dies here; if it is real, the deltas keep their sign and magnitude.

use blockfed_fl::WaitPolicy;
use blockfed_nn::ModelKind;
use blockfed_report::{summarize, Stats, Table};

use crate::{prepare, run_tradeoff, Profile};

/// Aggregated trade-off outcome for one (model, policy) arm across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Which model.
    pub model: ModelKind,
    /// The wait policy evaluated.
    pub policy: WaitPolicy,
    /// Final accuracy across seeds.
    pub accuracy: Stats,
    /// Accuracy delta vs wait-all (percentage points) across seeds.
    pub delta_pp: Stats,
    /// Mean aggregation wait (seconds) across seeds.
    pub wait_secs: Stats,
}

/// Output of the seed sweep.
pub struct SweepOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<SweepRow>,
}

/// Re-runs the trade-off experiment once per seed (data regenerated and
/// repartitioned per seed) and aggregates.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_tradeoff_sweep(base: &Profile, seeds: &[u64]) -> SweepOutput {
    assert!(!seeds.is_empty(), "need at least one seed");
    // Collect per-arm series keyed by (model, policy) in first-seen order.
    let mut keys: Vec<(ModelKind, WaitPolicy)> = Vec::new();
    let mut acc: Vec<Vec<f64>> = Vec::new();
    let mut delta: Vec<Vec<f64>> = Vec::new();
    let mut wait: Vec<Vec<f64>> = Vec::new();
    for &seed in seeds {
        let data = prepare(base.clone().with_seed(seed));
        let out = run_tradeoff(&data);
        for row in out.rows {
            let key = (row.model, row.policy);
            let idx = keys.iter().position(|k| *k == key).unwrap_or_else(|| {
                keys.push(key);
                acc.push(Vec::new());
                delta.push(Vec::new());
                wait.push(Vec::new());
                keys.len() - 1
            });
            acc[idx].push(row.final_accuracy);
            delta[idx].push(row.accuracy_delta_pp);
            wait[idx].push(row.mean_wait_secs);
        }
    }

    let rows: Vec<SweepRow> = keys
        .iter()
        .enumerate()
        .map(|(i, &(model, policy))| SweepRow {
            model,
            policy,
            accuracy: summarize(&acc[i]).expect("non-empty seeds"),
            delta_pp: summarize(&delta[i]).expect("non-empty seeds"),
            wait_secs: summarize(&wait[i]).expect("non-empty seeds"),
        })
        .collect();

    let mut table = Table::new(
        format!("Trade-off seed sweep — {} seeds, mean ± std", seeds.len()),
        &["Model", "Policy", "Final acc", "Δacc (pp)", "Mean wait (s)"],
    );
    for r in &rows {
        table.row_owned(vec![
            r.model.to_string(),
            r.policy.to_string(),
            format!("{:.4} ± {:.4}", r.accuracy.mean, r.accuracy.std),
            format!("{:+.2} ± {:.2}", r.delta_pp.mean, r.delta_pp.std),
            format!("{:.2} ± {:.2}", r.wait_secs.mean, r.wait_secs.std),
        ]);
    }
    SweepOutput { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_aggregates_across_seeds() {
        let out = run_tradeoff_sweep(&Profile::tiny(), &[1, 2]);
        // 2 models × 3 policies.
        assert_eq!(out.rows.len(), 6);
        for r in &out.rows {
            assert_eq!(r.accuracy.n, 2);
            assert!((0.0..=1.0).contains(&r.accuracy.mean));
            assert!(r.wait_secs.mean >= 0.0);
        }
        // Wait-all is the delta baseline: zero across all seeds.
        for r in out.rows.iter().filter(|r| r.policy == WaitPolicy::All) {
            assert_eq!(r.delta_pp.mean, 0.0);
            assert_eq!(r.delta_pp.std, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "need at least one seed")]
    fn empty_seeds_rejected() {
        let _ = run_tradeoff_sweep(&Profile::tiny(), &[]);
    }
}
