//! The experiment harness: everything needed to regenerate the paper's
//! Tables I–IV and Figures 3–4, plus the trade-off, chain-performance and
//! contention studies. Used by the `experiments` binary and the criterion
//! benches.

pub mod asyncopt;
pub mod poisoning;
pub mod retarget_study;
pub mod sweep;

pub use asyncopt::{run_asyncopt, AsyncOptOutput};
pub use poisoning::{run_poisoning, run_robustness, PoisoningOutput, RobustnessOutput};
pub use retarget_study::{run_retarget, RetargetOutput};
pub use sweep::{run_tradeoff_sweep, SweepOutput};

use blockfed_core::{ComputeProfile, DecentralizedConfig, DecentralizedRun};
use blockfed_data::{partition_dataset, Dataset, Partition, SynthCifar, SynthCifarConfig};
use blockfed_fl::{ClientId, Strategy, VanillaFl, VanillaFlConfig, VanillaRun, WaitPolicy};
use blockfed_net::LinkSpec;
use blockfed_nn::{EffNetLite, EffNetLiteConfig, ModelKind, Sequential, SimpleNnConfig};
use blockfed_report::{fmt_acc, LinePlot, Table};
use blockfed_scenario::ScenarioSpec;
use blockfed_sim::RngHub;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Display name.
    pub name: &'static str,
    /// Dataset generator configuration.
    pub synth: SynthCifarConfig,
    /// SimpleNN architecture.
    pub simple: SimpleNnConfig,
    /// EfficientNet-B0 stand-in architecture.
    pub effnet: EffNetLiteConfig,
    /// Communication rounds.
    pub rounds: u32,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for the from-scratch model.
    pub lr_simple: f32,
    /// Learning rate for the transfer head.
    pub lr_head: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Dirichlet label-skew concentration across the three clients.
    pub alpha: f64,
    /// Master seed.
    pub seed: u64,
    /// Run every local-training loop batch-parallel
    /// (`blockfed_nn::Sequential::par_train_epochs`). Bit-identical to the
    /// sequential loop, so tables and figures never depend on it; it only
    /// buys host wall-clock on multicore machines.
    pub batch_parallel: bool,
}

impl Profile {
    /// The default profile: paper-scale protocol (3 clients, 10 rounds,
    /// 5 epochs, ~62 K-parameter SimpleNN) with a backbone width that keeps a
    /// full regeneration to a couple of minutes.
    pub fn quick() -> Self {
        Profile {
            name: "quick",
            synth: SynthCifarConfig::default(),
            simple: SimpleNnConfig::paper(),
            effnet: EffNetLiteConfig::quick(),
            rounds: 10,
            local_epochs: 5,
            batch_size: 32,
            lr_simple: 0.008,
            lr_head: 0.08,
            momentum: 0.9,
            alpha: 0.8,
            seed: 42,
            batch_parallel: true,
        }
    }

    /// The paper-scale profile: the full 5.3 M-parameter (21.2 MB) backbone.
    pub fn full() -> Self {
        Profile {
            name: "full",
            effnet: EffNetLiteConfig::paper(),
            ..Profile::quick()
        }
    }

    /// A miniature profile for tests and criterion benches.
    pub fn tiny() -> Self {
        let synth = SynthCifarConfig::tiny();
        Profile {
            name: "tiny",
            simple: SimpleNnConfig::tiny(synth.feature_dim, synth.num_classes),
            effnet: EffNetLiteConfig::tiny(synth.feature_dim, synth.num_classes),
            synth,
            rounds: 3,
            local_epochs: 2,
            batch_size: 16,
            lr_simple: 0.1,
            lr_head: 0.1,
            momentum: 0.9,
            alpha: 0.8,
            seed: 42,
            batch_parallel: false,
        }
    }

    /// Overrides the seed (for seed-sweep ablations).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Which of the paper's two models to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSel {
    /// The from-scratch SimpleNN.
    Simple,
    /// The transfer-learned Efficient-B0 stand-in.
    EffNet,
}

impl ModelSel {
    /// The display name used in the paper's tables.
    pub fn kind(self) -> ModelKind {
        match self {
            ModelSel::Simple => ModelKind::SimpleNn,
            ModelSel::EffNet => ModelKind::EffNetLite,
        }
    }
}

/// Datasets and pretrained components shared by all experiments of a profile.
pub struct PreparedData {
    /// The profile that produced this data.
    pub profile: Profile,
    /// Per-client training shards (raw feature space).
    pub train_shards: Vec<Dataset>,
    /// The full held-out test set (the aggregator's selection set).
    pub global_test: Dataset,
    /// Per-peer test sets (disjoint thirds of a second held-out draw).
    pub peer_tests: Vec<Dataset>,
    /// The pretrained, frozen backbone.
    pub effnet: EffNetLite,
    /// Training shards in backbone-feature space (head training).
    pub head_shards: Vec<Dataset>,
    /// Global test set in feature space.
    pub head_global_test: Dataset,
    /// Per-peer test sets in feature space.
    pub head_peer_tests: Vec<Dataset>,
}

/// Generates datasets, partitions them across the three clients, and
/// pretrains + freezes the backbone — one call shared by every experiment.
pub fn prepare(profile: Profile) -> PreparedData {
    let hub = RngHub::new(profile.seed);
    let gen = SynthCifar::new(profile.synth.clone());
    let (train, global_test) = gen.generate(profile.seed);
    // A second, disjoint draw provides per-peer test data.
    let mut peer_draw = hub.stream("peer-tests");
    let peer_pool = gen.sample(&mut peer_draw, profile.synth.test_per_class);
    let third = peer_pool.len() / 3;
    let peer_tests: Vec<Dataset> = (0..3)
        .map(|i| {
            let idx: Vec<usize> = (i * third..(i + 1) * third).collect();
            peer_pool.subset(&idx)
        })
        .collect();

    let mut part_rng = hub.stream("partition");
    let train_shards = partition_dataset(
        &train,
        3,
        Partition::DirichletLabelSkew {
            alpha: profile.alpha,
        },
        &mut part_rng,
    );

    // "Pretrained on ImageNet" analog: a disjoint draw from the same
    // observation process pretrains the backbone, which is then frozen.
    let mut pretext_rng = hub.stream("pretext");
    let pretext = gen.sample(&mut pretext_rng, profile.synth.train_per_class);
    let mut bb_rng = hub.stream("backbone");
    let mut effnet = EffNetLite::pretrained(profile.effnet, &pretext, &mut bb_rng);

    let head_shards = train_shards
        .iter()
        .map(|s| effnet.extract_features(s))
        .collect();
    let head_global_test = effnet.extract_features(&global_test);
    let head_peer_tests = peer_tests
        .iter()
        .map(|s| effnet.extract_features(s))
        .collect();

    PreparedData {
        profile,
        train_shards,
        global_test,
        peer_tests,
        effnet,
        head_shards,
        head_global_test,
        head_peer_tests,
    }
}

impl PreparedData {
    /// A model factory for the selected architecture, seeded from the profile.
    pub fn model_factory(&self, sel: ModelSel) -> Box<dyn FnMut() -> Sequential> {
        let hub = RngHub::new(self.profile.seed);
        match sel {
            ModelSel::Simple => {
                let cfg = self.profile.simple;
                let mut rng = hub.stream("arch-simple");
                Box::new(move || cfg.build(&mut rng))
            }
            ModelSel::EffNet => {
                let width = self.profile.effnet.width;
                let classes = self.profile.effnet.num_classes;
                let mut rng = hub.stream("arch-head");
                Box::new(move || {
                    let mut head = Sequential::new();
                    head.push(blockfed_nn::Linear::new(&mut rng, width, classes));
                    head
                })
            }
        }
    }

    /// Learning rate for the selected architecture.
    pub fn lr(&self, sel: ModelSel) -> f32 {
        match sel {
            ModelSel::Simple => self.profile.lr_simple,
            ModelSel::EffNet => self.profile.lr_head,
        }
    }

    /// Training shards in the selected model's input space.
    pub fn shards(&self, sel: ModelSel) -> &[Dataset] {
        match sel {
            ModelSel::Simple => &self.train_shards,
            ModelSel::EffNet => &self.head_shards,
        }
    }

    /// The global test set in the selected model's input space.
    pub fn test(&self, sel: ModelSel) -> &Dataset {
        match sel {
            ModelSel::Simple => &self.global_test,
            ModelSel::EffNet => &self.head_global_test,
        }
    }

    /// Per-peer test sets in the selected model's input space.
    pub fn peer_tests(&self, sel: ModelSel) -> &[Dataset] {
        match sel {
            ModelSel::Simple => &self.peer_tests,
            ModelSel::EffNet => &self.head_peer_tests,
        }
    }

    /// The on-chain payload size of the selected model's artifact.
    pub fn payload_bytes(&self, sel: ModelSel) -> u64 {
        match sel {
            ModelSel::Simple => self.profile.simple.payload_bytes(),
            ModelSel::EffNet => self.profile.effnet.payload_bytes(),
        }
    }
}

/// Runs the Vanilla (centralized) FL baseline for one model and strategy.
pub fn vanilla_run(data: &PreparedData, sel: ModelSel, strategy: Strategy) -> VanillaRun {
    let p = &data.profile;
    let config = VanillaFlConfig {
        rounds: p.rounds,
        local_epochs: p.local_epochs,
        batch_size: p.batch_size,
        lr: data.lr(sel),
        momentum: p.momentum,
        strategy,
        batch_parallel: p.batch_parallel,
    };
    // All clients evaluate the distributed global model on the shared test
    // data, as in Table I (identical per-client rows).
    let tests = vec![
        data.test(sel).clone(),
        data.test(sel).clone(),
        data.test(sel).clone(),
    ];
    let driver = VanillaFl::new(config, data.shards(sel), &tests, data.test(sel));
    let mut factory = data.model_factory(sel);
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0x5A5A);
    driver.run(&mut *factory, &mut rng)
}

/// Runs the decentralized (fully coupled blockchain) experiment for one model
/// and wait policy, with homogeneous peers (the paper's three identical VMs).
pub fn decentralized_run(
    data: &PreparedData,
    sel: ModelSel,
    wait_policy: WaitPolicy,
) -> DecentralizedRun {
    decentralized_run_with_computes(data, sel, wait_policy, None)
}

/// Per-peer compute heterogeneity: one fast, one nominal, one straggling peer.
/// This is the regime where the "wait or not" question has teeth — with
/// identical peers every model arrives in the same block anyway.
pub fn straggler_profiles() -> Vec<ComputeProfile> {
    vec![
        ComputeProfile {
            train_rate: 1_100.0,
            ..ComputeProfile::paper_vm()
        },
        ComputeProfile {
            train_rate: 700.0,
            ..ComputeProfile::paper_vm()
        },
        // The straggler: slower than a block interval, so faster peers see its
        // model one or two blocks later than their own.
        ComputeProfile {
            train_rate: 100.0,
            ..ComputeProfile::paper_vm()
        },
    ]
}

/// The declarative scenario every decentralized experiment starts from: the
/// paper's protocol (10 rounds × 5 epochs), ~13 s blocks, LAN links, three
/// peers. Experiments refine the spec (adversaries, gates, computes) before
/// lowering it; the ad-hoc config assembly this harness used to do now lives
/// in `blockfed-scenario`.
pub fn decentralized_scenario(
    data: &PreparedData,
    sel: ModelSel,
    wait_policy: WaitPolicy,
    per_peer_compute: Option<Vec<ComputeProfile>>,
) -> ScenarioSpec {
    let p = &data.profile;
    ScenarioSpec::new("paper-decentralized", 3)
        .rounds(p.rounds)
        .local_epochs(p.local_epochs)
        .batch_size(p.batch_size)
        .lr(data.lr(sel))
        .momentum(p.momentum)
        .wait(wait_policy)
        .strategy(Strategy::Consider)
        .payload_bytes(data.payload_bytes(sel))
        .difficulty(3_000_000)
        .computes(per_peer_compute.unwrap_or_else(|| vec![ComputeProfile::paper_vm(); 3]))
        .batch_parallel(p.batch_parallel)
        .link(LinkSpec::lan())
        .seed(p.seed)
}

/// The lowered orchestrator configuration of [`decentralized_scenario`].
pub fn decentralized_config(
    data: &PreparedData,
    sel: ModelSel,
    wait_policy: WaitPolicy,
    per_peer_compute: Option<Vec<ComputeProfile>>,
) -> DecentralizedConfig {
    decentralized_scenario(data, sel, wait_policy, per_peer_compute).decentralized_config()
}

/// [`decentralized_run`] with optional per-peer compute profiles, executed
/// through the scenario engine against the prepared paper datasets.
pub fn decentralized_run_with_computes(
    data: &PreparedData,
    sel: ModelSel,
    wait_policy: WaitPolicy,
    per_peer_compute: Option<Vec<ComputeProfile>>,
) -> DecentralizedRun {
    let spec = decentralized_scenario(data, sel, wait_policy, per_peer_compute);
    let mut factory = data.model_factory(sel);
    spec.run_with(data.shards(sel), data.peer_tests(sel), &mut *factory)
}

/// Output of the Table I / Figure 3 regeneration.
pub struct Table1Output {
    /// The paper's Table I.
    pub table: Table,
    /// Figure 3's panels (one per model).
    pub figures: Vec<LinePlot>,
    /// Raw runs keyed `(model, strategy)`.
    pub runs: Vec<(ModelSel, Strategy, VanillaRun)>,
}

/// Regenerates **Table I** and **Figure 3**: Vanilla FL clients' test accuracy
/// under "consider" vs "not consider" for both models.
pub fn run_table1(data: &PreparedData) -> Table1Output {
    let rounds = data.profile.rounds as usize;
    let mut cols: Vec<String> = vec!["Model".into(), "Client".into(), "Params".into()];
    cols.extend((1..=rounds).map(|r| r.to_string()));
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table I — Vanilla FL: clients' test accuracy on two aggregation types",
        &col_refs,
    );
    let mut figures = Vec::new();
    let mut runs = Vec::new();

    for sel in [ModelSel::Simple, ModelSel::EffNet] {
        let mut plot = LinePlot::new(
            format!("Figure 3 ({}) — accuracy vs round", sel.kind()),
            60,
            14,
        );
        for strategy in [Strategy::Consider, Strategy::NotConsider] {
            let run = vanilla_run(data, sel, strategy);
            for client in 0..3 {
                let series = run.client_series(ClientId(client));
                let mut row = vec![
                    sel.kind().to_string(),
                    ClientId(client).to_string(),
                    strategy.to_string(),
                ];
                row.extend(series.iter().map(|a| fmt_acc(*a)));
                table.row_owned(row);
                if client == 0 {
                    plot.series(format!("{strategy}"), &series);
                }
            }
            runs.push((sel, strategy, run));
        }
        figures.push(plot);
    }
    Table1Output {
        table,
        figures,
        runs,
    }
}

/// Output of the Tables II–IV / Figure 4 regeneration.
pub struct Tables234Output {
    /// Tables II, III, IV (clients A, B, C).
    pub tables: Vec<Table>,
    /// Figure 4's panels (client × model).
    pub figures: Vec<LinePlot>,
    /// The raw decentralized runs keyed by model.
    pub runs: Vec<(ModelSel, DecentralizedRun)>,
}

/// The row labels of the paper's per-client tables, owner-first.
pub fn paper_combo_labels(owner: usize) -> Vec<String> {
    let me = ClientId(owner);
    let others: Vec<ClientId> = (0..3).filter(|&i| i != owner).map(ClientId).collect();
    vec![
        format!("{me}"),
        format!("{me},{}", others[0]),
        format!("{me},{}", others[1]),
        format!("{},{}", others[0], others[1]),
        "A,B,C".to_string(),
    ]
}

/// Regenerates **Tables II–IV** and **Figure 4**: per-peer accuracy of every
/// model combination across rounds in the blockchain-based decentralized
/// setting.
pub fn run_tables234(data: &PreparedData) -> Tables234Output {
    let rounds = data.profile.rounds as usize;
    let mut runs = Vec::new();
    for sel in [ModelSel::Simple, ModelSel::EffNet] {
        runs.push((sel, decentralized_run(data, sel, WaitPolicy::All)));
    }

    let mut tables = Vec::new();
    let mut figures = Vec::new();
    for client in 0..3 {
        let mut cols: Vec<String> = vec!["Model".into(), "Params from".into()];
        cols.extend((1..=rounds).map(|r| r.to_string()));
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let numeral = ["II", "III", "IV"][client];
        let mut table = Table::new(
            format!(
                "Table {numeral} — Blockchain-based FL: accuracy per model combination — Client {}",
                ClientId(client)
            ),
            &col_refs,
        );
        for (sel, run) in &runs {
            let mut plot = LinePlot::new(
                format!(
                    "Figure 4 (Client {}, {}) — accuracy vs round",
                    ClientId(client),
                    sel.kind()
                ),
                60,
                14,
            );
            for label in paper_combo_labels(client) {
                let series: Vec<f64> = run.peer_records[client]
                    .iter()
                    .map(|r| {
                        r.accuracy_of(&label)
                            // Normalize alternate orderings of the full set.
                            .or_else(|| full_set_fallback(r, &label))
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                let mut row = vec![sel.kind().to_string(), label.clone()];
                row.extend(series.iter().map(|a| {
                    if a.is_nan() {
                        "-".to_string()
                    } else {
                        fmt_acc(*a)
                    }
                }));
                table.row_owned(row);
                plot.series(label, &series);
            }
            figures.push(plot);
        }
        tables.push(table);
    }
    Tables234Output {
        tables,
        figures,
        runs,
    }
}

fn full_set_fallback(record: &blockfed_core::PeerRoundRecord, label: &str) -> Option<f64> {
    if label != "A,B,C" {
        return None;
    }
    // The owner-first labelling writes the full set e.g. "B,A,C".
    record
        .combos
        .iter()
        .find(|(l, _)| l.split(',').count() == 3)
        .map(|(_, a)| *a)
}

/// One row of the trade-off study.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffRow {
    /// Which model.
    pub model: ModelKind,
    /// The wait policy evaluated.
    pub policy: WaitPolicy,
    /// Mean final-round accuracy across the three peers.
    pub final_accuracy: f64,
    /// Accuracy delta versus wait-all (percentage points).
    pub accuracy_delta_pp: f64,
    /// Mean per-round aggregation wait (seconds).
    pub mean_wait_secs: f64,
    /// Virtual time when all peers finished (seconds).
    pub makespan_secs: f64,
}

/// Output of the trade-off study.
pub struct TradeoffOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<TradeoffRow>,
}

/// Regenerates the paper's title question as a measurement: final accuracy
/// versus aggregation wait for `wait-k ∈ {all, 2, 1}` on both models.
pub fn run_tradeoff(data: &PreparedData) -> TradeoffOutput {
    let mut rows = Vec::new();
    for sel in [ModelSel::Simple, ModelSel::EffNet] {
        let mut baseline_acc = None;
        for policy in [
            WaitPolicy::All,
            WaitPolicy::FirstK(2),
            WaitPolicy::FirstK(1),
        ] {
            let run =
                decentralized_run_with_computes(data, sel, policy, Some(straggler_profiles()));
            let final_accuracy = (0..3).map(|p| run.final_accuracy(p)).sum::<f64>() / 3.0;
            let baseline = *baseline_acc.get_or_insert(final_accuracy);
            rows.push(TradeoffRow {
                model: sel.kind(),
                policy,
                final_accuracy,
                accuracy_delta_pp: (final_accuracy - baseline) * 100.0,
                mean_wait_secs: run.mean_wait().as_secs_f64(),
                makespan_secs: run.finished_at.as_secs_f64(),
            });
        }
    }
    let mut table = Table::new(
        "Trade-off — wait or not to wait: accuracy vs aggregation latency",
        &[
            "Model",
            "Policy",
            "Final acc",
            "Δacc (pp)",
            "Mean wait (s)",
            "Makespan (s)",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.model.to_string(),
            r.policy.to_string(),
            fmt_acc(r.final_accuracy),
            format!("{:+.2}", r.accuracy_delta_pp),
            format!("{:.2}", r.mean_wait_secs),
            format!("{:.1}", r.makespan_secs),
        ]);
    }
    TradeoffOutput { table, rows }
}

/// One row of the chain-performance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPerfRow {
    /// Number of participants submitting and mining.
    pub participants: usize,
    /// Declared model payload per transaction (bytes).
    pub payload_bytes: u64,
    /// Total successful submissions per virtual second.
    pub throughput_tps: f64,
    /// Throughput each participant observes.
    pub per_peer_tps: f64,
    /// Mean block interval (seconds).
    pub block_interval_secs: f64,
    /// Mean gas per block.
    pub gas_per_block: f64,
}

/// Output of the chain-performance sweep.
pub struct ChainPerfOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<ChainPerfRow>,
}

/// The chain-only workload behind §II-A2's accepted findings: participants
/// submit model-sized transactions while mining; doubling the participants
/// roughly halves the per-peer throughput (Peng et al.), and big payloads
/// stretch gas and block intervals.
pub fn run_chainperf(
    participant_counts: &[usize],
    payloads: &[u64],
    txs_per_peer: usize,
    seed: u64,
) -> ChainPerfOutput {
    run_chainperf_with_gas_limit(participant_counts, payloads, txs_per_peer, seed, 25_000_000)
}

/// [`run_chainperf`] with an explicit block gas limit. The limit is what makes
/// chain capacity the bottleneck: the block cadence self-stabilizes at ~13 s
/// via difficulty (independent of the miner count), so total throughput is
/// capacity-bound and *per-peer* throughput halves when participants double.
pub fn run_chainperf_with_gas_limit(
    participant_counts: &[usize],
    payloads: &[u64],
    txs_per_peer: usize,
    seed: u64,
    block_gas_limit: u64,
) -> ChainPerfOutput {
    use blockfed_chain::{pow, Blockchain, GenesisSpec, Mempool, SealPolicy};
    use blockfed_crypto::KeyPair;
    use blockfed_vm::{BlockfedRuntime, NativeContract, RegistryCall, NATIVE_REGISTRY_CODE};

    let mut rows = Vec::new();
    for &payload in payloads {
        for &n in participant_counts {
            let hub = RngHub::new(seed ^ ((n as u64) << 8) ^ payload);
            let mut key_rng = hub.stream("keys");
            let keys: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate(&mut key_rng)).collect();
            let addrs: Vec<_> = keys.iter().map(KeyPair::address).collect();
            let mut reg = [0u8; 20];
            reg[0] = 0xFE;
            let registry = blockfed_crypto::H160::from_bytes(reg);
            let per_peer_hashrate = 80_000.0;
            // Equilibrium difficulty for ~13 s blocks at this miner count
            // (what the retarget rule would converge to anyway).
            let difficulty = (13.0 * per_peer_hashrate * n as f64) as u128;
            let mut spec = GenesisSpec::with_accounts(&addrs, u64::MAX / 4)
                .with_difficulty(difficulty)
                .with_code(registry, NATIVE_REGISTRY_CODE.to_vec());
            spec.gas_limit = block_gas_limit;
            let mut chain = Blockchain::with_seal_policy(&spec, SealPolicy::Simulated);
            let mut runtime = BlockfedRuntime::new();
            runtime.register_native(registry, NativeContract::FlRegistry);
            let mut mempool = Mempool::new();

            // All registrations + submissions enter the (shared) pool up
            // front; miners drain it. Per-peer hash rate is fixed, so more
            // peers mine faster but carry proportionally more load.
            let state0 = chain.state().clone();
            for (i, k) in keys.iter().enumerate() {
                mempool
                    .insert(blockfed_core::register_tx(registry, k, 0), &state0)
                    .expect("valid registration");
                for t in 0..txs_per_peer {
                    let call = RegistryCall::SubmitModel {
                        round: t as u32,
                        model_hash: blockfed_crypto::sha256::sha256(
                            format!("m-{i}-{t}").as_bytes(),
                        ),
                        payload_bytes: payload,
                        sample_count: 100,
                    };
                    let tx = blockfed_chain::Transaction::call(
                        k.address(),
                        registry,
                        call.encode(),
                        1 + t as u64,
                    )
                    .with_payload_bytes(payload)
                    .with_gas_limit(100_000_000)
                    .signed(k);
                    mempool.insert(tx, &state0).expect("valid submission");
                }
            }
            let total_txs = n * (1 + txs_per_peer);

            let mut mine_rng = hub.stream("mining");
            let mut now_ns: u64 = 0;
            let mut included = 0usize;
            let mut blocks = 0usize;
            let mut gas_total: u64 = 0;
            while included < total_txs {
                let difficulty = chain.head_block().header.difficulty;
                let delay = pow::sample_mining_delay(
                    difficulty,
                    per_peer_hashrate * n as f64,
                    &mut mine_rng,
                );
                now_ns = now_ns
                    .saturating_add(delay.as_nanos())
                    .max(chain.head_block().header.timestamp_ns + 1);
                let state = chain.state().clone();
                mempool.prune(&state);
                let gas_limit = chain.head_block().header.gas_limit;
                // Real chains cap block size; 16 txs/block keeps capacity (not
                // single-block quantization) the binding constraint.
                let txs = mempool.select(&state, gas_limit, 16);
                let block = chain.build_candidate(addrs[blocks % n], txs, now_ns, &mut runtime);
                gas_total += block.header.gas_used;
                chain.import(block, &mut runtime).expect("self-built block");
                let state = chain.state().clone();
                mempool.prune(&state);
                included = total_txs - mempool.len();
                blocks += 1;
                assert!(blocks < 100_000, "chainperf livelock");
            }
            let makespan = now_ns as f64 / 1e9;
            let submissions = (n * txs_per_peer) as f64;
            let throughput = submissions / makespan;
            rows.push(ChainPerfRow {
                participants: n,
                payload_bytes: payload,
                throughput_tps: throughput,
                per_peer_tps: throughput / n as f64,
                block_interval_secs: makespan / blocks as f64,
                gas_per_block: gas_total as f64 / blocks as f64,
            });
        }
    }

    let mut table = Table::new(
        "Chain performance — participants × payload sweep (§II-A2 shapes)",
        &[
            "Peers",
            "Payload",
            "TPS",
            "Per-peer TPS",
            "Block interval (s)",
            "Gas/block",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            r.participants.to_string(),
            format!("{:.1} MB", r.payload_bytes as f64 / 1e6),
            format!("{:.3}", r.throughput_tps),
            format!("{:.4}", r.per_peer_tps),
            format!("{:.2}", r.block_interval_secs),
            format!("{:.0}", r.gas_per_block),
        ]);
    }
    ChainPerfOutput { table, rows }
}

/// One row of the contention study.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionRow {
    /// The contention coefficient.
    pub contention: f64,
    /// Mean block interval (seconds).
    pub block_interval_secs: f64,
    /// Virtual completion time of the whole run (seconds).
    pub makespan_secs: f64,
    /// Mean aggregation wait (seconds).
    pub mean_wait_secs: f64,
}

/// Output of the contention study.
pub struct ContentionOutput {
    /// The rendered table.
    pub table: Table,
    /// The raw rows.
    pub rows: Vec<ContentionRow>,
}

/// The "resource exhaustion from dual tasks" study: sweep the mining⇄training
/// contention coefficient and watch block intervals and round times inflate.
pub fn run_contention(data: &PreparedData, coefficients: &[f64]) -> ContentionOutput {
    let p = &data.profile;
    let mut rows = Vec::new();
    for &c in coefficients {
        let spec = decentralized_scenario(data, ModelSel::Simple, WaitPolicy::All, None)
            .named(format!("contention-{c:.2}"))
            .rounds(p.rounds.min(3))
            .uniform_compute(ComputeProfile {
                contention: c,
                ..ComputeProfile::paper_vm()
            });
        let mut factory = data.model_factory(ModelSel::Simple);
        let run = spec.run_with(
            data.shards(ModelSel::Simple),
            data.peer_tests(ModelSel::Simple),
            &mut *factory,
        );
        rows.push(ContentionRow {
            contention: c,
            block_interval_secs: run
                .chain
                .mean_block_interval
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            makespan_secs: run.finished_at.as_secs_f64(),
            mean_wait_secs: run.mean_wait().as_secs_f64(),
        });
    }
    let mut table = Table::new(
        "Contention — mining vs training resource exhaustion",
        &[
            "Contention",
            "Block interval (s)",
            "Makespan (s)",
            "Mean wait (s)",
        ],
    );
    for r in &rows {
        table.row_owned(vec![
            format!("{:.2}", r.contention),
            format!("{:.2}", r.block_interval_secs),
            format!("{:.1}", r.makespan_secs),
            format!("{:.2}", r.mean_wait_secs),
        ]);
    }
    ContentionOutput { table, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_profile_prepares_consistently() {
        let data = prepare(Profile::tiny());
        assert_eq!(data.train_shards.len(), 3);
        assert_eq!(data.peer_tests.len(), 3);
        assert_eq!(data.head_shards.len(), 3);
        assert_eq!(data.head_shards[0].feature_dim(), data.profile.effnet.width);
        // Feature extraction preserves labels.
        assert_eq!(data.head_shards[0].labels(), data.train_shards[0].labels());
    }

    #[test]
    fn table1_has_twelve_rows() {
        let data = prepare(Profile::tiny());
        let out = run_table1(&data);
        // 2 models × 2 strategies × 3 clients.
        assert_eq!(out.table.len(), 12);
        assert_eq!(out.figures.len(), 2);
        assert_eq!(out.runs.len(), 4);
    }

    #[test]
    fn tables234_have_paper_rows() {
        let data = prepare(Profile::tiny());
        let out = run_tables234(&data);
        assert_eq!(out.tables.len(), 3);
        for t in &out.tables {
            // 2 models × 5 combination rows.
            assert_eq!(t.len(), 10);
        }
        assert_eq!(out.figures.len(), 6);
    }

    #[test]
    fn combo_labels_match_paper() {
        assert_eq!(
            paper_combo_labels(0),
            vec!["A", "A,B", "A,C", "B,C", "A,B,C"]
        );
        assert_eq!(
            paper_combo_labels(1),
            vec!["B", "B,A", "B,C", "A,C", "A,B,C"]
        );
        assert_eq!(
            paper_combo_labels(2),
            vec!["C", "C,A", "C,B", "A,B", "A,B,C"]
        );
    }

    #[test]
    fn tradeoff_orders_waits() {
        let data = prepare(Profile::tiny());
        let out = run_tradeoff(&data);
        assert_eq!(out.rows.len(), 6);
        // Within each model, wait-1 must not wait longer than wait-all.
        for sel in [ModelKind::SimpleNn, ModelKind::EffNetLite] {
            let waits: Vec<f64> = out
                .rows
                .iter()
                .filter(|r| r.model == sel)
                .map(|r| r.mean_wait_secs)
                .collect();
            assert!(waits[2] <= waits[0] + 1e-9, "{sel}: {waits:?}");
        }
    }

    #[test]
    fn chainperf_shapes() {
        // 21.2 MB payloads: one submission per block, so chain capacity (not
        // mining power) bounds throughput, as in the referenced measurements.
        let out = run_chainperf(&[3, 6], &[21_200_000], 4, 7);
        assert_eq!(out.rows.len(), 2);
        let three = &out.rows[0];
        let six = &out.rows[1];
        // Per-peer throughput roughly halves when participants double.
        assert!(
            six.per_peer_tps < three.per_peer_tps * 0.7,
            "3 peers {:.4} vs 6 peers {:.4}",
            three.per_peer_tps,
            six.per_peer_tps
        );
        // Total throughput stays roughly flat (capacity-bound).
        let ratio = six.throughput_tps / three.throughput_tps;
        assert!((0.5..=1.6).contains(&ratio), "total tps ratio {ratio}");
    }

    #[test]
    fn contention_inflates_times() {
        let data = prepare(Profile::tiny());
        let out = run_contention(&data, &[0.0, 0.6]);
        assert_eq!(out.rows.len(), 2);
        assert!(
            out.rows[1].makespan_secs > out.rows[0].makespan_secs,
            "contention should slow the run: {:?}",
            out.rows
        );
    }
}
