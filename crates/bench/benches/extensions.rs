//! Benches for the future-work extensions: poisoning defence arms, robust
//! aggregation rules, the FedAsync driver, and adaptive difficulty retarget.

use blockfed_bench::{decentralized_config, prepare, run_retarget, ModelSel, Profile};
use blockfed_core::Decentralized;
use blockfed_fl::robust::{clipped_mean, coordinate_median, krum, multi_krum, trimmed_mean};
use blockfed_fl::{
    Adversary, AsyncFl, AsyncFlConfig, AsyncMerger, Attack, ClientId, ModelUpdate, StalenessDecay,
    WaitPolicy,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Six 62 K-parameter updates (the paper's SimpleNN size), one an outlier.
fn cohort(dim: usize) -> Vec<ModelUpdate> {
    let mut rng = StdRng::seed_from_u64(3);
    let mut updates: Vec<ModelUpdate> = (0..5)
        .map(|i| {
            let params: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.1..0.1)).collect();
            ModelUpdate::new(ClientId(i), 1, params, 100)
        })
        .collect();
    let boosted: Vec<f32> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
    updates.push(ModelUpdate::new(ClientId(5), 1, boosted, 100));
    updates
}

fn bench_robust_rules(c: &mut Criterion) {
    let dim = 62_000;
    let updates = cohort(dim);
    let refs: Vec<&ModelUpdate> = updates.iter().collect();
    let mut g = c.benchmark_group("robust");
    g.sample_size(20);
    g.bench_function("krum_6x62k", |b| b.iter(|| krum(&refs, 1).unwrap()));
    g.bench_function("multi_krum_6x62k", |b| {
        b.iter(|| multi_krum(&refs, 1, 3).unwrap())
    });
    g.bench_function("trimmed_mean_6x62k", |b| {
        b.iter(|| trimmed_mean(&refs, 1).unwrap())
    });
    g.bench_function("median_6x62k", |b| {
        b.iter(|| coordinate_median(&refs).unwrap())
    });
    g.bench_function("clipped_mean_6x62k", |b| {
        b.iter(|| clipped_mean(&refs, 1.0).unwrap())
    });
    g.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let dim = 62_000;
    let base = cohort(dim).remove(0);
    let mut rng = StdRng::seed_from_u64(9);
    let mut g = c.benchmark_group("attack");
    g.sample_size(20);
    for attack in [
        Attack::SignFlip { scale: 1.0 },
        Attack::GaussianNoise { sigma: 0.5 },
        Attack::Scale { factor: 50.0 },
        Attack::NanInjection { fraction: 0.5 },
    ] {
        g.bench_function(format!("apply_{attack}_62k"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut u| attack.apply(&mut u, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_async_merge(c: &mut Criterion) {
    let dim = 62_000;
    let update: Vec<f32> = (0..dim).map(|i| (i % 17) as f32 / 17.0).collect();
    let mut g = c.benchmark_group("staleness");
    g.sample_size(20);
    g.bench_function("merge_62k_poly_decay", |b| {
        let mut merger =
            AsyncMerger::new(vec![0.0; dim], 0.6, StalenessDecay::Polynomial { a: 0.5 });
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 1) % 8;
            merger.merge(&update, s).unwrap()
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let data = prepare(Profile::tiny());
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    g.bench_function("poisoning_arm_defended_scale50", |b| {
        b.iter(|| {
            let mut config = decentralized_config(&data, ModelSel::Simple, WaitPolicy::All, None);
            config.adversaries = vec![Adversary::new(ClientId(0), Attack::Scale { factor: 50.0 })];
            config.fitness_threshold = Some(0.3);
            config.norm_z_threshold = Some(1.2);
            let driver = Decentralized::new(
                config,
                data.shards(ModelSel::Simple),
                data.peer_tests(ModelSel::Simple),
            );
            let mut factory = data.model_factory(ModelSel::Simple);
            driver.run(&mut *factory)
        })
    });

    g.bench_function("asyncfl_12_merges", |b| {
        b.iter(|| {
            let config = AsyncFlConfig {
                total_merges: 12,
                local_epochs: 1,
                batch_size: 16,
                lr: 0.1,
                momentum: 0.9,
                alpha: 0.6,
                decay: StalenessDecay::Polynomial { a: 0.5 },
                client_speeds: vec![8.0, 4.0, 1.0],
                eval_every: 12,
                batch_parallel: false,
            };
            let driver = AsyncFl::new(
                config,
                data.shards(ModelSel::Simple),
                data.test(ModelSel::Simple),
            );
            let mut factory = data.model_factory(ModelSel::Simple);
            let mut rng = StdRng::seed_from_u64(5);
            driver.run(&mut *factory, &mut rng)
        })
    });

    g.bench_function("retarget_shock_300_blocks", |b| b.iter(|| run_retarget(42)));
    g.finish();
}

criterion_group!(
    benches,
    bench_robust_rules,
    bench_attacks,
    bench_async_merge,
    bench_end_to_end
);
criterion_main!(benches);
