//! End-to-end benches: one per paper artefact, at reduced (tiny) scale so the
//! suite finishes quickly. The full-scale regeneration is
//! `cargo run --release -p blockfed-bench --bin experiments -- all`.

use blockfed_bench::{
    decentralized_run, prepare, run_chainperf, run_contention, run_table1, run_tradeoff,
    vanilla_run, ModelSel, Profile,
};
use blockfed_fl::{Strategy, WaitPolicy};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_paper_artifacts(c: &mut Criterion) {
    let data = prepare(Profile::tiny());
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);

    // Table I / Figure 3 constituents.
    g.bench_function("table1_vanilla_consider_simple", |b| {
        b.iter(|| vanilla_run(&data, ModelSel::Simple, Strategy::Consider))
    });
    g.bench_function("table1_vanilla_notconsider_simple", |b| {
        b.iter(|| vanilla_run(&data, ModelSel::Simple, Strategy::NotConsider))
    });
    g.bench_function("table1_vanilla_consider_effnet", |b| {
        b.iter(|| vanilla_run(&data, ModelSel::EffNet, Strategy::Consider))
    });
    g.bench_function("fig3_table1_full", |b| b.iter(|| run_table1(&data)));

    // Tables II–IV / Figure 4 constituents.
    g.bench_function("tables234_decentralized_simple", |b| {
        b.iter(|| decentralized_run(&data, ModelSel::Simple, WaitPolicy::All))
    });
    g.bench_function("tables234_decentralized_effnet", |b| {
        b.iter(|| decentralized_run(&data, ModelSel::EffNet, WaitPolicy::All))
    });

    // The wait-or-not trade-off.
    g.bench_function("tradeoff_wait1_simple", |b| {
        b.iter(|| decentralized_run(&data, ModelSel::Simple, WaitPolicy::FirstK(1)))
    });
    g.bench_function("tradeoff_full", |b| b.iter(|| run_tradeoff(&data)));

    // Chain performance + contention.
    g.bench_function("chainperf_3_and_6_peers", |b| {
        b.iter(|| run_chainperf(&[3, 6], &[253_952], 2, 7))
    });
    g.bench_function("contention_sweep", |b| {
        b.iter(|| run_contention(&data, &[0.0, 0.5]))
    });
    g.finish();
}

criterion_group!(benches, bench_paper_artifacts);
criterion_main!(benches);
