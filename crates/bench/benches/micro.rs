//! Microbenchmarks of the substrates: the kernels every experiment is built on.

use blockfed_chain::{pow, GenesisSpec, Transaction};
use blockfed_crypto::{merkle_root, sha256::sha256, KeyPair, U256};
use blockfed_fl::{fed_avg, ClientId, ModelUpdate};
use blockfed_net::{LinkSpec, Network, NodeId, Topology};
use blockfed_tensor::{matmul, Tensor};
use blockfed_vm::{asm::assemble, BlockfedRuntime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data_1k = vec![0xA5u8; 1024];
    g.bench_function("sha256_1KiB", |b| b.iter(|| sha256(black_box(&data_1k))));

    let leaves: Vec<_> = (0..256).map(|i: u32| sha256(&i.to_le_bytes())).collect();
    g.bench_function("merkle_root_256", |b| {
        b.iter(|| merkle_root(black_box(&leaves)))
    });

    let a =
        U256::from_hex("deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef").unwrap();
    let m = blockfed_crypto::secp::group_order();
    g.bench_function("u256_mul_mod", |b| {
        b.iter(|| black_box(a).mul_mod(black_box(a), m))
    });

    let key = KeyPair::generate(&mut StdRng::seed_from_u64(1));
    let msg = b"model update round 3";
    g.bench_function("schnorr_sign", |b| b.iter(|| key.sign(black_box(msg))));
    let sig = key.sign(msg);
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| key.public().verify(black_box(msg), &sig).unwrap())
    });
    g.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain");
    g.bench_function("pow_mine_d64", |b| {
        let mut nonce_start = 0u64;
        b.iter(|| {
            let mut header = blockfed_chain::Header {
                parent: sha256(b"parent"),
                number: 1,
                timestamp_ns: 1,
                miner: Default::default(),
                difficulty: 64,
                nonce: 0,
                tx_root: Default::default(),
                state_root: Default::default(),
                gas_used: 0,
                gas_limit: 1_000_000,
            };
            nonce_start = nonce_start.wrapping_add(1 << 20);
            pow::mine(&mut header, nonce_start, u64::MAX).unwrap()
        })
    });

    let key = KeyPair::generate(&mut StdRng::seed_from_u64(2));
    let spec = GenesisSpec::with_accounts(&[key.address()], u64::MAX / 4).with_difficulty(16);
    g.bench_function("block_build_and_import_10tx", |b| {
        b.iter(|| {
            let mut chain = blockfed_chain::Blockchain::with_seal_policy(
                &spec,
                blockfed_chain::SealPolicy::Simulated,
            );
            let txs: Vec<Transaction> = (0..10)
                .map(|n| Transaction::transfer(key.address(), key.address(), 1, n).signed(&key))
                .collect();
            let block =
                chain.build_candidate(key.address(), txs, 1_000, &mut blockfed_chain::NullRuntime);
            chain
                .import(block, &mut blockfed_chain::NullRuntime)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    // Sum 1..=100 in a MiniVM loop.
    let code = assemble(
        "PUSH8 100\nPUSH8 1\nSSTORE\nloop:\nJUMPDEST\nPUSH8 1\nSLOAD\nISZERO\nPUSH8 @exit\nJUMPI\nPUSH8 0\nSLOAD\nPUSH8 1\nSLOAD\nADD\nPUSH8 0\nSSTORE\nPUSH8 1\nSLOAD\nPUSH8 1\nSUB\nPUSH8 1\nSSTORE\nPUSH8 @loop\nJUMP\nexit:\nJUMPDEST\nPUSH8 0\nSLOAD\nPUSH8 1\nRETURN",
    )
    .unwrap();
    g.bench_function("minivm_loop_100", |b| {
        b.iter(|| {
            let mut state = blockfed_chain::State::new();
            let ctx = blockfed_chain::CallContext {
                caller: Default::default(),
                contract: Default::default(),
                calldata: vec![],
                gas_budget: 10_000_000,
                block_number: 1,
                timestamp_ns: 0,
            };
            blockfed_vm::interp::run(&ctx, black_box(&code), &mut state)
        })
    });

    g.bench_function("registry_submit", |b| {
        use blockfed_chain::ContractRuntime;
        let mut rt = BlockfedRuntime::new();
        let mut state = blockfed_chain::State::new();
        let registry = blockfed_crypto::H160::from_bytes([0xEE; 20]);
        rt.install_fl_registry(&mut state, registry);
        let caller = blockfed_crypto::H160::from_bytes([1; 20]);
        let reg = blockfed_vm::RegistryCall::Register.encode();
        let ctx = blockfed_chain::CallContext {
            caller,
            contract: registry,
            calldata: reg,
            gas_budget: 10_000_000,
            block_number: 1,
            timestamp_ns: 0,
        };
        rt.execute(&ctx, b"native", &mut state);
        let mut round = 0u32;
        b.iter(|| {
            round += 1;
            let call = blockfed_vm::RegistryCall::SubmitModel {
                round,
                model_hash: sha256(&round.to_le_bytes()),
                payload_bytes: 253_952,
                sample_count: 100,
            };
            let ctx = blockfed_chain::CallContext {
                caller,
                contract: registry,
                calldata: call.encode(),
                gas_budget: 10_000_000,
                block_number: 1,
                timestamp_ns: 0,
            };
            rt.execute(&ctx, b"native", &mut state)
        })
    });
    g.finish();
}

fn bench_ml(c: &mut Criterion) {
    let mut g = c.benchmark_group("ml");
    let mut rng = StdRng::seed_from_u64(3);
    let a = Tensor::from_vec(
        (0..64 * 256).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        &[64, 256],
    );
    let b_m = Tensor::from_vec(
        (0..256 * 128).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        &[256, 128],
    );
    g.bench_function("matmul_64x256x128", |b| {
        b.iter(|| matmul(black_box(&a), black_box(&b_m)))
    });

    // FedAvg over three SimpleNN-sized updates (the paper's 62 K params).
    let updates: Vec<ModelUpdate> = (0..3)
        .map(|i| {
            let params: Vec<f32> = (0..61_890).map(|_| rng.gen_range(-0.5..0.5)).collect();
            ModelUpdate::new(ClientId(i), 1, params, 500)
        })
        .collect();
    let refs: Vec<&ModelUpdate> = updates.iter().collect();
    g.bench_function("fedavg_62k_x3", |b| {
        b.iter(|| fed_avg(black_box(&refs)).unwrap())
    });
    g.finish();
}

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net");
    let network = Network::new(24, Topology::FullMesh, LinkSpec::lan());
    let mut rng = StdRng::seed_from_u64(4);
    g.bench_function("flood_24_peers_21MB", |b| {
        b.iter(|| network.flood(NodeId(0), 21_200_000, &mut rng))
    });
    // The flood-router pair the orchestrator's event loop rides on: the
    // allocating per-call API versus the reusable-scratch API it was
    // rebuilt over. Same RNG draws, same deliveries — the delta is exactly
    // the per-flood allocation churn (route maps, avoid sets, path vecs)
    // hoisted into `FloodScratch`.
    for n in [48usize, 128] {
        let wide = Network::new(n, Topology::FullMesh, LinkSpec::lan());
        g.bench_function(format!("flood_routes_alloc_n{n}"), |b| {
            b.iter(|| wide.flood_routes(NodeId(0), 10_000, &mut rng))
        });
        let mut scratch = blockfed_net::FloodScratch::new();
        g.bench_function(format!("flood_with_scratch_n{n}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                wide.flood_with(
                    NodeId(0),
                    10_000,
                    &mut rng,
                    &mut scratch,
                    |_, delay, path| {
                        acc = acc
                            .wrapping_add(delay.as_nanos())
                            .wrapping_add(path.len() as u64);
                    },
                );
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Scalar-vs-parallel kernels: the perf trajectory of the compute backend.
///
/// `scalar` rows pin the compute layer to one worker (and, for PoW, the
/// non-midstate reference); `parallel` rows use the detected worker count.
/// The matmul shapes are the EffNet-lite layers the paper's heavy experiments
/// spend their time in (batch 32, backbone width 2270, 10 classes).
fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    let mut rng = StdRng::seed_from_u64(5);
    let batch = 32usize;
    let width = 2270usize; // EffNetLiteConfig::paper().width
    let x = Tensor::from_vec(
        (0..batch * width)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect(),
        &[batch, width],
    );
    let w_backbone = Tensor::from_vec(
        (0..width * width)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect(),
        &[width, width],
    );
    let w_head = Tensor::from_vec(
        (0..10 * width).map(|_| rng.gen_range(-0.1..0.1)).collect(),
        &[10, width],
    );

    g.bench_function("matmul_bt_effnet_backbone_32x2270x2270_scalar", |b| {
        b.iter(|| {
            blockfed_tensor::matmul::reference::matmul_bt(black_box(&x), black_box(&w_backbone))
        })
    });
    g.bench_function("matmul_bt_effnet_backbone_32x2270x2270_parallel", |b| {
        b.iter(|| blockfed_tensor::matmul_bt(black_box(&x), black_box(&w_backbone)))
    });
    g.bench_function("matmul_bt_effnet_head_32x2270x10_scalar", |b| {
        b.iter(|| blockfed_tensor::matmul::reference::matmul_bt(black_box(&x), black_box(&w_head)))
    });
    g.bench_function("matmul_bt_effnet_head_32x2270x10_parallel", |b| {
        b.iter(|| blockfed_tensor::matmul_bt(black_box(&x), black_box(&w_head)))
    });

    // PoW nonce throughput: same 20 000-attempt scan, never sealing
    // (difficulty u128::MAX), so the numbers are pure hashing cost.
    let header = blockfed_chain::Header {
        parent: sha256(b"bench-parent"),
        number: 1,
        timestamp_ns: 1,
        miner: Default::default(),
        difficulty: u128::MAX,
        nonce: 0,
        tx_root: sha256(b"bench-txs"),
        state_root: sha256(b"bench-state"),
        gas_used: 0,
        gas_limit: 1_000_000,
    };
    const ATTEMPTS: u64 = 20_000;
    g.bench_function("pow_20k_nonces_no_midstate", |b| {
        b.iter(|| pow::mine_reference(&mut header.clone(), 0, ATTEMPTS))
    });
    g.bench_function("pow_20k_nonces_midstate", |b| {
        b.iter(|| pow::mine(&mut header.clone(), 0, ATTEMPTS))
    });
    g.bench_function("pow_20k_nonces_midstate_parallel", |b| {
        b.iter(|| pow::mine_parallel(&mut header.clone(), 0, ATTEMPTS))
    });

    // FedAvg over SimpleNN-sized updates: inline scalar loop vs the chunked
    // parallel kernel.
    let updates: Vec<ModelUpdate> = (0..8)
        .map(|i| {
            let params: Vec<f32> = (0..61_890).map(|_| rng.gen_range(-0.5..0.5)).collect();
            ModelUpdate::new(ClientId(i), 1, params, 100 + i)
        })
        .collect();
    let refs: Vec<&ModelUpdate> = updates.iter().collect();
    g.bench_function("fedavg_62k_x8_scalar", |b| {
        b.iter(|| {
            let dim = refs[0].params.len();
            let total: f64 = refs.iter().map(|u| u.sample_count as f64).sum();
            let mut out = vec![0.0f64; dim];
            for u in black_box(&refs) {
                let w = u.sample_count as f64 / total;
                for (o, &p) in out.iter_mut().zip(&u.params) {
                    *o += w * f64::from(p);
                }
            }
            out.into_iter().map(|v| v as f32).collect::<Vec<f32>>()
        })
    });
    g.bench_function("fedavg_62k_x8_parallel", |b| {
        b.iter(|| fed_avg(black_box(&refs)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_chain,
    bench_vm,
    bench_ml,
    bench_net,
    bench_scaling
);
criterion_main!(benches);
