//! The workspace-wide parallel compute layer.
//!
//! Every hot path in `blockfed` — dense kernels in `blockfed-tensor`,
//! training in `blockfed-nn`, aggregation in `blockfed-fl`, and nonce search
//! in `blockfed-chain` — parallelizes through the primitives here rather than
//! spawning threads ad hoc, so one environment knob controls the whole stack:
//!
//! * `BLOCKFED_THREADS=N` forces the worker count (`1` gives fully
//!   deterministic single-threaded execution for CI);
//! * unset, the layer uses [`std::thread::available_parallelism`].
//!
//! The primitives use scoped threads ([`std::thread::scope`]) instead of a
//! persistent pool: no `'static` bounds on closures, no unsafe, no shutdown
//! protocol, and spawn cost (~10 µs/thread) is amortized because callers gate
//! on [`worth_parallelizing`] and fall back to inline execution for small
//! inputs. All primitives partition work *deterministically* — contiguous
//! chunks, one per worker — so any kernel whose per-chunk computation is a
//! pure function of the chunk produces bit-identical results at every thread
//! count.
//!
//! # Examples
//!
//! ```
//! let mut data = vec![1.0f32; 1024];
//! blockfed_compute::par_chunks_mut(&mut data, 1, |_offset, chunk| {
//!     for x in chunk {
//!         *x *= 2.0;
//!     }
//! });
//! assert!(data.iter().all(|&x| x == 2.0));
//! ```

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Work below this many "scalar op" units is run inline; spawning threads
/// costs more than it saves.
pub const PAR_THRESHOLD: usize = 16 * 1024;

static THREADS: OnceLock<usize> = OnceLock::new();
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether this thread is already executing inside a parallel region.
    /// Nested primitives run inline instead of oversubscribing the machine
    /// (e.g. a pool-parallel combination scorer whose model evaluation calls
    /// pool-parallel matmuls).
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with this thread marked as inside a parallel region, restoring
/// the previous state afterwards (panic-safe via a drop guard).
fn run_in_region<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(IN_PARALLEL_REGION.with(|c| c.replace(true)));
    f()
}

fn detect_threads() -> usize {
    if let Ok(v) = std::env::var("BLOCKFED_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of worker threads the compute layer will use.
///
/// Resolution order: `1` when already inside a parallel region (nested
/// primitives run inline), then a live [`set_threads`] override, then the
/// `BLOCKFED_THREADS` environment variable, then detected hardware
/// parallelism.
pub fn num_threads() -> usize {
    if IN_PARALLEL_REGION.with(|c| c.get()) {
        return 1;
    }
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *THREADS.get_or_init(detect_threads)
}

/// Overrides the worker count at runtime (`0` clears the override).
///
/// Primarily for tests that assert kernel equivalence across thread counts;
/// production code should prefer the `BLOCKFED_THREADS` environment variable.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Whether a kernel touching `work_items` scalar units should bother going
/// parallel.
pub fn worth_parallelizing(work_items: usize) -> bool {
    num_threads() > 1 && work_items >= PAR_THRESHOLD
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal length.
///
/// The split depends only on `n` and `parts`, never on scheduling, which is
/// what makes the layer's kernels deterministic.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `data` into one contiguous chunk per worker (each a multiple of
/// `stride` long) and runs `f(start_index, chunk)` on each in parallel.
///
/// `stride` keeps logical rows intact: with `stride = row_len`, no row is
/// ever split across workers.
///
/// # Panics
///
/// Panics if `stride` is zero or does not divide `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], stride: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(stride > 0, "stride must be positive");
    assert_eq!(data.len() % stride, 0, "stride must divide the data length");
    let rows = data.len() / stride;
    let threads = num_threads();
    if threads <= 1 || rows <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let ranges = split_ranges(rows, threads);
    if ranges.len() == 1 {
        f(0, data);
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut remaining = data;
        let mut consumed = 0usize;
        let mut first: Option<(usize, &mut [T])> = None;
        for range in ranges {
            let take = (range.end - range.start) * stride;
            let (chunk, rest) = remaining.split_at_mut(take);
            let offset = consumed;
            if first.is_none() {
                first = Some((offset, chunk));
            } else {
                scope.spawn(move || run_in_region(|| f(offset, chunk)));
            }
            consumed += take;
            remaining = rest;
        }
        if let Some((offset, chunk)) = first {
            run_in_region(|| f(offset, chunk));
        }
    });
}

/// Applies `f` to every item in parallel, preserving order of results.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let slots = &mut out[..];
        let f = &f;
        std::thread::scope(|scope| {
            let mut remaining = slots;
            let mut start = 0usize;
            let mut first: Option<(usize, &mut [Option<U>])> = None;
            for range in split_ranges(n, threads) {
                let take = range.end - range.start;
                let (chunk, rest) = remaining.split_at_mut(take);
                if first.is_none() {
                    first = Some((start, chunk));
                } else {
                    let offset = start;
                    scope.spawn(move || {
                        run_in_region(|| {
                            for (i, slot) in chunk.iter_mut().enumerate() {
                                *slot = Some(f(&items[offset + i]));
                            }
                        })
                    });
                }
                start += take;
                remaining = rest;
            }
            if let Some((offset, chunk)) = first {
                run_in_region(|| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(&items[offset + i]));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

/// Applies `f` to every item in parallel with **per-worker mutable state**,
/// preserving result order: items are split into at most `states.len()`
/// contiguous chunks, and each chunk is processed sequentially with its own
/// state. With one state this degrades to a plain sequential map.
///
/// The orchestrator uses this to evaluate model combinations concurrently,
/// each worker owning a scratch model. Results are identical at any state
/// count as long as `f`'s output doesn't depend on leftover state (callers
/// reset their scratch per item).
pub fn par_map_with<S, T, U, F>(states: &mut [S], items: &[T], f: F) -> Vec<U>
where
    S: Send,
    T: Sync,
    U: Send,
    F: Fn(&mut S, &T) -> U + Sync,
{
    assert!(!states.is_empty(), "par_map_with needs at least one state");
    let n = items.len();
    if states.len() == 1 || n <= 1 {
        let state = &mut states[0];
        return items.iter().map(|item| f(state, item)).collect();
    }
    let ranges = split_ranges(n, states.len());
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let f = &f;
        std::thread::scope(|scope| {
            let mut slots = &mut out[..];
            let mut rest_states = &mut states[..];
            let mut first: Option<(usize, &mut S, &mut [Option<U>])> = None;
            for range in ranges {
                let take = range.end - range.start;
                let (chunk, rest) = slots.split_at_mut(take);
                let (state, others) = rest_states.split_first_mut().expect("state per range");
                let offset = range.start;
                if first.is_none() {
                    first = Some((offset, state, chunk));
                } else {
                    scope.spawn(move || {
                        run_in_region(|| {
                            for (i, slot) in chunk.iter_mut().enumerate() {
                                *slot = Some(f(state, &items[offset + i]));
                            }
                        })
                    });
                }
                slots = rest;
                rest_states = others;
            }
            if let Some((offset, state, chunk)) = first {
                run_in_region(|| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(state, &items[offset + i]));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

/// A deterministic parallel search over `start..start + len` in ascending
/// blocks of `block` items: returns the smallest index for which `pred` is
/// true, or `None`.
///
/// Workers claim blocks from a shared counter and stop claiming once a hit in
/// an earlier block is known, so the result equals the sequential scan's
/// while wall-clock scales with workers. Used by the PoW nonce search.
pub fn par_find_first<F>(start: u64, len: u64, block: u64, pred: F) -> Option<u64>
where
    F: Fn(u64) -> bool + Sync,
{
    if len == 0 {
        return None;
    }
    let block = block.max(1);
    let threads = num_threads();
    if threads <= 1 || len <= block {
        // Wrapping like the worker loop, so ranges crossing u64::MAX yield
        // the same result at every thread count.
        return (0..len)
            .map(|off| start.wrapping_add(off))
            .find(|&i| pred(i));
    }
    let blocks = len.div_ceil(block);
    let next_block = AtomicUsize::new(0);
    // Best hit so far, encoded as the candidate's offset from `start`
    // (u64::MAX = none). Monotonically decreasing via fetch_min.
    let best = std::sync::atomic::AtomicU64::new(u64::MAX);
    let worker = || {
        loop {
            let b = next_block.fetch_add(1, Ordering::Relaxed) as u64;
            if b >= blocks {
                break;
            }
            // A hit in an earlier block beats anything this block finds.
            if best.load(Ordering::Relaxed) < b * block {
                break;
            }
            let lo = b * block;
            let hi = len.min(lo.saturating_add(block));
            for off in lo..hi {
                if best.load(Ordering::Relaxed) <= off {
                    break;
                }
                if pred(start.wrapping_add(off)) {
                    best.fetch_min(off, Ordering::Relaxed);
                    break;
                }
            }
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(|| run_in_region(worker));
        }
        run_in_region(worker);
    });
    match best.load(Ordering::Relaxed) {
        u64::MAX => None,
        off => Some(start.wrapping_add(off)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global thread override.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_map_with_uses_every_state_deterministically() {
        let _g = guard();
        let items: Vec<u32> = (0..100).collect();
        for states in [1usize, 2, 7] {
            let mut scratches = vec![0u32; states];
            let out = par_map_with(&mut scratches, &items, |scratch, &x| {
                *scratch = x; // per-item reset, like a scratch model
                *scratch * 2
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ranges_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, striped(n)] {
                let ranges = split_ranges(n, parts);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start, "gap before {r:?}");
                    assert!(r.end > r.start);
                    covered += r.end - r.start;
                    expected_start = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    fn striped(n: usize) -> usize {
        n.max(1)
    }

    #[test]
    fn par_chunks_mut_offsets_are_correct() {
        let _g = guard();
        for threads in [1usize, 2, 8] {
            set_threads(threads);
            let mut data = vec![0usize; 300];
            par_chunks_mut(&mut data, 3, |offset, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = offset + i;
                }
            });
            let expect: Vec<usize> = (0..300).collect();
            assert_eq!(data, expect);
        }
        set_threads(0);
    }

    #[test]
    #[should_panic(expected = "stride must divide")]
    fn par_chunks_mut_rejects_misaligned_stride() {
        let mut data = vec![0u8; 10];
        par_chunks_mut(&mut data, 3, |_, _| {});
    }

    #[test]
    fn par_map_preserves_order() {
        let _g = guard();
        for threads in [1usize, 2, 8] {
            set_threads(threads);
            let items: Vec<u64> = (0..257).collect();
            let out = par_map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let _g = guard();
        set_threads(4);
        let outer: Vec<u32> = (0..8).collect();
        // Inside a worker, the compute layer must report one thread so
        // nested primitives don't oversubscribe the machine.
        let seen = par_map(&outer, |_| num_threads());
        assert!(seen.iter().all(|&t| t == 1), "nested num_threads: {seen:?}");
        // Outside the region, the override is visible again.
        assert_eq!(num_threads(), 4);
        set_threads(0);
    }

    #[test]
    fn par_find_first_wraps_identically_at_every_thread_count() {
        let _g = guard();
        // Range crossing u64::MAX: the hit lies past the wrap point.
        let start = u64::MAX - 100;
        let target = start.wrapping_add(5_000);
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            set_threads(threads);
            results.push(par_find_first(start, 10_000, 64, |x| x == target));
        }
        set_threads(0);
        assert!(results.iter().all(|r| *r == Some(target)), "{results:?}");
    }

    #[test]
    fn par_find_first_matches_sequential_scan() {
        let _g = guard();
        let pred = |x: u64| x % 97 == 13;
        let sequential = (1000u64..1000 + 5000).find(|&x| pred(x));
        for threads in [1usize, 2, 8] {
            set_threads(threads);
            assert_eq!(par_find_first(1000, 5000, 64, pred), sequential);
            assert_eq!(par_find_first(0, 10, 4, |_| false), None);
            // First item matching.
            assert_eq!(par_find_first(5, 100, 8, |x| x >= 5), Some(5));
        }
        set_threads(0);
    }

    #[test]
    fn thread_override_wins() {
        let _g = guard();
        set_threads(3);
        assert_eq!(num_threads(), 3);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}
