//! Staleness-aware asynchronous merging and the age-of-block metric.
//!
//! The paper's future work asks about "the impact of an arbitrary number of
//! local updates on each peer in asynchronous communication ... for optimal
//! values". Aggregating early (wait-for-k) means later updates arrive *stale*:
//! they were trained against an older global model. This module implements the
//! standard mitigation — FedAsync-style mixing where the weight of an update
//! decays with its staleness (Xie et al., 2019) — plus the **age-of-block**
//! freshness metric of Wilhelmi et al. (NetSoft 2023), which the related-work
//! section cites as the way to measure model-update freshness on a blockchain.

use serde::{Deserialize, Serialize};

/// How an update's mixing weight decays with staleness `s` (the number of
/// rounds between the global model the update was trained on and the global
/// model it is merged into; `s = 0` is perfectly fresh).
///
/// # Examples
///
/// ```
/// use blockfed_fl::StalenessDecay;
///
/// let poly = StalenessDecay::Polynomial { a: 1.0 };
/// assert_eq!(poly.factor(0), 1.0); // fresh
/// assert_eq!(poly.factor(1), 0.5); // one round stale → half weight
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StalenessDecay {
    /// No decay: every update mixes with the base weight regardless of age.
    Constant,
    /// Polynomial decay `(s + 1)^-a` — FedAsync's recommended family.
    Polynomial {
        /// Decay exponent `a > 0`; larger discounts stale updates harder.
        a: f64,
    },
    /// Exponential decay `exp(-lambda * s)`.
    Exponential {
        /// Decay rate `lambda > 0`.
        lambda: f64,
    },
    /// Hard cutoff: weight 1 for `s <= max_staleness`, 0 beyond.
    Cutoff {
        /// Maximum tolerated staleness in rounds.
        max_staleness: u32,
    },
}

impl StalenessDecay {
    /// The decay factor in `[0, 1]` for staleness `s`.
    pub fn factor(&self, s: u32) -> f64 {
        match *self {
            StalenessDecay::Constant => 1.0,
            StalenessDecay::Polynomial { a } => f64::from(s + 1).powf(-a.max(0.0)),
            StalenessDecay::Exponential { lambda } => (-lambda.max(0.0) * f64::from(s)).exp(),
            StalenessDecay::Cutoff { max_staleness } => {
                if s <= max_staleness {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl std::fmt::Display for StalenessDecay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StalenessDecay::Constant => write!(f, "constant"),
            StalenessDecay::Polynomial { a } => write!(f, "poly(a={a})"),
            StalenessDecay::Exponential { lambda } => write!(f, "exp(λ={lambda})"),
            StalenessDecay::Cutoff { max_staleness } => write!(f, "cutoff(s≤{max_staleness})"),
        }
    }
}

/// FedAsync-style server: maintains a global model and folds in one update at
/// a time with a staleness-discounted mixing weight
/// `w = alpha * decay(s)`, i.e. `global ← (1 - w) · global + w · update`.
///
/// # Examples
///
/// ```
/// use blockfed_fl::{AsyncMerger, StalenessDecay};
///
/// let mut merger = AsyncMerger::new(vec![0.0, 0.0], 0.5, StalenessDecay::Constant);
/// merger.merge(&[1.0, 2.0], 0)?; // fresh update, weight 0.5
/// assert_eq!(merger.global(), &[0.5, 1.0]);
/// # Ok::<(), blockfed_fl::MergeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncMerger {
    global: Vec<f32>,
    alpha: f64,
    decay: StalenessDecay,
    merges: u64,
}

/// Error merging an asynchronous update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The update's parameter count differs from the global model's.
    ShapeMismatch {
        /// Global model parameter count.
        expected: usize,
        /// Offending update parameter count.
        got: usize,
    },
    /// The update contains NaN or infinite parameters.
    NonFinite,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "update has {got} parameters, global model has {expected}"
                )
            }
            MergeError::NonFinite => write!(f, "update contains non-finite parameters"),
        }
    }
}

impl std::error::Error for MergeError {}

impl AsyncMerger {
    /// Creates a merger seeded with the initial global model.
    ///
    /// `alpha` is the base mixing rate in `[0, 1]` (FedAsync's α); it is
    /// clamped into that range.
    pub fn new(initial_global: Vec<f32>, alpha: f64, decay: StalenessDecay) -> Self {
        AsyncMerger {
            global: initial_global,
            alpha: alpha.clamp(0.0, 1.0),
            decay,
            merges: 0,
        }
    }

    /// The current global model.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// Consumes the merger, returning the global model.
    pub fn into_global(self) -> Vec<f32> {
        self.global
    }

    /// Number of updates merged so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// The effective mixing weight an update of staleness `s` would receive.
    pub fn weight_for(&self, staleness: u32) -> f64 {
        self.alpha * self.decay.factor(staleness)
    }

    /// Folds `update` (trained `staleness` rounds ago) into the global model.
    ///
    /// # Errors
    ///
    /// [`MergeError::ShapeMismatch`] or [`MergeError::NonFinite`]; the global
    /// model is left untouched on error.
    pub fn merge(&mut self, update: &[f32], staleness: u32) -> Result<f64, MergeError> {
        if update.len() != self.global.len() {
            return Err(MergeError::ShapeMismatch {
                expected: self.global.len(),
                got: update.len(),
            });
        }
        if update.iter().any(|p| !p.is_finite()) {
            return Err(MergeError::NonFinite);
        }
        let w = self.weight_for(staleness);
        for (g, &u) in self.global.iter_mut().zip(update) {
            *g = ((1.0 - w) * f64::from(*g) + w * f64::from(u)) as f32;
        }
        self.merges += 1;
        Ok(w)
    }
}

/// Accumulates the **age of block** metric (Wilhelmi et al.): for each model
/// update, the delay between its production time and the time the block
/// carrying it was appended (or the aggregate consuming it was formed). Small
/// ages mean aggregators see fresh models.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AgeOfBlock {
    count: u64,
    total: f64,
    max: f64,
}

impl AgeOfBlock {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one update's age in seconds (negative ages are clamped to 0).
    pub fn record(&mut self, age_secs: f64) {
        let age = age_secs.max(0.0);
        self.count += 1;
        self.total += age;
        if age > self.max {
            self.max = age;
        }
    }

    /// Number of recorded ages.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean age in seconds (0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Maximum recorded age in seconds.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn absorb(&mut self, other: &AgeOfBlock) {
        self.count += other.count;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Absorbs a pre-aggregated summary: `count` observations with the given
    /// mean and maximum (for records that only kept summary statistics).
    /// Negative inputs are clamped to 0; a max below the mean is raised to it.
    pub fn record_summary(&mut self, count: u64, mean_secs: f64, max_secs: f64) {
        if count == 0 {
            return;
        }
        let mean = mean_secs.max(0.0);
        let max = max_secs.max(mean);
        self.count += count;
        self.total += mean * count as f64;
        if max > self.max {
            self.max = max;
        }
    }
}

impl std::fmt::Display for AgeOfBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "age-of-block mean {:.3}s max {:.3}s over {}",
            self.mean(),
            self.max,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_factors_are_monotone_in_staleness() {
        for decay in [
            StalenessDecay::Constant,
            StalenessDecay::Polynomial { a: 0.5 },
            StalenessDecay::Exponential { lambda: 0.3 },
            StalenessDecay::Cutoff { max_staleness: 2 },
        ] {
            let mut prev = decay.factor(0);
            assert!((0.0..=1.0).contains(&prev));
            for s in 1..10 {
                let f = decay.factor(s);
                assert!(f <= prev + 1e-12, "{decay} not monotone at s={s}");
                assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
        }
    }

    #[test]
    fn fresh_updates_decay_to_one() {
        assert_eq!(StalenessDecay::Constant.factor(0), 1.0);
        assert_eq!(StalenessDecay::Polynomial { a: 2.0 }.factor(0), 1.0);
        assert_eq!(StalenessDecay::Exponential { lambda: 1.0 }.factor(0), 1.0);
        assert_eq!(StalenessDecay::Cutoff { max_staleness: 0 }.factor(0), 1.0);
    }

    #[test]
    fn polynomial_halves_at_known_points() {
        // (s+1)^-1 at s=1 is 0.5.
        assert!((StalenessDecay::Polynomial { a: 1.0 }.factor(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cutoff_is_sharp() {
        let d = StalenessDecay::Cutoff { max_staleness: 3 };
        assert_eq!(d.factor(3), 1.0);
        assert_eq!(d.factor(4), 0.0);
    }

    #[test]
    fn negative_rates_are_clamped() {
        // Degenerate parameters must not produce factors above 1.
        assert!(StalenessDecay::Polynomial { a: -2.0 }.factor(5) <= 1.0);
        assert!(StalenessDecay::Exponential { lambda: -1.0 }.factor(5) <= 1.0);
    }

    #[test]
    fn merge_moves_global_toward_update() {
        let mut m = AsyncMerger::new(vec![0.0, 0.0], 0.5, StalenessDecay::Constant);
        let w = m.merge(&[1.0, 2.0], 0).unwrap();
        assert_eq!(w, 0.5);
        assert_eq!(m.global(), &[0.5, 1.0]);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn stale_updates_move_global_less() {
        let decay = StalenessDecay::Polynomial { a: 1.0 };
        let mut fresh = AsyncMerger::new(vec![0.0], 0.8, decay);
        let mut stale = AsyncMerger::new(vec![0.0], 0.8, decay);
        fresh.merge(&[1.0], 0).unwrap();
        stale.merge(&[1.0], 4).unwrap();
        assert!(fresh.global()[0] > stale.global()[0]);
        assert!(stale.global()[0] > 0.0);
    }

    #[test]
    fn alpha_zero_freezes_global() {
        let mut m = AsyncMerger::new(vec![3.0], 0.0, StalenessDecay::Constant);
        m.merge(&[100.0], 0).unwrap();
        assert_eq!(m.global(), &[3.0]);
    }

    #[test]
    fn alpha_one_fresh_replaces_global() {
        let mut m = AsyncMerger::new(vec![3.0], 1.0, StalenessDecay::Constant);
        m.merge(&[100.0], 0).unwrap();
        assert_eq!(m.global(), &[100.0]);
    }

    #[test]
    fn alpha_is_clamped() {
        let m = AsyncMerger::new(vec![0.0], 7.0, StalenessDecay::Constant);
        assert_eq!(m.weight_for(0), 1.0);
        let m = AsyncMerger::new(vec![0.0], -1.0, StalenessDecay::Constant);
        assert_eq!(m.weight_for(0), 0.0);
    }

    #[test]
    fn merge_rejects_bad_updates_without_mutating() {
        let mut m = AsyncMerger::new(vec![1.0, 2.0], 0.5, StalenessDecay::Constant);
        assert_eq!(
            m.merge(&[1.0], 0),
            Err(MergeError::ShapeMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(m.merge(&[f32::NAN, 0.0], 0), Err(MergeError::NonFinite));
        assert_eq!(m.global(), &[1.0, 2.0]);
        assert_eq!(m.merges(), 0);
    }

    #[test]
    fn into_global_returns_final_model() {
        let mut m = AsyncMerger::new(vec![0.0], 1.0, StalenessDecay::Constant);
        m.merge(&[5.0], 0).unwrap();
        assert_eq!(m.into_global(), vec![5.0]);
    }

    #[test]
    fn age_of_block_statistics() {
        let mut a = AgeOfBlock::new();
        assert_eq!(a.mean(), 0.0);
        a.record(1.0);
        a.record(3.0);
        a.record(-5.0); // clamped to 0
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn age_of_block_absorb() {
        let mut a = AgeOfBlock::new();
        a.record(2.0);
        let mut b = AgeOfBlock::new();
        b.record(6.0);
        a.absorb(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.max(), 6.0);
    }

    #[test]
    fn record_summary_pools_exactly() {
        // Summary of {1, 3, 5}: count 3, mean 3, max 5.
        let mut a = AgeOfBlock::new();
        a.record_summary(3, 3.0, 5.0);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.max(), 5.0);
        // Matches recording the raw values.
        let mut raw = AgeOfBlock::new();
        for v in [1.0, 3.0, 5.0] {
            raw.record(v);
        }
        assert_eq!(a.count(), raw.count());
        assert!((a.mean() - raw.mean()).abs() < 1e-12);
        assert_eq!(a.max(), raw.max());
    }

    #[test]
    fn record_summary_edge_cases() {
        let mut a = AgeOfBlock::new();
        a.record_summary(0, 100.0, 200.0); // ignored
        assert_eq!(a.count(), 0);
        a.record_summary(2, -1.0, -5.0); // clamped to zero
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 0.0);
        a.record_summary(1, 7.0, 3.0); // max below mean is raised
        assert_eq!(a.max(), 7.0);
    }

    #[test]
    fn display_formats() {
        let mut a = AgeOfBlock::new();
        a.record(1.5);
        assert!(a.to_string().contains("age-of-block"));
        assert_eq!(StalenessDecay::Constant.to_string(), "constant");
        assert!(StalenessDecay::Polynomial { a: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(StalenessDecay::Exponential { lambda: 0.2 }
            .to_string()
            .contains("0.2"));
        assert!(StalenessDecay::Cutoff { max_staleness: 2 }
            .to_string()
            .contains('2'));
    }

    #[test]
    fn merge_error_display() {
        assert!(MergeError::ShapeMismatch {
            expected: 2,
            got: 1
        }
        .to_string()
        .contains('2'));
        assert!(MergeError::NonFinite.to_string().contains("non-finite"));
    }
}
