//! The Vanilla (centralized) federated-learning driver — the paper's baseline.
//!
//! Three clients train locally for five epochs, send updates to a central
//! aggregator, which aggregates under "consider" or "not consider" and sends the
//! global model back; ten communication rounds (§IV-B1, *Centralized setting*).

use blockfed_data::{Batcher, Dataset};
use blockfed_nn::{Sequential, Sgd};
use rand::Rng;

use crate::selector::Combination;
use crate::strategy::{aggregate, Strategy};
use crate::update::{ClientId, ModelUpdate};

/// Configuration of a Vanilla FL run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanillaFlConfig {
    /// Communication rounds (the paper uses 10).
    pub rounds: u32,
    /// Local epochs per round (the paper uses 5).
    pub local_epochs: usize,
    /// Mini-batch size for local training.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Aggregation strategy at the central aggregator.
    pub strategy: Strategy,
    /// Split each client's mini-batches across `blockfed-compute` workers
    /// (`blockfed_nn::Sequential::par_train_epochs`). Bit-identical to the
    /// sequential loop at any thread count, so results never depend on it.
    pub batch_parallel: bool,
}

impl Default for VanillaFlConfig {
    fn default() -> Self {
        VanillaFlConfig {
            rounds: 10,
            local_epochs: 5,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            strategy: Strategy::NotConsider,
            batch_parallel: false,
        }
    }
}

/// Per-round record of a Vanilla FL run.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: u32,
    /// The combination the aggregator chose.
    pub chosen: Combination,
    /// Aggregator-side score of the chosen aggregate.
    pub score: f64,
    /// Accuracy of the distributed global model on each client's test data.
    pub client_accuracy: Vec<(ClientId, f64)>,
}

/// The complete result of a Vanilla FL run.
#[derive(Debug, Clone, PartialEq)]
pub struct VanillaRun {
    /// One record per round, in order.
    pub records: Vec<RoundRecord>,
    /// The final global parameters.
    pub final_params: Vec<f32>,
}

impl VanillaRun {
    /// The accuracy series for one client across rounds.
    pub fn client_series(&self, client: ClientId) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| {
                r.client_accuracy
                    .iter()
                    .find(|(c, _)| *c == client)
                    .map(|(_, a)| *a)
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Final-round accuracy of a client.
    pub fn final_accuracy(&self, client: ClientId) -> f64 {
        self.client_series(client).last().copied().unwrap_or(0.0)
    }
}

/// The Vanilla FL experiment: train shards, per-client test sets, and the
/// aggregator's selection test set.
pub struct VanillaFl<'a> {
    config: VanillaFlConfig,
    train_shards: &'a [Dataset],
    client_tests: &'a [Dataset],
    selection_test: &'a Dataset,
}

impl<'a> VanillaFl<'a> {
    /// Creates a driver.
    ///
    /// # Panics
    ///
    /// Panics if shard and test counts disagree or are empty.
    pub fn new(
        config: VanillaFlConfig,
        train_shards: &'a [Dataset],
        client_tests: &'a [Dataset],
        selection_test: &'a Dataset,
    ) -> Self {
        assert!(!train_shards.is_empty(), "need at least one client");
        assert_eq!(
            train_shards.len(),
            client_tests.len(),
            "shard/test count mismatch"
        );
        VanillaFl {
            config,
            train_shards,
            client_tests,
            selection_test,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VanillaFlConfig {
        &self.config
    }

    /// Runs the experiment. `make_model` builds the shared architecture
    /// (initial weights are taken from the first call and redistributed, so all
    /// clients start identically, as in the paper).
    pub fn run<R: Rng + ?Sized>(
        &self,
        make_model: &mut dyn FnMut() -> Sequential,
        rng: &mut R,
    ) -> VanillaRun {
        self.run_with_hook(make_model, &mut |_| {}, rng)
    }

    /// Like [`VanillaFl::run`] but calls `update_hook` on every local update
    /// before aggregation — the failure-injection point used to study poisoned
    /// or noisy clients.
    pub fn run_with_hook<R: Rng + ?Sized>(
        &self,
        make_model: &mut dyn FnMut() -> Sequential,
        update_hook: &mut dyn FnMut(&mut ModelUpdate),
        rng: &mut R,
    ) -> VanillaRun {
        let n = self.train_shards.len();
        let batcher = Batcher::new(self.config.batch_size);
        let mut global = make_model();
        let mut global_params = global.params_flat();
        let mut records = Vec::with_capacity(self.config.rounds as usize);

        // Scratch model reused for candidate evaluation.
        let mut scratch = make_model();

        for round in 1..=self.config.rounds {
            // Local training at every client, from the current global model.
            let mut updates = Vec::with_capacity(n);
            for (i, shard) in self.train_shards.iter().enumerate() {
                let mut model = make_model();
                model.set_params_flat(&global_params);
                let mut opt = Sgd::new(self.config.lr, self.config.momentum);
                model.train_epochs_maybe_par(
                    self.config.batch_parallel,
                    shard,
                    self.config.local_epochs,
                    &batcher,
                    &mut opt,
                    rng,
                );
                let mut update =
                    ModelUpdate::new(ClientId(i), round, model.params_flat(), shard.len());
                update_hook(&mut update);
                updates.push(update);
            }
            let update_refs: Vec<&ModelUpdate> = updates.iter().collect();

            // Central aggregation.
            let selection_test = self.selection_test;
            let outcome = aggregate(
                self.config.strategy,
                &update_refs,
                |params| {
                    scratch.set_params_flat(params);
                    scratch.evaluate(selection_test).accuracy
                },
                rng,
            )
            .expect("aggregation cannot fail with non-empty finite updates");

            // Distribute and measure on every client's test data.
            global_params = outcome.params.clone();
            global.set_params_flat(&global_params);
            let client_accuracy = self
                .client_tests
                .iter()
                .enumerate()
                .map(|(i, test)| (ClientId(i), global.evaluate(test).accuracy))
                .collect();

            records.push(RoundRecord {
                round,
                chosen: outcome.combination,
                score: outcome.score,
                client_accuracy,
            });
        }

        VanillaRun {
            records,
            final_params: global_params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
    use blockfed_nn::SimpleNnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        shards: Vec<Dataset>,
        tests: Vec<Dataset>,
        selection: Dataset,
    }

    fn fixture() -> Fixture {
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (train, test) = gen.generate(1);
        let mut rng = StdRng::seed_from_u64(5);
        let shards = partition_dataset(
            &train,
            3,
            Partition::DirichletLabelSkew { alpha: 0.7 },
            &mut rng,
        );
        let tests = vec![test.clone(), test.clone(), test.clone()];
        Fixture {
            shards,
            tests,
            selection: test,
        }
    }

    fn quick_config(strategy: Strategy) -> VanillaFlConfig {
        VanillaFlConfig {
            rounds: 3,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            strategy,
            batch_parallel: false,
        }
    }

    fn run(strategy: Strategy, seed: u64) -> VanillaRun {
        let fx = fixture();
        let driver = VanillaFl::new(quick_config(strategy), &fx.shards, &fx.tests, &fx.selection);
        let mut arch_rng = StdRng::seed_from_u64(seed);
        let cfg = SimpleNnConfig::tiny(fx.selection.feature_dim(), fx.selection.num_classes());
        let mut rng = StdRng::seed_from_u64(seed + 1);
        driver.run(&mut || cfg.build(&mut arch_rng), &mut rng)
    }

    #[test]
    fn produces_one_record_per_round() {
        let out = run(Strategy::NotConsider, 1);
        assert_eq!(out.records.len(), 3);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.round as usize, i + 1);
            assert_eq!(r.client_accuracy.len(), 3);
        }
    }

    #[test]
    fn learning_improves_over_rounds() {
        let out = run(Strategy::NotConsider, 2);
        let first = out.records.first().unwrap().client_accuracy[0].1;
        let last = out.records.last().unwrap().client_accuracy[0].1;
        assert!(last > first, "accuracy did not improve: {first} -> {last}");
        // Above chance (4 classes in the tiny config).
        assert!(last > 0.3, "final accuracy {last}");
    }

    #[test]
    fn not_consider_uses_full_combination() {
        let out = run(Strategy::NotConsider, 3);
        for r in &out.records {
            assert_eq!(r.chosen.len(), 3);
        }
    }

    #[test]
    fn consider_records_selected_combination() {
        let out = run(Strategy::Consider, 4);
        for r in &out.records {
            assert!((1..=3).contains(&r.chosen.len()));
            assert!(r.score >= 0.0 && r.score <= 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let a = run(Strategy::Consider, 9);
        let b = run(Strategy::Consider, 9);
        assert_eq!(a.records, b.records);
        assert_eq!(a.final_params, b.final_params);
    }

    #[test]
    fn client_series_extraction() {
        let out = run(Strategy::NotConsider, 5);
        let series = out.client_series(ClientId(1));
        assert_eq!(series.len(), 3);
        assert_eq!(
            series.last().copied().unwrap(),
            out.final_accuracy(ClientId(1))
        );
        // Unknown client yields zeros.
        assert_eq!(out.client_series(ClientId(9)), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn hook_can_poison_an_update() {
        let fx = fixture();
        let driver = VanillaFl::new(
            quick_config(Strategy::Consider),
            &fx.shards,
            &fx.tests,
            &fx.selection,
        );
        let cfg = SimpleNnConfig::tiny(fx.selection.feature_dim(), fx.selection.num_classes());
        let mut arch_rng = StdRng::seed_from_u64(20);
        let mut rng = StdRng::seed_from_u64(21);
        let out = driver.run_with_hook(
            &mut || cfg.build(&mut arch_rng),
            &mut |u| {
                if u.client == ClientId(0) {
                    // Garbage weights: a poisoned client.
                    for p in &mut u.params {
                        *p = 50.0;
                    }
                }
            },
            &mut rng,
        );
        // The consider strategy should avoid the poisoned client in the final round.
        let last = out.records.last().unwrap();
        assert!(
            !last.chosen.contains(ClientId(0)),
            "poisoned client was selected: {:?}",
            last.chosen
        );
    }

    #[test]
    #[should_panic(expected = "shard/test count mismatch")]
    fn mismatched_tests_rejected() {
        let fx = fixture();
        let _ = VanillaFl::new(
            VanillaFlConfig::default(),
            &fx.shards,
            &fx.tests[..2],
            &fx.selection,
        );
    }
}
