//! Model-poisoning attack models.
//!
//! The paper's conclusion commits to "deploying and evaluating the robustness
//! of this method on the non-repudiation in various poisonous data attacks";
//! this module supplies those attacks. Each [`Attack`] transforms an honest
//! [`ModelUpdate`] into the adversarial update the compromised peer actually
//! publishes on chain — the signature still binds the attacker, which is what
//! the non-repudiation audit then demonstrates.
//!
//! All attacks are deterministic given the supplied RNG, so experiment runs
//! replay bit-for-bit.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::update::ModelUpdate;

/// A standard-normal sample via Box–Muller (keeps this crate free of a
/// distributions dependency, matching `blockfed-data`).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A model-poisoning transformation applied to an honest local update before
/// it is published.
///
/// # Examples
///
/// ```
/// use blockfed_fl::{Attack, ClientId, ModelUpdate};
/// use rand::SeedableRng;
///
/// let mut update = ModelUpdate::new(ClientId(0), 1, vec![1.0, -2.0], 100);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// Attack::SignFlip { scale: 2.0 }.apply(&mut update, &mut rng);
/// assert_eq!(update.params, vec![-2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Attack {
    /// Negate every parameter and scale: `p ← -scale · p`. The classic
    /// gradient sign-flip; `scale > 1` also boosts magnitude.
    SignFlip {
        /// Magnitude multiplier applied after negation.
        scale: f32,
    },
    /// Add i.i.d. Gaussian noise with standard deviation `sigma` to every
    /// parameter (an *unintended* "noisy model" per the paper's §I, or a
    /// stealthy attack at low `sigma`).
    GaussianNoise {
        /// Noise standard deviation.
        sigma: f32,
    },
    /// Multiply every parameter by `factor` (model-boosting / scaling attack;
    /// with a large factor this dominates any unweighted average).
    Scale {
        /// Magnitude multiplier.
        factor: f32,
    },
    /// Replace all parameters with a constant (free-rider submitting a
    /// trivial artefact; `0.0` is the all-zeros free-rider).
    Constant {
        /// The constant parameter value.
        value: f32,
    },
    /// Corrupt a fraction of parameters to NaN (malformed payload; exercised
    /// by the finiteness defences).
    NanInjection {
        /// Fraction of parameters corrupted, in `[0, 1]`.
        fraction: f32,
    },
    /// Replay the attacker's update from an earlier round (staleness attack):
    /// the params are substituted by the caller-supplied stale snapshot.
    Replay,
}

impl Attack {
    /// Applies the attack to `update`, drawing randomness from `rng`.
    ///
    /// [`Attack::Replay`] needs the stale parameters via [`Attack::apply_with_history`];
    /// calling `apply` leaves a replayed update unchanged (no history available).
    pub fn apply<R: Rng + ?Sized>(&self, update: &mut ModelUpdate, rng: &mut R) {
        self.apply_with_history(update, None, rng);
    }

    /// Applies the attack, supplying `stale` parameters for [`Attack::Replay`].
    pub fn apply_with_history<R: Rng + ?Sized>(
        &self,
        update: &mut ModelUpdate,
        stale: Option<&[f32]>,
        rng: &mut R,
    ) {
        match *self {
            Attack::SignFlip { scale } => {
                for p in &mut update.params {
                    *p *= -scale;
                }
            }
            Attack::GaussianNoise { sigma } => {
                for p in &mut update.params {
                    *p += sigma * gaussian(rng);
                }
            }
            Attack::Scale { factor } => {
                for p in &mut update.params {
                    *p *= factor;
                }
            }
            Attack::Constant { value } => {
                for p in &mut update.params {
                    *p = value;
                }
            }
            Attack::NanInjection { fraction } => {
                let frac = fraction.clamp(0.0, 1.0);
                for p in &mut update.params {
                    if rng.gen::<f32>() < frac {
                        *p = f32::NAN;
                    }
                }
            }
            Attack::Replay => {
                if let Some(old) = stale {
                    if old.len() == update.params.len() {
                        update.params.copy_from_slice(old);
                    }
                }
            }
        }
    }

    /// Whether the attack produces non-finite parameters (and is therefore
    /// caught by finiteness screening rather than statistical defences).
    pub fn is_malformed(&self) -> bool {
        matches!(self, Attack::NanInjection { fraction } if *fraction > 0.0)
    }
}

impl std::fmt::Display for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Attack::SignFlip { scale } => write!(f, "sign-flip(x{scale})"),
            Attack::GaussianNoise { sigma } => write!(f, "gauss-noise(σ={sigma})"),
            Attack::Scale { factor } => write!(f, "scale(x{factor})"),
            Attack::Constant { value } => write!(f, "constant({value})"),
            Attack::NanInjection { fraction } => write!(f, "nan-inject({fraction})"),
            Attack::Replay => write!(f, "replay"),
        }
    }
}

/// Binds an attack to the client that mounts it, with an activation round.
///
/// # Examples
///
/// ```
/// use blockfed_fl::{Adversary, Attack, ClientId};
///
/// // A sleeper: honest for three rounds, then boosts its model 50x.
/// let adv = Adversary::new(ClientId(2), Attack::Scale { factor: 50.0 }).starting_at(4);
/// assert!(!adv.active_in(3));
/// assert!(adv.active_in(4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adversary {
    /// Index of the compromised client.
    pub client: crate::ClientId,
    /// The attack the client mounts.
    pub attack: Attack,
    /// First round (1-based) in which the attack is active; earlier rounds
    /// the client behaves honestly (a sleeper adversary).
    pub from_round: u32,
}

impl Adversary {
    /// An adversary active from round 1.
    pub fn new(client: crate::ClientId, attack: Attack) -> Self {
        Adversary {
            client,
            attack,
            from_round: 1,
        }
    }

    /// Delays activation until `round` (builder style).
    #[must_use]
    pub fn starting_at(mut self, round: u32) -> Self {
        self.from_round = round;
        self
    }

    /// Whether this adversary poisons updates in `round`.
    pub fn active_in(&self, round: u32) -> bool {
        round >= self.from_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::ClientId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn honest() -> ModelUpdate {
        ModelUpdate::new(ClientId(0), 3, vec![1.0, -2.0, 0.5], 100)
    }

    #[test]
    fn sign_flip_negates_and_scales() {
        let mut u = honest();
        Attack::SignFlip { scale: 2.0 }.apply(&mut u, &mut rng());
        assert_eq!(u.params, vec![-2.0, 4.0, -1.0]);
    }

    #[test]
    fn gaussian_noise_perturbs_but_stays_finite() {
        let mut u = honest();
        let before = u.params.clone();
        Attack::GaussianNoise { sigma: 0.1 }.apply(&mut u, &mut rng());
        assert!(u.is_finite());
        assert_ne!(u.params, before);
        // Perturbation magnitude is on the order of sigma.
        for (a, b) in u.params.iter().zip(&before) {
            assert!((a - b).abs() < 1.0);
        }
    }

    #[test]
    fn gaussian_noise_is_deterministic_per_seed() {
        let mut u1 = honest();
        let mut u2 = honest();
        Attack::GaussianNoise { sigma: 0.5 }.apply(&mut u1, &mut rng());
        Attack::GaussianNoise { sigma: 0.5 }.apply(&mut u2, &mut rng());
        assert_eq!(u1.params, u2.params);
    }

    #[test]
    fn scale_boosts_magnitude() {
        let mut u = honest();
        Attack::Scale { factor: 100.0 }.apply(&mut u, &mut rng());
        assert_eq!(u.params, vec![100.0, -200.0, 50.0]);
    }

    #[test]
    fn constant_free_rider_zeroes() {
        let mut u = honest();
        Attack::Constant { value: 0.0 }.apply(&mut u, &mut rng());
        assert_eq!(u.params, vec![0.0; 3]);
    }

    #[test]
    fn nan_injection_corrupts_and_is_flagged_malformed() {
        let mut u = honest();
        Attack::NanInjection { fraction: 1.0 }.apply(&mut u, &mut rng());
        assert!(!u.is_finite());
        assert!(Attack::NanInjection { fraction: 0.5 }.is_malformed());
        assert!(!Attack::NanInjection { fraction: 0.0 }.is_malformed());
        assert!(!Attack::SignFlip { scale: 1.0 }.is_malformed());
    }

    #[test]
    fn nan_injection_fraction_zero_is_noop() {
        let mut u = honest();
        let before = u.params.clone();
        Attack::NanInjection { fraction: 0.0 }.apply(&mut u, &mut rng());
        assert_eq!(u.params, before);
    }

    #[test]
    fn replay_substitutes_history() {
        let mut u = honest();
        let stale = vec![9.0, 9.0, 9.0];
        Attack::Replay.apply_with_history(&mut u, Some(&stale), &mut rng());
        assert_eq!(u.params, stale);
    }

    #[test]
    fn replay_without_history_is_noop() {
        let mut u = honest();
        let before = u.params.clone();
        Attack::Replay.apply(&mut u, &mut rng());
        assert_eq!(u.params, before);
        // Mismatched history length also leaves the update untouched.
        let mut u2 = honest();
        Attack::Replay.apply_with_history(&mut u2, Some(&[1.0]), &mut rng());
        assert_eq!(u2.params, before);
    }

    #[test]
    fn adversary_activation_window() {
        let adv = Adversary::new(ClientId(1), Attack::Scale { factor: 10.0 }).starting_at(4);
        assert!(!adv.active_in(1));
        assert!(!adv.active_in(3));
        assert!(adv.active_in(4));
        assert!(adv.active_in(10));
        // Default activates from round 1.
        assert!(Adversary::new(ClientId(0), Attack::Replay).active_in(1));
    }

    #[test]
    fn attack_display_labels() {
        assert_eq!(Attack::SignFlip { scale: 1.0 }.to_string(), "sign-flip(x1)");
        assert_eq!(Attack::Scale { factor: 5.0 }.to_string(), "scale(x5)");
        assert_eq!(Attack::Constant { value: 0.0 }.to_string(), "constant(0)");
        assert_eq!(Attack::Replay.to_string(), "replay");
        assert!(Attack::GaussianNoise { sigma: 0.1 }
            .to_string()
            .contains("0.1"));
        assert!(Attack::NanInjection { fraction: 0.5 }
            .to_string()
            .contains("0.5"));
    }
}
