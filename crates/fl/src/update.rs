//! Model updates: what a client produces after local training.

use serde::{Deserialize, Serialize};

/// Identifies a federated client. Small indices render as the paper's client
/// letters (`A`, `B`, `C`, …).
///
/// # Examples
///
/// ```
/// use blockfed_fl::ClientId;
///
/// assert_eq!(ClientId(0).to_string(), "A");
/// assert_eq!(ClientId(2).to_string(), "C");
/// assert_eq!(ClientId(30).to_string(), "client#30");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub usize);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "client#{}", self.0)
        }
    }
}

/// A trained local model offered for aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Which client trained it.
    pub client: ClientId,
    /// Communication round it belongs to.
    pub round: u32,
    /// Flat trainable parameters.
    pub params: Vec<f32>,
    /// Number of local training examples (the FedAvg weight).
    pub sample_count: usize,
    /// Size of the full serialized model artifact in bytes — what the
    /// blockchain transaction carries (may exceed `params` for transfer
    /// learning, where frozen weights ship but do not train).
    pub payload_bytes: u64,
}

impl ModelUpdate {
    /// Creates an update; `payload_bytes` defaults to the raw parameter bytes.
    pub fn new(client: ClientId, round: u32, params: Vec<f32>, sample_count: usize) -> Self {
        let payload_bytes = (params.len() as u64) * 4;
        ModelUpdate {
            client,
            round,
            params,
            sample_count,
            payload_bytes,
        }
    }

    /// Overrides the on-chain payload size (builder style).
    #[must_use]
    pub fn with_payload_bytes(mut self, bytes: u64) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Whether all parameters are finite (defense against poisoned/corrupt
    /// updates).
    pub fn is_finite(&self) -> bool {
        self.params.iter().all(|p| p.is_finite())
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_letters() {
        assert_eq!(ClientId(0).to_string(), "A");
        assert_eq!(ClientId(1).to_string(), "B");
        assert_eq!(ClientId(25).to_string(), "Z");
        assert_eq!(ClientId(26).to_string(), "client#26");
    }

    #[test]
    fn default_payload_is_param_bytes() {
        let u = ModelUpdate::new(ClientId(0), 1, vec![0.0; 10], 100);
        assert_eq!(u.payload_bytes, 40);
        assert_eq!(u.param_count(), 10);
        let big = u.clone().with_payload_bytes(21_200_000);
        assert_eq!(big.payload_bytes, 21_200_000);
        assert_eq!(big.params, vec![0.0; 10]);
    }

    #[test]
    fn finiteness_check() {
        let good = ModelUpdate::new(ClientId(0), 0, vec![1.0, -2.0], 1);
        assert!(good.is_finite());
        let bad = ModelUpdate::new(ClientId(0), 0, vec![1.0, f32::NAN], 1);
        assert!(!bad.is_finite());
        let inf = ModelUpdate::new(ClientId(0), 0, vec![f32::INFINITY], 1);
        assert!(!inf.is_finite());
    }

    #[test]
    fn ordering_by_client_then_round() {
        assert!(ClientId(0) < ClientId(1));
    }
}
