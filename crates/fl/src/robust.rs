//! Byzantine-robust aggregation baselines.
//!
//! The paper's "consider" strategy defends aggregation by *searching
//! combinations* against a local test set. The robust-statistics literature
//! defends it by *estimator choice* instead. This module implements the
//! classic baselines — Krum / Multi-Krum (Blanchard et al., NeurIPS 2017),
//! coordinate-wise trimmed mean and median (Yin et al., ICML 2018), and
//! norm-clipped averaging — so the two defence families can be compared under
//! the same attacks (the paper's stated future work: "evaluating the
//! robustness of this method ... in various poisonous data attacks").
//!
//! All rules consume the same [`ModelUpdate`] slices as [`fed_avg`] and return
//! plain parameter vectors, so they slot into the decentralized aggregation
//! path unchanged.
//!
//! [`fed_avg`]: crate::fed_avg

use serde::{Deserialize, Serialize};

use crate::update::ModelUpdate;

/// Error applying a robust aggregation rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RobustError {
    /// No updates were supplied.
    Empty,
    /// Updates disagree on parameter count.
    ShapeMismatch {
        /// Parameter count of the first update.
        expected: usize,
        /// Offending parameter count.
        got: usize,
    },
    /// An update contains NaN or infinite parameters.
    NonFinite,
    /// The rule needs more updates than were supplied (e.g. Krum requires
    /// `n >= 2f + 3` for `f` tolerated Byzantine clients).
    TooFewUpdates {
        /// Minimum update count the rule needs.
        needed: usize,
        /// Updates actually supplied.
        got: usize,
    },
    /// A rule parameter is out of its valid range.
    InvalidParameter(String),
}

impl std::fmt::Display for RobustError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustError::Empty => write!(f, "no updates to aggregate"),
            RobustError::ShapeMismatch { expected, got } => {
                write!(f, "update has {got} parameters, expected {expected}")
            }
            RobustError::NonFinite => write!(f, "update contains non-finite parameters"),
            RobustError::TooFewUpdates { needed, got } => {
                write!(f, "rule needs at least {needed} updates, got {got}")
            }
            RobustError::InvalidParameter(msg) => write!(f, "invalid rule parameter: {msg}"),
        }
    }
}

impl std::error::Error for RobustError {}

fn validate(updates: &[&ModelUpdate]) -> Result<usize, RobustError> {
    let first = updates.first().ok_or(RobustError::Empty)?;
    let dim = first.params.len();
    for u in updates {
        if u.params.len() != dim {
            return Err(RobustError::ShapeMismatch {
                expected: dim,
                got: u.params.len(),
            });
        }
        if !u.is_finite() {
            return Err(RobustError::NonFinite);
        }
    }
    Ok(dim)
}

/// Euclidean (L2) norm of a parameter vector.
///
/// # Examples
///
/// ```
/// use blockfed_fl::robust::l2_norm;
///
/// assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
/// ```
pub fn l2_norm(params: &[f32]) -> f64 {
    params
        .iter()
        .map(|&p| f64::from(p) * f64::from(p))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance between two equal-length parameter vectors.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn l2_distance_sq(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal-length vectors");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum()
}

/// Krum scores: for each update, the sum of squared distances to its
/// `n - f - 2` nearest neighbours (lower is more central).
///
/// # Errors
///
/// Returns [`RobustError::TooFewUpdates`] unless `n >= 2f + 3`, plus the usual
/// shape/finiteness errors.
pub fn krum_scores(updates: &[&ModelUpdate], f: usize) -> Result<Vec<f64>, RobustError> {
    validate(updates)?;
    let n = updates.len();
    let needed = 2 * f + 3;
    if n < needed {
        return Err(RobustError::TooFewUpdates { needed, got: n });
    }
    let closest = n - f - 2;
    // Each update's score is an independent O(n·dim) computation, so the
    // n scores fan out across the compute pool once there is enough work.
    let dim = updates[0].params.len();
    let score_of = |i: usize| -> f64 {
        let mut dists: Vec<f64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| l2_distance_sq(&updates[i].params, &updates[j].params))
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        dists.iter().take(closest).sum()
    };
    let scores = if blockfed_compute::worth_parallelizing(n * n * dim) {
        let indices: Vec<usize> = (0..n).collect();
        blockfed_compute::par_map(&indices, |&i| score_of(i))
    } else {
        (0..n).map(score_of).collect()
    };
    Ok(scores)
}

/// Krum (Blanchard et al., 2017): selects the single update with the smallest
/// Krum score. Returns `(index, params)` so the caller can attribute the
/// winner (for on-chain audit).
///
/// # Errors
///
/// See [`krum_scores`].
pub fn krum(updates: &[&ModelUpdate], f: usize) -> Result<(usize, Vec<f32>), RobustError> {
    let scores = krum_scores(updates, f)?;
    let best = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .expect("non-empty scores");
    Ok((best, updates[best].params.clone()))
}

/// Multi-Krum: average the `m` updates with the lowest Krum scores.
/// Returns the selected indices alongside the aggregate.
///
/// # Errors
///
/// [`RobustError::InvalidParameter`] if `m` is zero or exceeds `n`, plus the
/// conditions of [`krum_scores`].
pub fn multi_krum(
    updates: &[&ModelUpdate],
    f: usize,
    m: usize,
) -> Result<(Vec<usize>, Vec<f32>), RobustError> {
    let n = updates.len();
    if m == 0 || m > n {
        return Err(RobustError::InvalidParameter(format!(
            "multi-krum selection m={m} must be in 1..={n}"
        )));
    }
    let scores = krum_scores(updates, f)?;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut selected: Vec<usize> = order.into_iter().take(m).collect();
    selected.sort_unstable();
    let dim = updates[0].params.len();
    let mut out = vec![0.0f64; dim];
    for &i in &selected {
        for (o, &p) in out.iter_mut().zip(&updates[i].params) {
            *o += f64::from(p) / m as f64;
        }
    }
    Ok((selected, out.into_iter().map(|v| v as f32).collect()))
}

/// Coordinate-wise trimmed mean: per coordinate, drop the `trim` largest and
/// `trim` smallest values, then average the rest (Yin et al., 2018).
///
/// # Errors
///
/// [`RobustError::TooFewUpdates`] unless `n > 2 * trim`, plus shape/finiteness
/// errors.
pub fn trimmed_mean(updates: &[&ModelUpdate], trim: usize) -> Result<Vec<f32>, RobustError> {
    let dim = validate(updates)?;
    let n = updates.len();
    if n <= 2 * trim {
        return Err(RobustError::TooFewUpdates {
            needed: 2 * trim + 1,
            got: n,
        });
    }
    let kept = n - 2 * trim;
    // Coordinates are independent: chunk them across the pool, each worker
    // with its own sort scratch.
    let mut out = vec![0.0f32; dim];
    let kernel = |off: usize, chunk: &mut [f32]| {
        let mut column = vec![0.0f32; n];
        for (li, slot_out) in chunk.iter_mut().enumerate() {
            let c = off + li;
            for (slot, u) in column.iter_mut().zip(updates) {
                *slot = u.params[c];
            }
            column.sort_by(|a, b| a.partial_cmp(b).expect("finite parameters"));
            let sum: f64 = column[trim..n - trim].iter().map(|&v| f64::from(v)).sum();
            *slot_out = (sum / kept as f64) as f32;
        }
    };
    if blockfed_compute::worth_parallelizing(dim * n) {
        blockfed_compute::par_chunks_mut(&mut out, 1, kernel);
    } else if dim > 0 {
        kernel(0, &mut out);
    }
    Ok(out)
}

/// Coordinate-wise median — the `trim`-maximal special case of
/// [`trimmed_mean`]; tolerates any minority of arbitrarily corrupted updates.
///
/// # Errors
///
/// Shape/finiteness errors as in [`trimmed_mean`].
pub fn coordinate_median(updates: &[&ModelUpdate]) -> Result<Vec<f32>, RobustError> {
    let dim = validate(updates)?;
    let n = updates.len();
    let mut out = vec![0.0f32; dim];
    let kernel = |off: usize, chunk: &mut [f32]| {
        let mut column = vec![0.0f32; n];
        for (li, slot_out) in chunk.iter_mut().enumerate() {
            let c = off + li;
            for (slot, u) in column.iter_mut().zip(updates) {
                *slot = u.params[c];
            }
            column.sort_by(|a, b| a.partial_cmp(b).expect("finite parameters"));
            *slot_out = if n % 2 == 1 {
                column[n / 2]
            } else {
                ((f64::from(column[n / 2 - 1]) + f64::from(column[n / 2])) / 2.0) as f32
            };
        }
    };
    if blockfed_compute::worth_parallelizing(dim * n) {
        blockfed_compute::par_chunks_mut(&mut out, 1, kernel);
    } else if dim > 0 {
        kernel(0, &mut out);
    }
    Ok(out)
}

/// Rescales `params` so its L2 norm is at most `max_norm` (no-op when already
/// within bounds). The standard defence against scaling/boosting attacks.
///
/// # Errors
///
/// [`RobustError::InvalidParameter`] when `max_norm` is not strictly positive
/// and finite; [`RobustError::NonFinite`] when `params` contains NaN/inf.
pub fn clip_to_norm(params: &[f32], max_norm: f64) -> Result<Vec<f32>, RobustError> {
    if !(max_norm.is_finite() && max_norm > 0.0) {
        return Err(RobustError::InvalidParameter(format!(
            "max_norm must be positive and finite, got {max_norm}"
        )));
    }
    if params.iter().any(|p| !p.is_finite()) {
        return Err(RobustError::NonFinite);
    }
    let norm = l2_norm(params);
    if norm <= max_norm {
        return Ok(params.to_vec());
    }
    let scale = max_norm / norm;
    Ok(params
        .iter()
        .map(|&p| (f64::from(p) * scale) as f32)
        .collect())
}

/// Sample-weighted mean of norm-clipped updates: each update is clipped to
/// `max_norm` before FedAvg-style weighting.
///
/// # Errors
///
/// Conditions of [`clip_to_norm`] plus shape errors; zero total sample weight
/// is reported as [`RobustError::InvalidParameter`].
pub fn clipped_mean(updates: &[&ModelUpdate], max_norm: f64) -> Result<Vec<f32>, RobustError> {
    let dim = validate(updates)?;
    let total_weight: f64 = updates.iter().map(|u| u.sample_count as f64).sum();
    if total_weight == 0.0 {
        return Err(RobustError::InvalidParameter(
            "total sample weight is zero".into(),
        ));
    }
    let mut out = vec![0.0f64; dim];
    for u in updates {
        let clipped = clip_to_norm(&u.params, max_norm)?;
        let w = u.sample_count as f64 / total_weight;
        for (o, p) in out.iter_mut().zip(clipped) {
            *o += w * f64::from(p);
        }
    }
    Ok(out.into_iter().map(|v| v as f32).collect())
}

/// A robust aggregation rule, selectable at experiment-configuration time.
///
/// # Examples
///
/// ```
/// use blockfed_fl::robust::RobustRule;
/// use blockfed_fl::{ClientId, ModelUpdate};
///
/// let honest = ModelUpdate::new(ClientId(0), 1, vec![1.0], 10);
/// let also = ModelUpdate::new(ClientId(1), 1, vec![1.2], 10);
/// let evil = ModelUpdate::new(ClientId(2), 1, vec![900.0], 10);
/// let agg = RobustRule::Median.apply(&[&honest, &also, &evil])?;
/// assert_eq!(agg, vec![1.2]); // the boosted update cannot move the median
/// # Ok::<(), blockfed_fl::RobustError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RobustRule {
    /// Plain sample-weighted FedAvg (no defence) — the control arm.
    FedAvg,
    /// Krum selecting a single central update, tolerating `f` Byzantine peers.
    Krum {
        /// Number of Byzantine clients tolerated.
        f: usize,
    },
    /// Multi-Krum averaging the `m` most central updates.
    MultiKrum {
        /// Number of Byzantine clients tolerated.
        f: usize,
        /// How many central updates to average.
        m: usize,
    },
    /// Coordinate-wise trimmed mean dropping `trim` per tail.
    TrimmedMean {
        /// Values trimmed from each end of every coordinate.
        trim: usize,
    },
    /// Coordinate-wise median.
    Median,
    /// Norm-clipped weighted mean.
    ClippedMean {
        /// L2 norm ceiling applied to each update before averaging.
        max_norm: f64,
    },
}

impl RobustRule {
    /// Applies the rule to `updates`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying rule's [`RobustError`]; `FedAvg` errors are
    /// mapped onto the matching `RobustError` variants.
    pub fn apply(&self, updates: &[&ModelUpdate]) -> Result<Vec<f32>, RobustError> {
        match *self {
            RobustRule::FedAvg => crate::fed_avg(updates).map_err(|e| match e {
                crate::AggregateError::Empty => RobustError::Empty,
                crate::AggregateError::ShapeMismatch { expected, got } => {
                    RobustError::ShapeMismatch { expected, got }
                }
                crate::AggregateError::NonFinite => RobustError::NonFinite,
                crate::AggregateError::ZeroWeight => {
                    RobustError::InvalidParameter("total sample weight is zero".into())
                }
            }),
            RobustRule::Krum { f } => krum(updates, f).map(|(_, p)| p),
            RobustRule::MultiKrum { f, m } => multi_krum(updates, f, m).map(|(_, p)| p),
            RobustRule::TrimmedMean { trim } => trimmed_mean(updates, trim),
            RobustRule::Median => coordinate_median(updates),
            RobustRule::ClippedMean { max_norm } => clipped_mean(updates, max_norm),
        }
    }

    /// Minimum honest-update count the rule needs to run at all.
    pub fn min_updates(&self) -> usize {
        match *self {
            RobustRule::FedAvg | RobustRule::Median => 1,
            RobustRule::Krum { f } | RobustRule::MultiKrum { f, .. } => 2 * f + 3,
            RobustRule::TrimmedMean { trim } => 2 * trim + 1,
            RobustRule::ClippedMean { .. } => 1,
        }
    }
}

impl std::fmt::Display for RobustRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustRule::FedAvg => write!(f, "fedavg"),
            RobustRule::Krum { f: tol } => write!(f, "krum(f={tol})"),
            RobustRule::MultiKrum { f: tol, m } => write!(f, "multi-krum(f={tol},m={m})"),
            RobustRule::TrimmedMean { trim } => write!(f, "trimmed-mean(k={trim})"),
            RobustRule::Median => write!(f, "median"),
            RobustRule::ClippedMean { max_norm } => write!(f, "clipped-mean(c={max_norm})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::ClientId;

    fn upd(client: usize, params: Vec<f32>) -> ModelUpdate {
        ModelUpdate::new(ClientId(client), 0, params, 10)
    }

    /// Five close honest updates around 1.0 plus one far outlier.
    fn honest_plus_outlier() -> Vec<ModelUpdate> {
        vec![
            upd(0, vec![1.00, 1.00]),
            upd(1, vec![1.10, 0.90]),
            upd(2, vec![0.90, 1.10]),
            upd(3, vec![1.05, 0.95]),
            upd(4, vec![0.95, 1.05]),
            upd(5, vec![100.0, -100.0]), // attacker
        ]
    }

    fn refs(v: &[ModelUpdate]) -> Vec<&ModelUpdate> {
        v.iter().collect()
    }

    #[test]
    fn l2_helpers() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn distance_panics_on_length_mismatch() {
        let _ = l2_distance_sq(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn krum_rejects_the_outlier() {
        let updates = honest_plus_outlier();
        let (idx, params) = krum(&refs(&updates), 1).unwrap();
        assert_ne!(idx, 5, "krum must not select the attacker");
        assert!(l2_norm(&params) < 2.0);
    }

    #[test]
    fn krum_scores_rank_outlier_worst() {
        let updates = honest_plus_outlier();
        let scores = krum_scores(&refs(&updates), 1).unwrap();
        let worst = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(worst, 5);
    }

    #[test]
    fn krum_needs_2f_plus_3() {
        let updates: Vec<ModelUpdate> = (0..4).map(|i| upd(i, vec![i as f32])).collect();
        assert_eq!(
            krum(&refs(&updates), 1),
            Err(RobustError::TooFewUpdates { needed: 5, got: 4 })
        );
    }

    #[test]
    fn multi_krum_averages_central_updates() {
        let updates = honest_plus_outlier();
        let (selected, params) = multi_krum(&refs(&updates), 1, 3).unwrap();
        assert_eq!(selected.len(), 3);
        assert!(!selected.contains(&5), "attacker selected by multi-krum");
        // Average of three near-1.0 updates stays near 1.0.
        assert!((f64::from(params[0]) - 1.0).abs() < 0.2);
        assert!((f64::from(params[1]) - 1.0).abs() < 0.2);
    }

    #[test]
    fn multi_krum_rejects_bad_m() {
        let updates = honest_plus_outlier();
        assert!(matches!(
            multi_krum(&refs(&updates), 1, 0),
            Err(RobustError::InvalidParameter(_))
        ));
        assert!(matches!(
            multi_krum(&refs(&updates), 1, 7),
            Err(RobustError::InvalidParameter(_))
        ));
    }

    #[test]
    fn trimmed_mean_removes_tails() {
        let updates = vec![
            upd(0, vec![1.0]),
            upd(1, vec![2.0]),
            upd(2, vec![3.0]),
            upd(3, vec![4.0]),
            upd(4, vec![1000.0]), // attacker inflates the top tail
        ];
        let out = trimmed_mean(&refs(&updates), 1).unwrap();
        // Drops 1.0 and 1000.0; mean of {2,3,4} = 3.
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn trimmed_mean_zero_trim_is_unweighted_mean() {
        let updates = vec![upd(0, vec![1.0, 2.0]), upd(1, vec![3.0, 6.0])];
        assert_eq!(trimmed_mean(&refs(&updates), 0).unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn trimmed_mean_needs_enough_updates() {
        let updates = vec![upd(0, vec![1.0]), upd(1, vec![2.0])];
        assert_eq!(
            trimmed_mean(&refs(&updates), 1),
            Err(RobustError::TooFewUpdates { needed: 3, got: 2 })
        );
    }

    #[test]
    fn median_odd_and_even() {
        let odd = vec![upd(0, vec![1.0]), upd(1, vec![9.0]), upd(2, vec![2.0])];
        assert_eq!(coordinate_median(&refs(&odd)).unwrap(), vec![2.0]);
        let even = vec![upd(0, vec![1.0]), upd(1, vec![3.0])];
        assert_eq!(coordinate_median(&refs(&even)).unwrap(), vec![2.0]);
    }

    #[test]
    fn median_survives_minority_corruption() {
        let updates = vec![
            upd(0, vec![1.0, -1.0]),
            upd(1, vec![1.1, -0.9]),
            upd(2, vec![0.9, -1.1]),
            upd(3, vec![1e6, -1e6]),
            upd(4, vec![-1e6, 1e6]),
        ];
        let out = coordinate_median(&refs(&updates)).unwrap();
        assert!((f64::from(out[0]) - 1.0).abs() < 0.2);
        assert!((f64::from(out[1]) + 1.0).abs() < 0.2);
    }

    #[test]
    fn clip_leaves_small_vectors_alone() {
        let p = vec![0.3, 0.4];
        assert_eq!(clip_to_norm(&p, 1.0).unwrap(), p);
    }

    #[test]
    fn clip_rescales_to_exactly_max_norm() {
        let clipped = clip_to_norm(&[30.0, 40.0], 5.0).unwrap();
        assert!((l2_norm(&clipped) - 5.0).abs() < 1e-6);
        // Direction preserved.
        assert!((f64::from(clipped[0]) - 3.0).abs() < 1e-6);
        assert!((f64::from(clipped[1]) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn clip_rejects_bad_inputs() {
        assert!(matches!(
            clip_to_norm(&[1.0], 0.0),
            Err(RobustError::InvalidParameter(_))
        ));
        assert!(matches!(
            clip_to_norm(&[1.0], f64::NAN),
            Err(RobustError::InvalidParameter(_))
        ));
        assert_eq!(clip_to_norm(&[f32::NAN], 1.0), Err(RobustError::NonFinite));
    }

    #[test]
    fn clipped_mean_neutralizes_boosting() {
        // Attacker boosts by 1000x; clipping to the honest norm restores sanity.
        let updates = vec![
            upd(0, vec![1.0, 0.0]),
            upd(1, vec![0.0, 1.0]),
            upd(2, vec![1000.0, 1000.0]),
        ];
        let out = clipped_mean(&refs(&updates), 1.0).unwrap();
        assert!(l2_norm(&out) <= 1.0 + 1e-6);
    }

    #[test]
    fn rule_dispatch_matches_direct_calls() {
        let updates = honest_plus_outlier();
        let refs = refs(&updates);
        assert_eq!(
            RobustRule::Krum { f: 1 }.apply(&refs).unwrap(),
            krum(&refs, 1).unwrap().1
        );
        assert_eq!(
            RobustRule::TrimmedMean { trim: 1 }.apply(&refs).unwrap(),
            trimmed_mean(&refs, 1).unwrap()
        );
        assert_eq!(
            RobustRule::Median.apply(&refs).unwrap(),
            coordinate_median(&refs).unwrap()
        );
        assert_eq!(
            RobustRule::FedAvg.apply(&refs).unwrap(),
            crate::fed_avg(&refs).unwrap()
        );
    }

    #[test]
    fn rule_min_updates() {
        assert_eq!(RobustRule::FedAvg.min_updates(), 1);
        assert_eq!(RobustRule::Krum { f: 1 }.min_updates(), 5);
        assert_eq!(RobustRule::MultiKrum { f: 2, m: 3 }.min_updates(), 7);
        assert_eq!(RobustRule::TrimmedMean { trim: 2 }.min_updates(), 5);
        assert_eq!(RobustRule::Median.min_updates(), 1);
    }

    #[test]
    fn rule_display_labels() {
        assert_eq!(RobustRule::FedAvg.to_string(), "fedavg");
        assert_eq!(RobustRule::Krum { f: 1 }.to_string(), "krum(f=1)");
        assert_eq!(
            RobustRule::MultiKrum { f: 1, m: 3 }.to_string(),
            "multi-krum(f=1,m=3)"
        );
        assert_eq!(
            RobustRule::TrimmedMean { trim: 1 }.to_string(),
            "trimmed-mean(k=1)"
        );
        assert_eq!(RobustRule::Median.to_string(), "median");
        assert_eq!(
            RobustRule::ClippedMean { max_norm: 2.0 }.to_string(),
            "clipped-mean(c=2)"
        );
    }

    #[test]
    fn errors_propagate_from_validation() {
        assert_eq!(coordinate_median(&[]), Err(RobustError::Empty));
        let a = upd(0, vec![1.0]);
        let b = upd(1, vec![1.0, 2.0]);
        assert_eq!(
            coordinate_median(&[&a, &b]),
            Err(RobustError::ShapeMismatch {
                expected: 1,
                got: 2
            })
        );
        let nan = upd(0, vec![f32::NAN]);
        assert_eq!(coordinate_median(&[&nan]), Err(RobustError::NonFinite));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(RobustError::Empty.to_string().contains("no updates"));
        assert!(RobustError::TooFewUpdates { needed: 5, got: 4 }
            .to_string()
            .contains('5'));
        assert!(RobustError::InvalidParameter("x".into())
            .to_string()
            .contains('x'));
        assert!(RobustError::ShapeMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains('2'));
        assert!(RobustError::NonFinite.to_string().contains("non-finite"));
    }
}
