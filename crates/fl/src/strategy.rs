//! The paper's two aggregation strategies.
//!
//! * **"not consider"** — Vanilla FedAvg over every received update.
//! * **"consider"** — enumerate model combinations, evaluate each candidate
//!   aggregate on a test set, and keep the best (ties broken uniformly at
//!   random, as in §IV-B1: "the device selects one of them randomly").

use rand::Rng;

use crate::fedavg::{fed_avg, AggregateError};
use crate::selector::{all_combinations, Combination};
use crate::update::{ClientId, ModelUpdate};

/// Aggregation strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Aggregate all updates (the paper's "not consider").
    NotConsider,
    /// Search all combinations and keep the best on a test set ("consider").
    Consider,
    /// Aggregate the `k` best *standalone* models (by test-set score) — the
    /// §III knob "each aggregator can desire how many local updates she/he
    /// would use to aggregate", at linear rather than exponential cost.
    /// `k ≥ n` degrades to aggregating everything.
    BestK(usize),
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::NotConsider => write!(f, "not consider"),
            Strategy::Consider => write!(f, "consider"),
            Strategy::BestK(k) => write!(f, "best-{k}"),
        }
    }
}

/// The outcome of an aggregation decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationOutcome {
    /// The chosen aggregated parameters.
    pub params: Vec<f32>,
    /// Which combination produced them.
    pub combination: Combination,
    /// The evaluation score of the chosen candidate.
    pub score: f64,
    /// Every candidate evaluated, with its score (for the paper's per-
    /// combination tables).
    pub candidates: Vec<(Combination, f64)>,
}

/// Scores batches of candidate parameter vectors (higher is better;
/// typically test-set accuracy).
///
/// Receiving whole batches lets evaluators score candidates concurrently —
/// the decentralized orchestrator fans a round's combination search across
/// the compute pool through this trait. Any `FnMut(&[f32]) -> f64` closure is
/// an evaluator (scoring serially), so closure-based call sites keep working.
pub trait CandidateEvaluator {
    /// Returns one score per candidate, in order.
    fn score_batch(&mut self, candidates: &[&[f32]]) -> Vec<f64>;
}

impl<F: FnMut(&[f32]) -> f64> CandidateEvaluator for F {
    fn score_batch(&mut self, candidates: &[&[f32]]) -> Vec<f64> {
        candidates.iter().map(|c| self(c)).collect()
    }
}

/// Aggregates `updates` under `strategy`, scoring candidates with `evaluate`
/// (higher is better; typically test-set accuracy).
///
/// # Errors
///
/// Returns [`AggregateError`] if the updates cannot be aggregated at all.
pub fn aggregate<R: Rng + ?Sized>(
    strategy: Strategy,
    updates: &[&ModelUpdate],
    mut evaluate: impl FnMut(&[f32]) -> f64,
    rng: &mut R,
) -> Result<AggregationOutcome, AggregateError> {
    aggregate_with(strategy, updates, &mut evaluate, rng)
}

/// [`aggregate`] with an explicit [`CandidateEvaluator`], allowing candidate
/// scoring to run in parallel. Candidate *construction* (the per-combination
/// FedAvg) always fans out across the compute pool.
///
/// # Errors
///
/// Returns [`AggregateError`] if the updates cannot be aggregated at all.
pub fn aggregate_with<E: CandidateEvaluator + ?Sized, R: Rng + ?Sized>(
    strategy: Strategy,
    updates: &[&ModelUpdate],
    evaluator: &mut E,
    rng: &mut R,
) -> Result<AggregationOutcome, AggregateError> {
    match strategy {
        Strategy::NotConsider => {
            let params = fed_avg(updates)?;
            let members: Vec<ClientId> = updates.iter().map(|u| u.client).collect();
            let combination = Combination::new(members);
            let score = evaluator.score_batch(&[&params])[0];
            Ok(AggregationOutcome {
                params,
                combination: combination.clone(),
                score,
                candidates: vec![(combination, score)],
            })
        }
        Strategy::Consider => {
            if updates.is_empty() {
                return Err(AggregateError::Empty);
            }
            let clients: Vec<ClientId> = {
                let mut c: Vec<ClientId> = updates.iter().map(|u| u.client).collect();
                c.sort();
                c.dedup();
                c
            };
            // Build every candidate aggregate in parallel once there is
            // enough work: each combination's FedAvg is independent.
            let combos: Vec<Combination> = all_combinations(&clients);
            let average_of = |combo: &Combination| {
                let member_updates: Vec<&ModelUpdate> = updates
                    .iter()
                    .copied()
                    .filter(|u| combo.contains(u.client))
                    .collect();
                fed_avg(&member_updates)
            };
            let dim = updates[0].params.len();
            let averaged: Vec<Result<Vec<f32>, AggregateError>> =
                if blockfed_compute::worth_parallelizing(combos.len() * dim) {
                    blockfed_compute::par_map(&combos, average_of)
                } else {
                    combos.iter().map(average_of).collect()
                };
            let mut params_list = Vec::with_capacity(combos.len());
            for result in averaged {
                params_list.push(result?);
            }
            let refs: Vec<&[f32]> = params_list.iter().map(Vec::as_slice).collect();
            let scores = evaluator.score_batch(&refs);
            let candidates: Vec<(Combination, f64, Vec<f32>)> = combos
                .into_iter()
                .zip(scores)
                .zip(params_list)
                .map(|((combo, score), params)| (combo, score, params))
                .collect();
            // Highest score wins; ties broken uniformly at random.
            let best_score = candidates
                .iter()
                .map(|(_, s, _)| *s)
                .fold(f64::NEG_INFINITY, f64::max);
            let tied: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(_, (_, s, _))| *s == best_score)
                .map(|(i, _)| i)
                .collect();
            let chosen = tied[rng.gen_range(0..tied.len())];
            let (combination, score, params) = candidates[chosen].clone();
            Ok(AggregationOutcome {
                params,
                combination,
                score,
                candidates: candidates.into_iter().map(|(c, s, _)| (c, s)).collect(),
            })
        }
        Strategy::BestK(k) => {
            if updates.is_empty() || k == 0 {
                return Err(AggregateError::Empty);
            }
            // Rank models by standalone score; ties broken uniformly at
            // random among equal scores via a random jitter key drawn per
            // update (deterministic given the rng).
            let standalone: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
            let scores = evaluator.score_batch(&standalone);
            let mut ranked: Vec<(f64, f64, &ModelUpdate)> = updates
                .iter()
                .zip(scores)
                .map(|(&u, s)| (s, rng.gen::<f64>(), u))
                .collect();
            ranked.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("finite standalone scores")
                    .then(b.1.partial_cmp(&a.1).expect("finite jitter"))
            });
            let selected: Vec<&ModelUpdate> = ranked
                .iter()
                .take(k.min(ranked.len()))
                .map(|(_, _, u)| *u)
                .collect();
            let params = fed_avg(&selected)?;
            let members: Vec<ClientId> = selected.iter().map(|u| u.client).collect();
            let combination = Combination::new(members);
            let score = evaluator.score_batch(&[&params])[0];
            Ok(AggregationOutcome {
                params,
                combination: combination.clone(),
                score,
                candidates: vec![(combination, score)],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn upd(client: usize, params: Vec<f32>) -> ModelUpdate {
        ModelUpdate::new(ClientId(client), 0, params, 10)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn not_consider_averages_everything() {
        let a = upd(0, vec![0.0]);
        let b = upd(1, vec![2.0]);
        let out = aggregate(
            Strategy::NotConsider,
            &[&a, &b],
            |p| f64::from(p[0]),
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out.params, vec![1.0]);
        assert_eq!(out.combination.len(), 2);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn consider_explores_all_candidates() {
        let a = upd(0, vec![0.0]);
        let b = upd(1, vec![2.0]);
        let c = upd(2, vec![4.0]);
        let out = aggregate(
            Strategy::Consider,
            &[&a, &b, &c],
            |p| f64::from(p[0]),
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out.candidates.len(), 7);
        // Highest mean is the singleton {C} with 4.0.
        assert_eq!(out.params, vec![4.0]);
        assert_eq!(out.combination.members(), &[ClientId(2)]);
        assert_eq!(out.score, 4.0);
    }

    #[test]
    fn consider_beats_or_matches_not_consider_on_the_selection_metric() {
        let a = upd(0, vec![1.0, -5.0]);
        let b = upd(1, vec![-3.0, 2.0]);
        let c = upd(2, vec![0.5, 0.5]);
        let score = |p: &[f32]| -> f64 { -f64::from(p.iter().map(|x| x * x).sum::<f32>()) };
        let all = [&a, &b, &c];
        let consider = aggregate(Strategy::Consider, &all, score, &mut rng()).unwrap();
        let not = aggregate(Strategy::NotConsider, &all, score, &mut rng()).unwrap();
        assert!(consider.score >= not.score);
    }

    #[test]
    fn ties_are_broken_randomly_but_deterministically_per_seed() {
        let a = upd(0, vec![1.0]);
        let b = upd(1, vec![1.0]);
        // All candidates score identically.
        let pick = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            aggregate(Strategy::Consider, &[&a, &b], |_| 0.5, &mut r)
                .unwrap()
                .combination
        };
        assert_eq!(pick(1), pick(1));
        // Across seeds, at least two different combinations must appear.
        let distinct: std::collections::HashSet<_> = (0..16).map(pick).collect();
        assert!(distinct.len() >= 2, "tie-break never varied");
    }

    #[test]
    fn empty_updates_error() {
        assert!(matches!(
            aggregate(Strategy::Consider, &[], |_| 0.0, &mut rng()),
            Err(AggregateError::Empty)
        ));
        assert!(matches!(
            aggregate(Strategy::NotConsider, &[], |_| 0.0, &mut rng()),
            Err(AggregateError::Empty)
        ));
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::NotConsider.to_string(), "not consider");
        assert_eq!(Strategy::Consider.to_string(), "consider");
        assert_eq!(Strategy::BestK(2).to_string(), "best-2");
    }

    #[test]
    fn best_k_selects_highest_standalone_models() {
        let a = upd(0, vec![1.0]);
        let b = upd(1, vec![5.0]);
        let c = upd(2, vec![3.0]);
        // Standalone score = the parameter value itself.
        let out = aggregate(
            Strategy::BestK(2),
            &[&a, &b, &c],
            |p| f64::from(p[0]),
            &mut rng(),
        )
        .unwrap();
        // Best two are B (5.0) and C (3.0); equal weights → mean 4.0.
        assert_eq!(out.params, vec![4.0]);
        assert_eq!(out.combination.members(), &[ClientId(1), ClientId(2)]);
        assert_eq!(out.candidates.len(), 1);
    }

    #[test]
    fn best_k_oversized_k_uses_everything() {
        let a = upd(0, vec![0.0]);
        let b = upd(1, vec![2.0]);
        let out = aggregate(
            Strategy::BestK(10),
            &[&a, &b],
            |p| f64::from(p[0]),
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out.params, vec![1.0]);
        assert_eq!(out.combination.len(), 2);
    }

    #[test]
    fn best_one_is_the_single_best_model() {
        let a = upd(0, vec![1.0]);
        let b = upd(1, vec![9.0]);
        let out = aggregate(
            Strategy::BestK(1),
            &[&a, &b],
            |p| f64::from(p[0]),
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out.params, vec![9.0]);
        assert_eq!(out.combination.members(), &[ClientId(1)]);
    }

    #[test]
    fn best_k_zero_and_empty_error() {
        let a = upd(0, vec![1.0]);
        assert!(matches!(
            aggregate(Strategy::BestK(0), &[&a], |_| 0.0, &mut rng()),
            Err(AggregateError::Empty)
        ));
        assert!(matches!(
            aggregate(Strategy::BestK(2), &[], |_| 0.0, &mut rng()),
            Err(AggregateError::Empty)
        ));
    }

    #[test]
    fn best_k_tie_break_is_deterministic_per_seed_but_varies() {
        let a = upd(0, vec![1.0]);
        let b = upd(1, vec![1.0]);
        let c = upd(2, vec![1.0]);
        let pick = |seed: u64| {
            let mut r = StdRng::seed_from_u64(seed);
            aggregate(Strategy::BestK(1), &[&a, &b, &c], |_| 0.5, &mut r)
                .unwrap()
                .combination
        };
        assert_eq!(pick(3), pick(3));
        let distinct: std::collections::HashSet<_> = (0..24).map(pick).collect();
        assert!(distinct.len() >= 2, "tie-break never varied");
    }
}
