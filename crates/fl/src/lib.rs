//! Federated-learning core: FedAvg, aggregation strategies, wait policies and
//! the Vanilla (centralized) FL driver the paper compares against.
//!
//! The decentralized, blockchain-coupled variant lives in `blockfed-core`; this
//! crate is deliberately independent of the chain so the two settings share the
//! exact same learning machinery.
//!
//! # Examples
//!
//! ```
//! use blockfed_fl::{fed_avg, ClientId, ModelUpdate};
//!
//! let a = ModelUpdate::new(ClientId(0), 1, vec![1.0, 1.0], 10);
//! let b = ModelUpdate::new(ClientId(1), 1, vec![3.0, 5.0], 10);
//! assert_eq!(fed_avg(&[&a, &b])?, vec![2.0, 3.0]);
//! # Ok::<(), blockfed_fl::AggregateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_policy;
pub mod async_round;
pub mod attack;
pub mod fedavg;
pub mod robust;
pub mod round;
pub mod selector;
pub mod staleness;
pub mod strategy;
pub mod update;

pub use async_policy::WaitPolicy;
pub use async_round::{AsyncFl, AsyncFlConfig, AsyncFlRun, MergeRecord};
pub use attack::{Adversary, Attack};
pub use fedavg::{fed_avg, fed_avg_unweighted, AggregateError};
pub use robust::{RobustError, RobustRule};
pub use round::{RoundRecord, VanillaFl, VanillaFlConfig, VanillaRun};
pub use selector::{all_combinations, threshold_filter, Combination};
pub use staleness::{AgeOfBlock, AsyncMerger, MergeError, StalenessDecay};
pub use strategy::{aggregate, aggregate_with, AggregationOutcome, CandidateEvaluator, Strategy};
pub use update::{ClientId, ModelUpdate};
