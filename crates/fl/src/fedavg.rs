//! Federated averaging (McMahan et al., AISTATS 2017).

use crate::update::ModelUpdate;

/// Error aggregating model updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// No updates were supplied.
    Empty,
    /// Updates disagree on parameter count.
    ShapeMismatch {
        /// Parameter count of the first update.
        expected: usize,
        /// Offending parameter count.
        got: usize,
    },
    /// Every update has zero sample weight.
    ZeroWeight,
    /// An update contains NaN or infinite parameters.
    NonFinite,
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::Empty => write!(f, "no updates to aggregate"),
            AggregateError::ShapeMismatch { expected, got } => {
                write!(f, "update has {got} parameters, expected {expected}")
            }
            AggregateError::ZeroWeight => write!(f, "total sample weight is zero"),
            AggregateError::NonFinite => write!(f, "update contains non-finite parameters"),
        }
    }
}

impl std::error::Error for AggregateError {}

/// Sample-count-weighted parameter mean of the given updates.
///
/// # Errors
///
/// Returns [`AggregateError`] on empty input, shape disagreement, zero total
/// weight, or non-finite parameters.
///
/// # Examples
///
/// ```
/// use blockfed_fl::{fed_avg, ClientId, ModelUpdate};
///
/// let a = ModelUpdate::new(ClientId(0), 0, vec![0.0, 0.0], 1);
/// let b = ModelUpdate::new(ClientId(1), 0, vec![2.0, 4.0], 3);
/// let avg = fed_avg(&[&a, &b])?;
/// assert_eq!(avg, vec![1.5, 3.0]); // weighted 1:3
/// # Ok::<(), blockfed_fl::AggregateError>(())
/// ```
pub fn fed_avg(updates: &[&ModelUpdate]) -> Result<Vec<f32>, AggregateError> {
    let first = updates.first().ok_or(AggregateError::Empty)?;
    let dim = first.params.len();
    let mut total_weight = 0.0f64;
    for u in updates {
        if u.params.len() != dim {
            return Err(AggregateError::ShapeMismatch {
                expected: dim,
                got: u.params.len(),
            });
        }
        if !u.is_finite() {
            return Err(AggregateError::NonFinite);
        }
        total_weight += u.sample_count as f64;
    }
    if total_weight == 0.0 {
        return Err(AggregateError::ZeroWeight);
    }
    let weights: Vec<f64> = updates
        .iter()
        .map(|u| u.sample_count as f64 / total_weight)
        .collect();
    Ok(weighted_mean(updates, &weights, dim))
}

/// The shared weighted-mean kernel: coordinates are independent, so the
/// output splits into contiguous chunks across the compute pool. Each
/// coordinate accumulates its updates in slice order regardless of chunking,
/// so results are bit-identical at every thread count.
fn weighted_mean(updates: &[&ModelUpdate], weights: &[f64], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f64; dim];
    let kernel = |off: usize, chunk: &mut [f64]| {
        for (u, &w) in updates.iter().zip(weights) {
            let params = &u.params[off..off + chunk.len()];
            for (o, &p) in chunk.iter_mut().zip(params) {
                *o += w * f64::from(p);
            }
        }
    };
    if blockfed_compute::worth_parallelizing(dim * updates.len()) {
        blockfed_compute::par_chunks_mut(&mut out, 1, kernel);
    } else if dim > 0 {
        kernel(0, &mut out);
    }
    out.into_iter().map(|v| v as f32).collect()
}

/// Unweighted parameter mean (every client counts equally).
///
/// # Errors
///
/// Same conditions as [`fed_avg`] except zero weights are allowed.
pub fn fed_avg_unweighted(updates: &[&ModelUpdate]) -> Result<Vec<f32>, AggregateError> {
    let first = updates.first().ok_or(AggregateError::Empty)?;
    let dim = first.params.len();
    for u in updates {
        if u.params.len() != dim {
            return Err(AggregateError::ShapeMismatch {
                expected: dim,
                got: u.params.len(),
            });
        }
        if !u.is_finite() {
            return Err(AggregateError::NonFinite);
        }
    }
    let n = updates.len() as f64;
    let weights = vec![1.0 / n; updates.len()];
    Ok(weighted_mean(updates, &weights, dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::ClientId;

    fn upd(client: usize, params: Vec<f32>, weight: usize) -> ModelUpdate {
        ModelUpdate::new(ClientId(client), 0, params, weight)
    }

    #[test]
    fn equal_weights_give_plain_mean() {
        let a = upd(0, vec![1.0, 2.0], 10);
        let b = upd(1, vec![3.0, 6.0], 10);
        assert_eq!(fed_avg(&[&a, &b]).unwrap(), vec![2.0, 4.0]);
    }

    #[test]
    fn weighting_by_sample_count() {
        let a = upd(0, vec![0.0], 1);
        let b = upd(1, vec![10.0], 9);
        assert_eq!(fed_avg(&[&a, &b]).unwrap(), vec![9.0]);
    }

    #[test]
    fn single_update_is_identity() {
        let a = upd(0, vec![1.5, -2.5, 3.0], 7);
        assert_eq!(fed_avg(&[&a]).unwrap(), a.params);
        assert_eq!(fed_avg_unweighted(&[&a]).unwrap(), a.params);
    }

    #[test]
    fn idempotence_averaging_identical_models() {
        let a = upd(0, vec![0.25, -0.75], 5);
        let b = upd(1, vec![0.25, -0.75], 50);
        let c = upd(2, vec![0.25, -0.75], 500);
        assert_eq!(fed_avg(&[&a, &b, &c]).unwrap(), vec![0.25, -0.75]);
    }

    #[test]
    fn convexity_mean_stays_in_range() {
        let a = upd(0, vec![-1.0, 5.0], 3);
        let b = upd(1, vec![1.0, 7.0], 11);
        let avg = fed_avg(&[&a, &b]).unwrap();
        assert!((-1.0..=1.0).contains(&avg[0]));
        assert!((5.0..=7.0).contains(&avg[1]));
    }

    #[test]
    fn unweighted_ignores_sample_counts() {
        let a = upd(0, vec![0.0], 1);
        let b = upd(1, vec![10.0], 999);
        assert_eq!(fed_avg_unweighted(&[&a, &b]).unwrap(), vec![5.0]);
    }

    #[test]
    fn error_on_empty() {
        assert_eq!(fed_avg(&[]), Err(AggregateError::Empty));
        assert_eq!(fed_avg_unweighted(&[]), Err(AggregateError::Empty));
    }

    #[test]
    fn error_on_shape_mismatch() {
        let a = upd(0, vec![1.0], 1);
        let b = upd(1, vec![1.0, 2.0], 1);
        assert_eq!(
            fed_avg(&[&a, &b]),
            Err(AggregateError::ShapeMismatch {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn error_on_zero_weight() {
        let a = upd(0, vec![1.0], 0);
        let b = upd(1, vec![2.0], 0);
        assert_eq!(fed_avg(&[&a, &b]), Err(AggregateError::ZeroWeight));
        // Unweighted path accepts zero sample counts.
        assert_eq!(fed_avg_unweighted(&[&a, &b]).unwrap(), vec![1.5]);
    }

    #[test]
    fn error_on_non_finite() {
        let a = upd(0, vec![f32::NAN], 1);
        assert_eq!(fed_avg(&[&a]), Err(AggregateError::NonFinite));
    }

    #[test]
    fn error_display() {
        assert!(AggregateError::Empty.to_string().contains("no updates"));
        assert!(AggregateError::ShapeMismatch {
            expected: 3,
            got: 5
        }
        .to_string()
        .contains('5'));
        assert!(AggregateError::ZeroWeight.to_string().contains("zero"));
        assert!(AggregateError::NonFinite.to_string().contains("non-finite"));
    }
}
