//! Fully asynchronous FL driver (FedAsync-style), for the paper's future-work
//! question: "the impact of an arbitrary number of local updates on each peer
//! in asynchronous communication is another intriguing question we aim to
//! explore for optimal values".
//!
//! Unlike the round-based drivers ([`VanillaFl`] waits for all clients;
//! the decentralized orchestrator waits for a [`WaitPolicy`]), this driver
//! never waits: clients train continuously at heterogeneous speeds and the
//! server folds each update in the moment it arrives, discounted by its
//! staleness via an [`AsyncMerger`]. Sweeping the mixing rate `alpha` and the
//! [`StalenessDecay`] maps the speed-precision frontier of full asynchrony.
//!
//! [`VanillaFl`]: crate::VanillaFl
//! [`WaitPolicy`]: crate::WaitPolicy

use blockfed_data::{Batcher, Dataset};
use blockfed_nn::{Sequential, Sgd};
use rand::Rng;

use crate::staleness::{AsyncMerger, StalenessDecay};
use crate::update::ClientId;

/// Configuration of a fully asynchronous FL run.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncFlConfig {
    /// Total number of updates the server merges before stopping.
    pub total_merges: u32,
    /// Local epochs per client iteration.
    pub local_epochs: usize,
    /// Mini-batch size for local training.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Base mixing rate α (FedAsync); the fraction of a perfectly fresh
    /// update folded into the global model.
    pub alpha: f64,
    /// How the mixing weight decays with staleness.
    pub decay: StalenessDecay,
    /// Relative training speed of each client (updates per unit virtual
    /// time; must be positive). Length sets the client count.
    pub client_speeds: Vec<f64>,
    /// Evaluate the global model every this many merges (1 = every merge).
    pub eval_every: u32,
    /// Split each client's mini-batches across `blockfed-compute` workers
    /// (`blockfed_nn::Sequential::par_train_epochs`). Bit-identical to the
    /// sequential loop at any thread count.
    pub batch_parallel: bool,
}

impl Default for AsyncFlConfig {
    fn default() -> Self {
        AsyncFlConfig {
            total_merges: 30,
            local_epochs: 1,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            alpha: 0.6,
            decay: StalenessDecay::Polynomial { a: 0.5 },
            client_speeds: vec![1.0, 1.0, 1.0],
            eval_every: 1,
            batch_parallel: false,
        }
    }
}

impl AsyncFlConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_merges == 0 {
            return Err("total_merges must be positive".into());
        }
        if self.client_speeds.len() < 2 {
            return Err("need at least two clients".into());
        }
        if self
            .client_speeds
            .iter()
            .any(|&s| !(s.is_finite() && s > 0.0))
        {
            return Err("client speeds must be positive and finite".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be positive".into());
        }
        Ok(())
    }
}

/// One server-side merge event.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeRecord {
    /// 1-based merge sequence number (the server's model version after it).
    pub merge: u32,
    /// The client whose update was folded in.
    pub client: ClientId,
    /// Server versions that elapsed while the client trained.
    pub staleness: u32,
    /// Effective mixing weight after staleness decay.
    pub weight: f64,
    /// Virtual time of the merge.
    pub at: f64,
    /// Global-model accuracy right after the merge (only on `eval_every`
    /// boundaries).
    pub accuracy: Option<f64>,
}

/// The complete result of an asynchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncFlRun {
    /// One record per merge, in merge order.
    pub records: Vec<MergeRecord>,
    /// Final global parameters.
    pub final_params: Vec<f32>,
    /// Final global accuracy on the evaluation set.
    pub final_accuracy: f64,
    /// Virtual time of the last merge.
    pub finished_at: f64,
}

impl AsyncFlRun {
    /// Mean staleness across all merges.
    pub fn mean_staleness(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| f64::from(r.staleness))
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// How many merges each client contributed.
    pub fn merges_by_client(&self, clients: usize) -> Vec<u32> {
        let mut counts = vec![0u32; clients];
        for r in &self.records {
            if r.client.0 < clients {
                counts[r.client.0] += 1;
            }
        }
        counts
    }
}

/// The asynchronous FL experiment driver.
pub struct AsyncFl<'a> {
    config: AsyncFlConfig,
    train_shards: &'a [Dataset],
    eval_test: &'a Dataset,
}

impl<'a> AsyncFl<'a> {
    /// Creates a driver over per-client train shards and a shared test set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the shard count disagrees
    /// with `client_speeds`.
    pub fn new(config: AsyncFlConfig, train_shards: &'a [Dataset], eval_test: &'a Dataset) -> Self {
        config.validate().expect("invalid async FL config");
        assert_eq!(
            config.client_speeds.len(),
            train_shards.len(),
            "client_speeds/shard count mismatch"
        );
        AsyncFl {
            config,
            train_shards,
            eval_test,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AsyncFlConfig {
        &self.config
    }

    /// Runs the experiment. `make_model` builds the shared architecture; the
    /// first instance's initialization seeds the server's starting point.
    pub fn run<R: Rng + ?Sized>(
        &self,
        make_model: &mut dyn FnMut() -> Sequential,
        rng: &mut R,
    ) -> AsyncFlRun {
        let cfg = &self.config;
        let n = self.train_shards.len();
        let batcher = Batcher::new(cfg.batch_size);
        let mut eval_model = make_model();
        let mut merger = AsyncMerger::new(eval_model.params_flat(), cfg.alpha, cfg.decay);

        // Per-client state: the server version it last pulled, the snapshot
        // of the global it pulled then (what it actually trains from — using
        // the *current* global would hide staleness), and when its current
        // training iteration completes in virtual time.
        //
        // Training duration ~ shard_len * epochs / speed, with ±5% jitter so
        // equal-speed clients interleave rather than tie.
        let mut pulled_version = vec![0u32; n];
        let mut snapshots: Vec<Vec<f32>> = vec![merger.global().to_vec(); n];
        let mut finish_at: Vec<f64> = (0..n)
            .map(|i| self.duration_for(i) * (1.0 + rng.gen_range(-0.05..0.05)))
            .collect();
        let mut version = 0u32;
        let mut records = Vec::with_capacity(cfg.total_merges as usize);
        let mut now = 0.0f64;

        while version < cfg.total_merges {
            // Next client to finish (deterministic tie-break by index).
            let i = (0..n)
                .min_by(|&a, &b| {
                    finish_at[a]
                        .partial_cmp(&finish_at[b])
                        .expect("finite times")
                })
                .expect("at least one client");
            now = finish_at[i];

            // Train from the snapshot the client pulled.
            let staleness = version - pulled_version[i];
            let mut model = make_model();
            model.set_params_flat(&snapshots[i]);
            let mut opt = Sgd::new(cfg.lr, cfg.momentum);
            model.train_epochs_maybe_par(
                cfg.batch_parallel,
                &self.train_shards[i],
                cfg.local_epochs,
                &batcher,
                &mut opt,
                rng,
            );

            let weight = merger
                .merge(&model.params_flat(), staleness)
                .expect("trained parameters are finite and well-shaped");
            version += 1;

            let accuracy = if version.is_multiple_of(cfg.eval_every) || version == cfg.total_merges
            {
                eval_model.set_params_flat(merger.global());
                Some(eval_model.evaluate(self.eval_test).accuracy)
            } else {
                None
            };
            records.push(MergeRecord {
                merge: version,
                client: ClientId(i),
                staleness,
                weight,
                at: now,
                accuracy,
            });

            // The client pulls the fresh global and trains again.
            pulled_version[i] = version;
            snapshots[i] = merger.global().to_vec();
            finish_at[i] = now + self.duration_for(i) * (1.0 + rng.gen_range(-0.05..0.05));
        }

        eval_model.set_params_flat(merger.global());
        let final_accuracy = eval_model.evaluate(self.eval_test).accuracy;
        AsyncFlRun {
            records,
            final_params: merger.into_global(),
            final_accuracy,
            finished_at: now,
        }
    }

    fn duration_for(&self, client: usize) -> f64 {
        let work = (self.train_shards[client].len() * self.config.local_epochs) as f64;
        work / self.config.client_speeds[client]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
    use blockfed_nn::SimpleNnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        shards: Vec<Dataset>,
        test: Dataset,
    }

    fn fixture() -> Fixture {
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (train, test) = gen.generate(2);
        let mut rng = StdRng::seed_from_u64(11);
        let shards = partition_dataset(
            &train,
            3,
            Partition::DirichletLabelSkew { alpha: 0.7 },
            &mut rng,
        );
        Fixture { shards, test }
    }

    fn quick_config() -> AsyncFlConfig {
        AsyncFlConfig {
            total_merges: 12,
            local_epochs: 1,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            alpha: 0.6,
            decay: StalenessDecay::Polynomial { a: 0.5 },
            client_speeds: vec![1.0, 1.0, 1.0],
            eval_every: 4,
            batch_parallel: false,
        }
    }

    fn run_with(cfg: AsyncFlConfig, seed: u64) -> AsyncFlRun {
        let fx = fixture();
        let driver = AsyncFl::new(cfg, &fx.shards, &fx.test);
        let nn = SimpleNnConfig::tiny(fx.test.feature_dim(), fx.test.num_classes());
        let mut arch_rng = StdRng::seed_from_u64(seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        driver.run(&mut || nn.build(&mut arch_rng), &mut rng)
    }

    #[test]
    fn completes_the_merge_budget() {
        let out = run_with(quick_config(), 1);
        assert_eq!(out.records.len(), 12);
        assert_eq!(out.records.last().unwrap().merge, 12);
        assert!(out.finished_at > 0.0);
        // eval_every=4 evaluates at merges 4, 8, 12.
        let evals = out.records.iter().filter(|r| r.accuracy.is_some()).count();
        assert_eq!(evals, 3);
    }

    #[test]
    fn all_clients_contribute_with_equal_speeds() {
        let out = run_with(quick_config(), 3);
        let counts = out.merges_by_client(3);
        assert!(
            counts.iter().all(|&c| c >= 3),
            "unbalanced merges: {counts:?}"
        );
    }

    #[test]
    fn fast_clients_contribute_more_and_induce_staleness() {
        let mut cfg = quick_config();
        cfg.total_merges = 16;
        cfg.client_speeds = vec![8.0, 1.0, 1.0]; // client A is 8x faster
        let out = run_with(cfg, 3);
        let counts = out.merges_by_client(3);
        assert!(
            counts[0] > counts[1] && counts[0] > counts[2],
            "fast client did not dominate: {counts:?}"
        );
        // Slow clients accumulate staleness: while B trains once, A merges
        // several times, so B's updates arrive stale.
        let max_staleness = out.records.iter().map(|r| r.staleness).max().unwrap();
        assert!(max_staleness >= 3, "no staleness with an 8x straggler gap");
        assert!(out.mean_staleness() > 0.0);
    }

    #[test]
    fn stale_merges_receive_smaller_weights() {
        let mut cfg = quick_config();
        cfg.total_merges = 16;
        cfg.client_speeds = vec![8.0, 1.0, 1.0];
        cfg.decay = StalenessDecay::Polynomial { a: 1.0 };
        let alpha = cfg.alpha;
        let out = run_with(cfg, 4);
        for r in &out.records {
            let expected = alpha * StalenessDecay::Polynomial { a: 1.0 }.factor(r.staleness);
            assert!((r.weight - expected).abs() < 1e-12);
        }
        // Some fresh and some stale weights must both occur.
        let weights: std::collections::BTreeSet<u64> =
            out.records.iter().map(|r| r.weight.to_bits()).collect();
        assert!(weights.len() >= 2);
    }

    #[test]
    fn learning_happens() {
        let mut cfg = quick_config();
        cfg.total_merges = 30;
        cfg.eval_every = 30;
        let out = run_with(cfg, 5);
        // SynthCifar tiny has 4 classes; random is 0.25.
        assert!(out.final_accuracy > 0.35, "accuracy {}", out.final_accuracy);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_with(quick_config(), 7);
        let b = run_with(quick_config(), 7);
        assert_eq!(a.records, b.records);
        assert_eq!(a.final_params, b.final_params);
    }

    #[test]
    fn config_validation() {
        let mut cfg = quick_config();
        cfg.total_merges = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = quick_config();
        cfg.client_speeds = vec![1.0];
        assert!(cfg.validate().is_err());
        let mut cfg = quick_config();
        cfg.client_speeds = vec![1.0, -1.0];
        assert!(cfg.validate().is_err());
        let mut cfg = quick_config();
        cfg.eval_every = 0;
        assert!(cfg.validate().is_err());
        assert!(quick_config().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "client_speeds/shard count mismatch")]
    fn mismatched_speeds_rejected() {
        let fx = fixture();
        let mut cfg = quick_config();
        cfg.client_speeds = vec![1.0, 1.0];
        let _ = AsyncFl::new(cfg, &fx.shards, &fx.test);
    }

    #[test]
    fn mean_staleness_of_empty_run_is_zero() {
        let run = AsyncFlRun {
            records: Vec::new(),
            final_params: Vec::new(),
            final_accuracy: 0.0,
            finished_at: 0.0,
        };
        assert_eq!(run.mean_staleness(), 0.0);
        assert_eq!(run.merges_by_client(2), vec![0, 0]);
    }
}
