//! Wait-or-not policies: when may an aggregator stop waiting?
//!
//! The title question of the paper — "Should we prioritize waiting for all
//! models for aggregation, or accept a slight reduction in accuracy to expedite
//! the process asynchronously?" — is a choice of [`WaitPolicy`]. Synchronous
//! aggregation is [`WaitPolicy::All`]; asynchronous aggregation proceeds once
//! any `k` local models have arrived ([`WaitPolicy::FirstK`]).

use serde::{Deserialize, Serialize};

/// When an aggregator considers a round's update set sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WaitPolicy {
    /// Wait for every participant (synchronous aggregation).
    All,
    /// Proceed once `k` updates have arrived (asynchronous aggregation).
    FirstK(usize),
}

impl WaitPolicy {
    /// Whether `received` updates out of `total` participants satisfy the policy.
    ///
    /// `FirstK(k)` with `k > total` degrades to waiting for everyone.
    pub fn ready(&self, received: usize, total: usize) -> bool {
        match *self {
            WaitPolicy::All => received >= total,
            WaitPolicy::FirstK(k) => received >= k.min(total),
        }
    }

    /// How many updates the policy will wait for given `total` participants.
    pub fn expected(&self, total: usize) -> usize {
        match *self {
            WaitPolicy::All => total,
            WaitPolicy::FirstK(k) => k.min(total),
        }
    }

    /// Whether this policy is asynchronous (may aggregate a strict subset).
    pub fn is_async(&self, total: usize) -> bool {
        self.expected(total) < total
    }
}

impl std::fmt::Display for WaitPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitPolicy::All => write!(f, "wait-all"),
            WaitPolicy::FirstK(k) => write!(f, "wait-{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_requires_every_participant() {
        let p = WaitPolicy::All;
        assert!(!p.ready(2, 3));
        assert!(p.ready(3, 3));
        assert_eq!(p.expected(3), 3);
        assert!(!p.is_async(3));
    }

    #[test]
    fn first_k_releases_early() {
        let p = WaitPolicy::FirstK(2);
        assert!(!p.ready(1, 3));
        assert!(p.ready(2, 3));
        assert!(p.ready(3, 3));
        assert_eq!(p.expected(3), 2);
        assert!(p.is_async(3));
    }

    #[test]
    fn oversized_k_degrades_to_all() {
        let p = WaitPolicy::FirstK(10);
        assert!(!p.ready(3, 4));
        assert!(p.ready(4, 4));
        assert_eq!(p.expected(4), 4);
        assert!(!p.is_async(4));
    }

    #[test]
    fn zero_k_is_immediately_ready() {
        let p = WaitPolicy::FirstK(0);
        assert!(p.ready(0, 3));
        assert_eq!(p.expected(3), 0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(WaitPolicy::All.to_string(), "wait-all");
        assert_eq!(WaitPolicy::FirstK(2).to_string(), "wait-2");
    }
}
