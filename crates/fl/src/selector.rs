//! Combination enumeration and fitness-threshold filtering.
//!
//! Section III of the paper: "a test dataset is prepared to evaluate the fitness
//! of the shared model. If the evaluation is over a pre-set threshold, the worker
//! will then include that model in their aggregation process; otherwise, it will
//! be ignored."

use crate::update::{ClientId, ModelUpdate};

/// A subset of clients whose models are aggregated together.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Combination(Vec<ClientId>);

impl Combination {
    /// Creates a combination, sorting and deduplicating members.
    pub fn new(mut members: Vec<ClientId>) -> Self {
        members.sort();
        members.dedup();
        Combination(members)
    }

    /// The sorted members.
    pub fn members(&self) -> &[ClientId] {
        &self.0
    }

    /// Number of member clients.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the combination is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `client` participates.
    pub fn contains(&self, client: ClientId) -> bool {
        self.0.contains(&client)
    }

    /// The paper's label style: members concatenated with the owner first if
    /// present (e.g. client B labels `{A, B}` as `"B,A"`). With no owner the
    /// label is plain member order (`"A,B"`).
    pub fn label(&self, owner: Option<ClientId>) -> String {
        let mut ids: Vec<ClientId> = self.0.clone();
        if let Some(o) = owner {
            if let Some(pos) = ids.iter().position(|&c| c == o) {
                let me = ids.remove(pos);
                ids.insert(0, me);
            }
        }
        ids.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl std::fmt::Display for Combination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label(None))
    }
}

/// Enumerates every non-empty subset of the given clients, ordered by size then
/// lexicographically — the candidate space of the "consider" aggregation.
///
/// # Examples
///
/// ```
/// use blockfed_fl::{all_combinations, ClientId};
///
/// let combos = all_combinations(&[ClientId(0), ClientId(1)]);
/// assert_eq!(combos.len(), 3); // {A}, {B}, {A,B}
/// ```
pub fn all_combinations(clients: &[ClientId]) -> Vec<Combination> {
    let n = clients.len();
    assert!(
        n <= 20,
        "combination enumeration beyond 20 clients is intractable"
    );
    if n == 0 {
        return Vec::new();
    }
    // Enumerate k-subsets via an index vector (lexicographic successor),
    // size by size — no machine-word bitmask caps the client count; the
    // tractability assert above is the only bound.
    let mut out = Vec::with_capacity((1usize << n) - 1);
    let mut idx: Vec<usize> = Vec::with_capacity(n);
    for k in 1..=n {
        idx.clear();
        idx.extend(0..k);
        loop {
            out.push(Combination::new(idx.iter().map(|&i| clients[i]).collect()));
            // Advance to the next k-subset of 0..n in lexicographic order:
            // bump the rightmost index that still has headroom and reset
            // everything after it.
            let Some(pos) = (0..k).rev().find(|&i| idx[i] < n - k + i) else {
                break;
            };
            idx[pos] += 1;
            for i in pos + 1..k {
                idx[i] = idx[i - 1] + 1;
            }
        }
    }
    out.sort_by(|a, b| (a.len(), a.members()).cmp(&(b.len(), b.members())));
    out
}

/// Filters updates by a fitness threshold: keep those whose standalone
/// evaluation (via `fitness`) reaches `threshold`.
///
/// Returns `(kept, rejected)` so rejections can be audited on chain.
pub fn threshold_filter<'a>(
    updates: &[&'a ModelUpdate],
    threshold: f64,
    mut fitness: impl FnMut(&ModelUpdate) -> f64,
) -> (Vec<&'a ModelUpdate>, Vec<&'a ModelUpdate>) {
    let mut kept = Vec::new();
    let mut rejected = Vec::new();
    for &u in updates {
        if u.is_finite() && fitness(u) >= threshold {
            kept.push(u);
        } else {
            rejected.push(u);
        }
    }
    (kept, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<ClientId> {
        (0..n).map(ClientId).collect()
    }

    #[test]
    fn enumerates_all_nonempty_subsets() {
        let combos = all_combinations(&ids(3));
        assert_eq!(combos.len(), 7);
        // Ordered by size: three singletons, three pairs, one triple.
        assert_eq!(combos[0].len(), 1);
        assert_eq!(combos[3].len(), 2);
        assert_eq!(combos[6].len(), 3);
        assert_eq!(combos[6].members(), &ids(3));
    }

    #[test]
    fn empty_input_gives_no_combinations() {
        assert!(all_combinations(&[]).is_empty());
    }

    #[test]
    fn combination_dedups_and_sorts() {
        let c = Combination::new(vec![ClientId(2), ClientId(0), ClientId(2)]);
        assert_eq!(c.members(), &[ClientId(0), ClientId(2)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(ClientId(0)));
        assert!(!c.contains(ClientId(1)));
    }

    #[test]
    fn labels_match_paper_style() {
        let c = Combination::new(vec![ClientId(0), ClientId(1)]);
        assert_eq!(c.label(None), "A,B");
        // Client B writes its own combination as "B,A" (Table III's row names).
        assert_eq!(c.label(Some(ClientId(1))), "B,A");
        // Owner not in the combination leaves the order untouched.
        assert_eq!(c.label(Some(ClientId(2))), "A,B");
        assert_eq!(c.to_string(), "A,B");
    }

    #[test]
    fn threshold_filter_splits() {
        let a = ModelUpdate::new(ClientId(0), 0, vec![1.0], 1);
        let b = ModelUpdate::new(ClientId(1), 0, vec![2.0], 1);
        let c = ModelUpdate::new(ClientId(2), 0, vec![3.0], 1);
        let all = [&a, &b, &c];
        // Fitness = first parameter value.
        let (kept, rejected) = threshold_filter(&all, 2.0, |u| f64::from(u.params[0]));
        assert_eq!(kept.len(), 2);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].client, ClientId(0));
    }

    #[test]
    fn threshold_filter_rejects_non_finite_regardless_of_fitness() {
        let poisoned = ModelUpdate::new(ClientId(0), 0, vec![f32::NAN], 1);
        let all = [&poisoned];
        let (kept, rejected) = threshold_filter(&all, 0.0, |_| 1.0);
        assert!(kept.is_empty());
        assert_eq!(rejected.len(), 1);
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn refuses_huge_enumerations() {
        let _ = all_combinations(&ids(21));
    }
}
