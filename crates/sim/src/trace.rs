//! Timestamped experiment traces and named counters.
//!
//! The experiment drivers record what happened when ([`Trace`]) and how often
//! ([`Counters`]); the report layer turns these into the tables and figures.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: SimTime,
    /// Free-form label, e.g. `"block.sealed"`.
    pub label: String,
    /// Free-form detail, e.g. the block hash.
    pub detail: String,
}

/// An append-only, timestamped log of notable simulation events.
///
/// # Examples
///
/// ```
/// use blockfed_sim::{SimTime, Trace};
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::from_secs(1), "block.sealed", "#1");
/// trace.record(SimTime::from_secs(2), "block.sealed", "#2");
/// assert_eq!(trace.count("block.sealed"), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry.
    pub fn record(&mut self, time: SimTime, label: impl Into<String>, detail: impl Into<String>) {
        self.entries.push(TraceEntry {
            time,
            label: label.into(),
            detail: detail.into(),
        });
    }

    /// All entries, in recording order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries with the given label.
    pub fn count(&self, label: &str) -> usize {
        self.entries.iter().filter(|e| e.label == label).count()
    }

    /// All entries with the given label, in recording order.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.label == label)
    }

    /// Timestamps of entries with the given label.
    pub fn times_of(&self, label: &str) -> Vec<SimTime> {
        self.with_label(label).map(|e| e.time).collect()
    }

    /// Mean interval between consecutive entries with the given label,
    /// or `None` if fewer than two such entries exist.
    pub fn mean_interval(&self, label: &str) -> Option<SimDuration> {
        let times = self.times_of(label);
        if times.len() < 2 {
            return None;
        }
        let total = times.last().unwrap().since(times[0]);
        Some(total / (times.len() as u64 - 1))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{} {} {}", e.time, e.label, e.detail)?;
        }
        Ok(())
    }
}

/// Named monotonic counters and gauges for experiment accounting.
///
/// # Examples
///
/// ```
/// use blockfed_sim::Counters;
///
/// let mut c = Counters::new();
/// c.incr("tx.included", 3.0);
/// c.incr("tx.included", 2.0);
/// assert_eq!(c.get("tx.included"), 5.0);
/// assert_eq!(c.get("missing"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    values: BTreeMap<String, f64>,
}

impl Counters {
    /// Creates an empty set of counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero if absent).
    pub fn incr(&mut self, name: &str, by: f64) {
        *self.values.entry(name.to_owned()).or_insert(0.0) += by;
    }

    /// Sets gauge `name` to `value`.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Current value of `name`, or `0.0` if never touched.
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another counter set into this one by addition.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.incr(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counts_and_filters() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "a", "1");
        t.record(SimTime::from_secs(2), "b", "2");
        t.record(SimTime::from_secs(3), "a", "3");
        assert_eq!(t.count("a"), 2);
        assert_eq!(t.count("b"), 1);
        assert_eq!(t.count("c"), 0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let details: Vec<&str> = t.with_label("a").map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["1", "3"]);
    }

    #[test]
    fn mean_interval_between_blocks() {
        let mut t = Trace::new();
        for i in 0..5u64 {
            t.record(SimTime::from_secs(13 * i), "block", format!("#{i}"));
        }
        assert_eq!(t.mean_interval("block"), Some(SimDuration::from_secs(13)));
        assert_eq!(t.mean_interval("nothing"), None);
        let mut single = Trace::new();
        single.record(SimTime::ZERO, "block", "#0");
        assert_eq!(single.mean_interval("block"), None);
    }

    #[test]
    fn display_renders_each_entry() {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "x", "y");
        let s = t.to_string();
        assert!(s.contains('x'));
        assert!(s.contains('y'));
    }

    #[test]
    fn counters_incr_set_get_merge() {
        let mut c = Counters::new();
        c.incr("a", 1.0);
        c.incr("a", 2.0);
        c.set("b", 10.0);
        assert_eq!(c.get("a"), 3.0);
        assert_eq!(c.get("b"), 10.0);

        let mut d = Counters::new();
        d.incr("a", 5.0);
        d.incr("c", 1.0);
        c.merge(&d);
        assert_eq!(c.get("a"), 8.0);
        assert_eq!(c.get("c"), 1.0);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
