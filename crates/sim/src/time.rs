//! Virtual time for the simulation kernel.
//!
//! [`SimTime`] is an absolute instant (nanoseconds since simulation start) and
//! [`SimDuration`] a span between instants. Both are plain `u64` newtypes so the
//! whole simulation is exactly reproducible — no floating-point clock drift.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use blockfed_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(13);
/// assert_eq!(t.as_secs_f64(), 13.0);
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use blockfed_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at the
    /// representable range and treating NaN/negative input as zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a float factor (used by contention models).
    /// NaN or negative factors yield zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "must not be later")]
    fn since_panics_when_earlier_is_later() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimDuration::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(3)),
            Some(SimTime::from_secs(3))
        );
    }
}
