//! Deterministic discrete-event simulation kernel for the `blockfed` workspace.
//!
//! Everything in the blockchain-based federated-learning experiments that involves
//! *time* — network propagation, proof-of-work mining races, local training delays,
//! asynchronous aggregation deadlines — runs on this kernel so that a whole
//! decentralized experiment is reproducible bit-for-bit from a single seed.
//!
//! The kernel deliberately stays small:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a stable (FIFO-on-ties) priority queue of timestamped events,
//! * [`Scheduler`] — an event queue fused with a clock that only moves forward,
//! * [`RngHub`] — named, independently seeded random streams derived from one seed,
//! * [`dist`] — the handful of distributions the experiments need (exponential
//!   mining delays, uniform jitter),
//! * [`Trace`] — a timestamped event log used by the experiment reports.
//!
//! # Examples
//!
//! ```
//! use blockfed_sim::{Scheduler, SimDuration};
//!
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.schedule_after(SimDuration::from_millis(5), "second");
//! sched.schedule_after(SimDuration::from_millis(1), "first");
//! let (t1, ev1) = sched.next().unwrap();
//! assert_eq!(ev1, "first");
//! assert_eq!(t1, blockfed_sim::SimTime::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod rng;
pub mod time;
pub mod trace;

pub use dist::{Exponential, UniformJitter};
pub use event::{EventQueue, Scheduler};
pub use rng::{splitmix64, RngHub};
pub use time::{SimDuration, SimTime};
pub use trace::{Counters, Trace};
