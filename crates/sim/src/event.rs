//! Timestamped event queues with deterministic tie-breaking.
//!
//! [`EventQueue`] is a min-heap keyed on `(time, insertion sequence)`, so two events
//! scheduled for the same instant pop in the order they were pushed — the property
//! that makes whole-simulation determinism possible. [`Scheduler`] adds a monotone
//! clock on top.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry on top.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// Events with equal timestamps are returned in insertion order (FIFO), which keeps
/// simulations reproducible regardless of heap internals.
///
/// # Examples
///
/// ```
/// use blockfed_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "later");
/// q.push(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "sooner")));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue whose heap holds `capacity` events before
    /// reallocating — for simulations that know their event volume up front.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events, so a burst of
    /// pushes (e.g. one gossip flood's deliveries) costs at most one grow.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_at", &self.peek_time())
            .finish()
    }
}

/// An [`EventQueue`] fused with a clock that only moves forward.
///
/// Popping an event advances the clock to the event's timestamp; scheduling in the
/// past is rejected with a panic so timing bugs surface immediately.
///
/// # Examples
///
/// ```
/// use blockfed_sim::{Scheduler, SimDuration, SimTime};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// s.schedule_after(SimDuration::from_secs(1), 7);
/// let (t, ev) = s.next().unwrap();
/// assert_eq!((t, ev), (SimTime::from_secs(1), 7));
/// assert_eq!(s.now(), SimTime::from_secs(1));
/// ```
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler whose clock starts at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates a scheduler pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `event` at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self.now.checked_add(delay).expect("schedule time overflow");
        self.queue.push(at, event);
    }

    /// Pops the next event and advances the clock to its timestamp.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event from the past");
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// The timestamp of the next pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 'c');
        q.push(SimTime::from_millis(1), 'a');
        q.push(SimTime::from_millis(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn presized_queue_pushes_without_growing() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..64 {
            q.push(SimTime::from_millis(64 - i), i as u32);
        }
        assert_eq!(q.capacity(), cap, "pushes within capacity must not grow");
        // Order is still by time regardless of pre-sizing.
        assert_eq!(q.pop().map(|(_, e)| e), Some(63));
        let mut s: Scheduler<u32> = Scheduler::with_capacity(8);
        s.reserve(100);
        s.schedule_after(SimDuration::from_secs(1), 1);
        assert_eq!(s.next(), Some((SimTime::from_secs(1), 1)));
    }

    #[test]
    fn scheduler_clock_advances_monotonically() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(2), 2);
        s.schedule_after(SimDuration::from_secs(1), 1);
        assert_eq!(s.next_time(), Some(SimTime::from_secs(1)));
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = s.next() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(s.processed(), 2);
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(1), 1);
        s.next();
        s.schedule_at(SimTime::from_millis(500), 9);
    }

    #[test]
    fn schedule_relative_to_current_time() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(1), "first");
        s.next();
        s.schedule_after(SimDuration::from_secs(1), "second");
        let (t, _) = s.next().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
    }
}
