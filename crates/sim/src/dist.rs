//! The probability distributions the experiments sample from.
//!
//! Proof-of-work block discovery is memoryless, so mining delay is exponential
//! with rate `hashrate / difficulty` ([`Exponential`]); network latency adds a
//! bounded uniform jitter ([`UniformJitter`]).

use rand::Rng;

use crate::time::SimDuration;

/// An exponential distribution with the given rate (events per second).
///
/// # Examples
///
/// ```
/// use blockfed_sim::{Exponential, RngHub};
///
/// let exp = Exponential::new(2.0); // mean 0.5 s
/// let mut rng = RngHub::new(1).stream("demo");
/// let d = exp.sample(&mut rng);
/// assert!(d.as_secs_f64() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with `rate` events per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive and finite"
        );
        Exponential { rate }
    }

    /// Creates the distribution from its mean instead of its rate.
    ///
    /// # Panics
    ///
    /// Panics if the mean is not strictly positive and finite.
    pub fn from_mean(mean: SimDuration) -> Self {
        let secs = mean.as_secs_f64();
        assert!(secs > 0.0, "mean must be positive");
        Exponential::new(1.0 / secs)
    }

    /// The rate parameter (events per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate)
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        // Inverse CDF; 1-u avoids ln(0).
        let u: f64 = rng.gen_range(0.0..1.0);
        SimDuration::from_secs_f64(-(1.0 - u).ln() / self.rate)
    }
}

/// A latency jitter model: `base + U(0, spread)`.
///
/// # Examples
///
/// ```
/// use blockfed_sim::{RngHub, SimDuration, UniformJitter};
///
/// let j = UniformJitter::new(SimDuration::from_millis(10), SimDuration::from_millis(5));
/// let mut rng = RngHub::new(1).stream("demo");
/// let d = j.sample(&mut rng);
/// assert!(d >= SimDuration::from_millis(10));
/// assert!(d <= SimDuration::from_millis(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformJitter {
    base: SimDuration,
    spread: SimDuration,
}

impl UniformJitter {
    /// A jitter of `base` plus a uniform draw in `[0, spread]`.
    pub fn new(base: SimDuration, spread: SimDuration) -> Self {
        UniformJitter { base, spread }
    }

    /// A constant (jitter-free) delay.
    pub fn constant(base: SimDuration) -> Self {
        UniformJitter {
            base,
            spread: SimDuration::ZERO,
        }
    }

    /// The fixed part of the delay.
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// The maximum random part of the delay.
    pub fn spread(&self) -> SimDuration {
        self.spread
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.spread == SimDuration::ZERO {
            return self.base;
        }
        let extra = rng.gen_range(0..=self.spread.as_nanos());
        self.base + SimDuration::from_nanos(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngHub;

    #[test]
    fn exponential_mean_is_close_to_configured() {
        let exp = Exponential::from_mean(SimDuration::from_secs(13));
        let mut rng = RngHub::new(42).stream("exp");
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp.sample(&mut rng).as_secs_f64()).sum();
        let mean = total / f64::from(n);
        assert!((mean - 13.0).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn exponential_rate_mean_inverse() {
        let exp = Exponential::new(4.0);
        assert!((exp.mean().as_secs_f64() - 0.25).abs() < 1e-12);
        assert_eq!(exp.rate(), 4.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn zero_mean_rejected() {
        let _ = Exponential::from_mean(SimDuration::ZERO);
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let j = UniformJitter::new(SimDuration::from_millis(3), SimDuration::from_millis(2));
        let mut rng = RngHub::new(7).stream("jit");
        for _ in 0..1000 {
            let d = j.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(3));
            assert!(d <= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn constant_jitter_has_no_randomness() {
        let j = UniformJitter::constant(SimDuration::from_micros(42));
        let mut rng = RngHub::new(7).stream("jit");
        for _ in 0..10 {
            assert_eq!(j.sample(&mut rng), SimDuration::from_micros(42));
        }
        assert_eq!(j.spread(), SimDuration::ZERO);
        assert_eq!(j.base(), SimDuration::from_micros(42));
    }

    #[test]
    fn samples_are_deterministic_given_stream() {
        let exp = Exponential::new(1.0);
        let mut a = RngHub::new(5).stream("s");
        let mut b = RngHub::new(5).stream("s");
        for _ in 0..16 {
            assert_eq!(exp.sample(&mut a), exp.sample(&mut b));
        }
    }
}
