//! Named, independently seeded random streams.
//!
//! Every source of randomness in an experiment (mining races, network jitter,
//! weight initialization, data generation, tie-breaking…) pulls from its own named
//! stream derived from one master seed via [`splitmix64`]. Adding a new stream
//! never perturbs existing ones, so experiments stay comparable across code changes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator; also used as a seed-mixing function.
///
/// # Examples
///
/// ```
/// use blockfed_sim::splitmix64;
///
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A factory of named random streams all derived from one master seed.
///
/// # Examples
///
/// ```
/// use blockfed_sim::RngHub;
/// use rand::Rng;
///
/// let hub = RngHub::new(7);
/// let mut mining = hub.stream("mining");
/// let mut training = hub.stream("training");
/// // Streams with different names are independent but reproducible:
/// let a: u64 = mining.gen();
/// let b: u64 = hub.stream("mining").gen();
/// assert_eq!(a, b);
/// let _: u64 = training.gen();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngHub {
    master: u64,
}

impl RngHub {
    /// Creates a hub from a master seed.
    pub fn new(master: u64) -> Self {
        RngHub { master }
    }

    /// The master seed this hub was created from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns a fresh RNG for the stream `name`.
    ///
    /// Calling this twice with the same name yields identical streams.
    pub fn stream(&self, name: &str) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.master ^ fnv1a(name.as_bytes())))
    }

    /// Returns a fresh RNG for stream `name` specialized by an index, e.g. one
    /// stream per peer: `hub.indexed_stream("peer", 2)`.
    pub fn indexed_stream(&self, name: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(
            self.master ^ fnv1a(name.as_bytes()) ^ splitmix64(index.wrapping_add(0xA5A5)),
        ))
    }

    /// Derives a child hub, e.g. one hub per experiment repetition.
    pub fn child(&self, name: &str) -> RngHub {
        RngHub {
            master: splitmix64(self.master ^ fnv1a(name.as_bytes())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let hub = RngHub::new(123);
        let a: Vec<u64> = hub
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = hub
            .stream("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_different_streams() {
        let hub = RngHub::new(123);
        let a: u64 = hub.stream("x").gen();
        let b: u64 = hub.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = RngHub::new(1).stream("x").gen();
        let b: u64 = RngHub::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let hub = RngHub::new(9);
        let a: u64 = hub.indexed_stream("peer", 0).gen();
        let b: u64 = hub.indexed_stream("peer", 1).gen();
        let a2: u64 = hub.indexed_stream("peer", 0).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn child_hubs_are_independent() {
        let hub = RngHub::new(9);
        let c1 = hub.child("rep1");
        let c2 = hub.child("rep2");
        assert_ne!(c1.master_seed(), c2.master_seed());
        let x: u64 = c1.stream("x").gen();
        let y: u64 = c2.stream("x").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn splitmix_avalanche_differs_on_adjacent_inputs() {
        // Weak avalanche sanity: adjacent inputs differ in many output bits.
        for i in 0..64u64 {
            let d = (splitmix64(i) ^ splitmix64(i + 1)).count_ones();
            assert!(d >= 10, "poor diffusion at {i}: {d} bits");
        }
    }
}
