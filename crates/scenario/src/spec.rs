//! The declarative scenario model.
//!
//! A [`ScenarioSpec`] is a complete, self-contained description of one
//! decentralized blockchain-FL run: how many peers, what compute each has,
//! how they are wired, when they wait, how they aggregate, which adversaries
//! are embedded, and a timeline of faults (partitions, churn, hash-rate
//! shocks). Specs are plain data — build one with the fluent API, hand it to
//! a [`crate::ScenarioRunner`], or lower it onto externally prepared data
//! with [`ScenarioSpec::run_with`].

use blockfed_core::{
    ChainStore, CommitteeSpec, ComputeProfile, ConfigError, ControllerSpec, Decentralized,
    DecentralizedConfig, DecentralizedRun, Fault, RetargetRule, TimedFault, MAX_PEERS,
};
use blockfed_data::{Dataset, Partition, SynthCifarConfig};
use blockfed_fl::{Adversary, StalenessDecay, Strategy, WaitPolicy};
use blockfed_net::{GossipMode, LinkSpec, Topology};
use blockfed_nn::{Sequential, SimpleNnConfig};
use blockfed_sim::SimDuration;

/// How a scenario synthesizes and partitions its federated data.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSpec {
    /// The synthetic CIFAR-like generator configuration.
    pub synth: SynthCifarConfig,
    /// How the training pool is split across peers.
    pub partition: Partition,
}

impl Default for DataSpec {
    fn default() -> Self {
        DataSpec {
            synth: SynthCifarConfig::tiny(),
            partition: Partition::DirichletLabelSkew { alpha: 0.8 },
        }
    }
}

/// Where [`DataSpec::scaled_for`]'s linear pool growth stops: the per-class
/// count 256 peers resolve to. Beyond it each peer's shard shrinks (to a
/// floor of at least one example at [`blockfed_core::MAX_PEERS`] peers)
/// instead of the pool — and the evaluation cost — growing without bound.
const SCALED_PER_CLASS_CAP: usize = 320;

impl DataSpec {
    /// The paper-scale data spec: the full SynthCifar generator (64-dim
    /// observations, 10 classes, 150 train / 60 test examples per class) with
    /// the paper's Dirichlet label skew — the workload
    /// [`SimpleNnConfig::paper`]-sized models train on. Pair it with
    /// [`ScenarioSpec::model`] and [`ScenarioSpec::batch_parallel`] to run
    /// paper-scale cells instead of the synthesized tiny default.
    pub fn paper() -> Self {
        DataSpec {
            synth: SynthCifarConfig::default(),
            partition: Partition::DirichletLabelSkew { alpha: 0.8 },
        }
    }

    /// A tiny synthetic data spec scaled so `peers` training shards and
    /// per-peer test splits each hold at least a handful of examples — the
    /// default tiny pools starve past ~40 peers. IID partitioning keeps
    /// every shard non-empty at large populations where Dirichlet skew can
    /// zero one out.
    ///
    /// Growth is capped past 256 peers: pools stop growing linearly once
    /// each shard would otherwise keep holding ~5 examples, so a 1024-peer
    /// cell synthesizes (and scores against) the same 1 280-example pool as
    /// a 256-peer one, with every shard and test split still non-empty. The
    /// floor below keeps small populations on the legacy pool sizes.
    pub fn scaled_for(peers: usize) -> Self {
        let tiny = SynthCifarConfig::tiny();
        let per_class = (5 * peers)
            .div_ceil(tiny.num_classes)
            .clamp(20, SCALED_PER_CLASS_CAP);
        DataSpec {
            synth: SynthCifarConfig {
                train_per_class: per_class,
                test_per_class: per_class,
                ..tiny
            },
            partition: Partition::Iid,
        }
    }
}

/// A declarative description of one decentralized run.
///
/// # Examples
///
/// ```
/// use blockfed_scenario::ScenarioSpec;
/// use blockfed_fl::WaitPolicy;
///
/// let spec = ScenarioSpec::new("churny", 5)
///     .rounds(2)
///     .wait(WaitPolicy::FirstK(3))
///     .partition_at(5.0, &[0, 1], &[2, 3, 4])
///     .heal_at(20.0)
///     .leave_at(30.0, 4);
/// assert_eq!(spec.peers(), 5);
/// spec.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Display name (matrix cells derive theirs from it).
    pub name: String,
    /// Communication rounds.
    pub rounds: u32,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Per-peer compute profiles; the length is the peer count.
    pub computes: Vec<ComputeProfile>,
    /// Network topology.
    pub topology: Topology,
    /// Link profile between peers.
    pub link: LinkSpec,
    /// How model artifacts disseminate: the default
    /// [`GossipMode::AnnounceFetch`] floods digest-sized announcements and
    /// pulls one payload copy per peer (`fetch_bytes`), while
    /// [`GossipMode::Full`] reproduces the legacy payload-per-edge flood
    /// accounting. Identical simulation either way — only the traffic split
    /// in the cell report changes.
    pub gossip: GossipMode,
    /// When a peer stops waiting for more models.
    pub wait_policy: WaitPolicy,
    /// The requested aggregation strategy (see [`ScenarioSpec::resolved_strategy`]).
    pub strategy: Strategy,
    /// Above this peer count a requested `Strategy::Consider` is lowered to
    /// `Strategy::BestK(best_k)`: the full combination search is exponential
    /// in the peer count, best-k is linear.
    pub consider_cutover: usize,
    /// The `k` used when the cutover kicks in.
    pub best_k: usize,
    /// Mid-run strategy switch: from round `r` (1-based) onward the run
    /// aggregates with the given strategy instead of the resolved base
    /// strategy. [`crate::ScenarioRunner::run_fork_replay`] uses this to
    /// replay a suffix of rounds under a different strategy against the same
    /// chain store. `None` keeps one strategy throughout.
    pub strategy_switch: Option<(u32, Strategy)>,
    /// Optional staleness-aware re-weighting of aggregated updates.
    pub staleness_decay: Option<StalenessDecay>,
    /// Declared on-chain size of a model artifact.
    pub payload_bytes: u64,
    /// Proof-of-work difficulty.
    pub difficulty: u128,
    /// How mining difficulty retargets when block cadence drifts from the
    /// one `difficulty` implies (the default [`RetargetRule::Homestead`]
    /// keeps the legacy near-constant behaviour; the adaptive rules recover
    /// the cadence after hash-rate shocks).
    pub retarget: RetargetRule,
    /// The paper's §III fitness gate (`None` disables).
    pub fitness_threshold: Option<f64>,
    /// Norm-outlier gate (`None` disables).
    pub norm_z_threshold: Option<f64>,
    /// Degeneracy gate (`None` disables).
    pub degeneracy_min_classes: Option<usize>,
    /// Compromised peers and their attacks.
    pub adversaries: Vec<Adversary>,
    /// The fault/churn timeline.
    pub timeline: Vec<TimedFault>,
    /// Liveness watchdog window: if the run makes no aggregation progress for
    /// this long, it fails fast with a diagnostic instead of hanging (see
    /// [`DecentralizedConfig::watchdog`]). `None` disables the monitor.
    pub watchdog: Option<SimDuration>,
    /// State-snapshot cadence of every peer's chain (`None` keeps the
    /// default). Store configuration is part of spec identity: two cells
    /// differing only here are distinct and never deduplicated.
    pub snapshot_interval: Option<u64>,
    /// Opt-in state-pruning depth of every peer's chain (`None` disables).
    /// Part of spec identity, like [`ScenarioSpec::snapshot_interval`].
    pub prune_depth: Option<u64>,
    /// Optional adaptive policy controller: observes each round's wait time,
    /// staleness, fork rate, straggler spread, and accuracy delta and may
    /// switch wait policy / strategy / staleness decay at round boundaries
    /// (see [`ControllerSpec`]). `None` keeps the spec's static knobs — the
    /// paper's setting.
    pub controller: Option<ControllerSpec>,
    /// Optional hierarchical committee layout: peers aggregate locally per
    /// committee (tier 1) and merge the committee aggregates across the
    /// population (tier 2) before advancing their round (see
    /// [`DecentralizedConfig::committees`]). `None` — and any spec naming a
    /// single committee — is the flat topology. Part of spec identity: two
    /// cells differing only here are distinct and never deduplicated.
    pub committees: Option<CommitteeSpec>,
    /// Data synthesis and partitioning.
    pub data: DataSpec,
    /// The model architecture every peer trains.
    pub model: SimpleNnConfig,
    /// Spec-level override of every peer's
    /// [`ComputeProfile::batch_parallel`] flag, applied when the spec lowers
    /// onto the orchestrator config — so the builder is order-independent
    /// with respect to [`ScenarioSpec::computes`] /
    /// [`ScenarioSpec::uniform_compute`]. `None` keeps the per-profile
    /// flags.
    pub batch_parallel: Option<bool>,
    /// Master seed: same seed ⇒ bit-identical report.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A scenario over `peers` identical quick-profile peers with tiny
    /// synthetic data: 3 rounds, wait-all, full combination search below the
    /// cutover, fast (~1 s) blocks.
    pub fn new(name: impl Into<String>, peers: usize) -> Self {
        let data = DataSpec::default();
        let model = SimpleNnConfig::tiny(data.synth.feature_dim, data.synth.num_classes);
        ScenarioSpec {
            name: name.into(),
            rounds: 3,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.1,
            momentum: 0.9,
            computes: vec![
                ComputeProfile {
                    hashrate: 100_000.0,
                    train_rate: 500.0,
                    contention: 0.3,
                    batch_parallel: false,
                };
                peers
            ],
            topology: Topology::FullMesh,
            link: LinkSpec::lan(),
            gossip: GossipMode::AnnounceFetch,
            wait_policy: WaitPolicy::All,
            strategy: Strategy::Consider,
            consider_cutover: 6,
            best_k: 3,
            strategy_switch: None,
            staleness_decay: None,
            payload_bytes: 10_000,
            difficulty: 200_000,
            retarget: RetargetRule::Homestead,
            fitness_threshold: None,
            norm_z_threshold: None,
            degeneracy_min_classes: None,
            adversaries: Vec::new(),
            timeline: Vec::new(),
            watchdog: Some(SimDuration::from_secs(600)),
            snapshot_interval: None,
            prune_depth: None,
            controller: None,
            committees: None,
            data,
            model,
            batch_parallel: None,
            seed: 42,
        }
    }

    /// The paper-scale cell preset: `peers` peers training the paper's
    /// ~62 K-parameter [`SimpleNnConfig::paper`] SimpleNN on the full
    /// SynthCifar generator ([`DataSpec::paper`]) through the batch-parallel
    /// loop — the one definition behind both the `--paper` CI cell and the
    /// thread-sweep equivalence suite, so they can never drift apart.
    pub fn paper_cell(name: impl Into<String>, peers: usize) -> Self {
        ScenarioSpec::new(name, peers)
            .rounds(2)
            .local_epochs(2)
            .batch_size(32)
            .lr(0.01)
            .data(DataSpec::paper())
            .model(SimpleNnConfig::paper())
            .batch_parallel(true)
            .seed(64)
    }

    /// The peer count.
    pub fn peers(&self) -> usize {
        self.computes.len()
    }

    /// Sets the communication rounds.
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the local epochs per round.
    #[must_use]
    pub fn local_epochs(mut self, epochs: usize) -> Self {
        self.local_epochs = epochs;
        self
    }

    /// Sets the mini-batch size.
    #[must_use]
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Sets the SGD learning rate.
    #[must_use]
    pub fn lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Sets the SGD momentum.
    #[must_use]
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the wait policy.
    #[must_use]
    pub fn wait(mut self, policy: WaitPolicy) -> Self {
        self.wait_policy = policy;
        self
    }

    /// Sets the aggregation strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the Consider→BestK cutover: above `peers` the exponential search
    /// is replaced by `BestK(k)`.
    #[must_use]
    pub fn consider_cutover(mut self, peers: usize, k: usize) -> Self {
        self.consider_cutover = peers;
        self.best_k = k;
        self
    }

    /// From round `round` (1-based) onward, aggregate with `strategy` instead
    /// of the spec's base strategy — the knob behind
    /// [`crate::ScenarioRunner::run_fork_replay`].
    #[must_use]
    pub fn strategy_switch_at(mut self, round: u32, strategy: Strategy) -> Self {
        self.strategy_switch = Some((round, strategy));
        self
    }

    /// Sets the staleness decay.
    #[must_use]
    pub fn staleness(mut self, decay: StalenessDecay) -> Self {
        self.staleness_decay = Some(decay);
        self
    }

    /// Sets the declared artifact size.
    #[must_use]
    pub fn payload_bytes(mut self, bytes: u64) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the proof-of-work difficulty.
    #[must_use]
    pub fn difficulty(mut self, difficulty: u128) -> Self {
        self.difficulty = difficulty;
        self
    }

    /// Sets the difficulty retarget rule.
    #[must_use]
    pub fn retarget(mut self, rule: RetargetRule) -> Self {
        self.retarget = rule;
        self
    }

    /// Gives every peer the same compute profile.
    #[must_use]
    pub fn uniform_compute(mut self, profile: ComputeProfile) -> Self {
        for c in &mut self.computes {
            *c = profile;
        }
        self
    }

    /// Replaces the per-peer compute profiles (and thereby the peer count).
    #[must_use]
    pub fn computes(mut self, profiles: Vec<ComputeProfile>) -> Self {
        self.computes = profiles;
        self
    }

    /// Overrides one peer's compute profile.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    #[must_use]
    pub fn peer_compute(mut self, peer: usize, profile: ComputeProfile) -> Self {
        self.computes[peer] = profile;
        self
    }

    /// Switches batch-parallel local training on or off for every peer: each
    /// peer's mini-batches are split across the host's `blockfed-compute`
    /// workers. Bit-identical results at any thread count, so reports never
    /// depend on it — the knob is what lets cells train paper-scale models
    /// in reasonable host wall-clock. Applied at lowering time over whatever
    /// compute profiles the spec ends up with, so builder order does not
    /// matter.
    #[must_use]
    pub fn batch_parallel(mut self, on: bool) -> Self {
        self.batch_parallel = Some(on);
        self
    }

    /// The per-peer compute profiles the lowered run will actually use: the
    /// declared profiles with the spec-level [`ScenarioSpec::batch_parallel`]
    /// override applied.
    pub fn effective_computes(&self) -> Vec<ComputeProfile> {
        let mut computes = self.computes.clone();
        if let Some(on) = self.batch_parallel {
            for c in &mut computes {
                c.batch_parallel = on;
            }
        }
        computes
    }

    /// Sets the topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the link profile.
    #[must_use]
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Sets the per-edge packet-loss probability on the current link profile.
    /// An out-of-range rate is caught by [`ScenarioSpec::validate`] (and the
    /// orchestrator's typed `InvalidLink` rejection), not here — specs are
    /// plain data.
    #[must_use]
    pub fn loss(mut self, rate: f64) -> Self {
        self.link.loss_rate = rate;
        self
    }

    /// Sets the liveness-watchdog window in virtual seconds (see
    /// [`ScenarioSpec::watchdog`]).
    #[must_use]
    pub fn watchdog_secs(mut self, secs: f64) -> Self {
        self.watchdog = Some(SimDuration::from_secs_f64(secs));
        self
    }

    /// Disables the liveness watchdog (a genuinely stalled run then hangs —
    /// only for tests that prove a stall exists).
    #[must_use]
    pub fn no_watchdog(mut self) -> Self {
        self.watchdog = None;
        self
    }

    /// Sets the state-snapshot cadence of every peer's chain (see
    /// [`ScenarioSpec::snapshot_interval`]).
    #[must_use]
    pub fn snapshot_interval(mut self, interval: u64) -> Self {
        self.snapshot_interval = Some(interval);
        self
    }

    /// Enables state pruning at `depth` blocks behind every peer's head (see
    /// [`ScenarioSpec::prune_depth`]).
    #[must_use]
    pub fn prune_depth(mut self, depth: u64) -> Self {
        self.prune_depth = Some(depth);
        self
    }

    /// Attaches an adaptive policy controller (see
    /// [`ScenarioSpec::controller`]).
    #[must_use]
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = Some(spec);
        self
    }

    /// Sets the gossip dissemination mode (see [`ScenarioSpec::gossip`]).
    #[must_use]
    pub fn gossip(mut self, mode: GossipMode) -> Self {
        self.gossip = mode;
        self
    }

    /// Attaches a hierarchical committee layout (see
    /// [`ScenarioSpec::committees`]).
    #[must_use]
    pub fn committees(mut self, spec: CommitteeSpec) -> Self {
        self.committees = Some(spec);
        self
    }

    /// Enables the fitness gate.
    #[must_use]
    pub fn fitness_threshold(mut self, th: f64) -> Self {
        self.fitness_threshold = Some(th);
        self
    }

    /// Enables the norm-outlier gate.
    #[must_use]
    pub fn norm_z_threshold(mut self, z: f64) -> Self {
        self.norm_z_threshold = Some(z);
        self
    }

    /// Enables the degeneracy gate.
    #[must_use]
    pub fn degeneracy_min_classes(mut self, min: usize) -> Self {
        self.degeneracy_min_classes = Some(min);
        self
    }

    /// Adds an adversary.
    #[must_use]
    pub fn adversary(mut self, adv: Adversary) -> Self {
        self.adversaries.push(adv);
        self
    }

    /// Schedules a partition at `secs` of virtual time.
    #[must_use]
    pub fn partition_at(mut self, secs: f64, left: &[usize], right: &[usize]) -> Self {
        self.timeline.push(TimedFault::at_secs(
            secs,
            Fault::Partition {
                left: left.to_vec(),
                right: right.to_vec(),
            },
        ));
        self
    }

    /// Schedules a heal-all at `secs`.
    #[must_use]
    pub fn heal_at(mut self, secs: f64) -> Self {
        self.timeline
            .push(TimedFault::at_secs(secs, Fault::HealAll));
        self
    }

    /// Schedules a peer departure at `secs`.
    #[must_use]
    pub fn leave_at(mut self, secs: f64, peer: usize) -> Self {
        self.timeline
            .push(TimedFault::at_secs(secs, Fault::PeerLeave { peer }));
        self
    }

    /// Schedules a peer join at `secs` (the peer is dormant before).
    #[must_use]
    pub fn join_at(mut self, secs: f64, peer: usize) -> Self {
        self.timeline
            .push(TimedFault::at_secs(secs, Fault::PeerJoin { peer }));
        self
    }

    /// Schedules a hash-rate shock at `secs`.
    #[must_use]
    pub fn hash_shock_at(mut self, secs: f64, peer: usize, factor: f64) -> Self {
        self.timeline.push(TimedFault::at_secs(
            secs,
            Fault::HashRateShock { peer, factor },
        ));
        self
    }

    /// Schedules a process crash at `secs`: the peer keeps its identity and
    /// on-chain state but loses in-flight fetches and its mempool until a
    /// [`ScenarioSpec::restart_at`].
    #[must_use]
    pub fn crash_at(mut self, secs: f64, peer: usize) -> Self {
        self.timeline
            .push(TimedFault::at_secs(secs, Fault::PeerCrash { peer }));
        self
    }

    /// Schedules a crashed peer's restart at `secs` (resyncs the chain, then
    /// resumes its round).
    #[must_use]
    pub fn restart_at(mut self, secs: f64, peer: usize) -> Self {
        self.timeline
            .push(TimedFault::at_secs(secs, Fault::PeerRestart { peer }));
        self
    }

    /// Replaces the data spec (the model is re-derived to match its shape).
    #[must_use]
    pub fn data(mut self, data: DataSpec) -> Self {
        self.model = SimpleNnConfig::tiny(data.synth.feature_dim, data.synth.num_classes);
        self.data = data;
        self
    }

    /// Replaces the model architecture.
    #[must_use]
    pub fn model(mut self, model: SimpleNnConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Renames the spec.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The strategy the run will actually use: a requested `Consider` is
    /// lowered to `BestK(best_k)` above the cutover peer count, keeping the
    /// aggregation cost linear where the full search would be exponential.
    pub fn resolved_strategy(&self) -> Strategy {
        if self.strategy == Strategy::Consider && self.peers() > self.consider_cutover {
            Strategy::BestK(self.best_k)
        } else {
            self.strategy
        }
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.peers();
        if n < 2 {
            return Err("a scenario needs at least two peers".into());
        }
        if n > MAX_PEERS {
            // Mirror the orchestrator's typed rejection word for word, so a
            // spec and Decentralized::try_new refuse identically.
            return Err(ConfigError::TooManyPeers { got: n }.to_string());
        }
        if self.rounds == 0 {
            return Err("a scenario needs at least one round".into());
        }
        if self.best_k == 0 {
            return Err("best_k must be positive".into());
        }
        if let Some((round, _)) = self.strategy_switch {
            if round == 0 {
                return Err("strategy_switch round is 1-based and must be positive".into());
            }
        }
        for c in &self.computes {
            c.validate()?;
        }
        for a in &self.adversaries {
            if a.client.0 >= n {
                return Err(format!(
                    "adversary references peer {}, but only {n} peers exist",
                    a.client.0
                ));
            }
        }
        blockfed_core::validate_timeline(&self.timeline, n)?;
        if let Some(ctl) = &self.controller {
            if let Err(e) = ctl.validate() {
                // Mirror the orchestrator's typed rejection word for word, so
                // a spec and Decentralized::try_new refuse identically.
                return Err(ConfigError::InvalidController(e).to_string());
            }
        }
        if let Err(e) = self.link.validate() {
            // Mirror the orchestrator's typed rejection word for word, so a
            // spec and Decentralized::try_new refuse identically.
            return Err(ConfigError::InvalidLink(e.to_string()).to_string());
        }
        if let Some(cs) = &self.committees {
            // Mirror the orchestrator's typed rejection word for word, so a
            // spec and Decentralized::try_new refuse identically.
            if cs.count == 0 {
                return Err(
                    ConfigError::InvalidCommittees("need at least one committee".into())
                        .to_string(),
                );
            }
            if cs.count > n {
                return Err(ConfigError::InvalidCommittees(format!(
                    "more committees than peers ({} committees, {n} peers)",
                    cs.count
                ))
                .to_string());
            }
        }
        let pool = self.data.synth.test_per_class * self.data.synth.num_classes;
        if pool / n == 0 {
            return Err(format!(
                "test pool of {pool} examples cannot cover {n} peers"
            ));
        }
        // Starved training pools used to slip past validation and blow up
        // deep in partitioning/training at large populations; reject them
        // up front like the test pool.
        let train = self.data.synth.train_per_class * self.data.synth.num_classes;
        if train / n == 0 {
            return Err(format!(
                "train pool of {train} examples cannot shard across {n} peers"
            ));
        }
        Ok(())
    }

    /// Lowers the spec onto the orchestrator's configuration.
    pub fn decentralized_config(&self) -> DecentralizedConfig {
        let computes = self.effective_computes();
        let uniform = computes.windows(2).all(|w| w[0] == w[1]);
        DecentralizedConfig {
            rounds: self.rounds,
            local_epochs: self.local_epochs,
            batch_size: self.batch_size,
            lr: self.lr,
            momentum: self.momentum,
            wait_policy: self.wait_policy,
            strategy: self.resolved_strategy(),
            strategy_switch: self.strategy_switch,
            payload_bytes: self.payload_bytes,
            difficulty: self.difficulty,
            compute: computes[0],
            per_peer_compute: if uniform { None } else { Some(computes) },
            fitness_threshold: self.fitness_threshold,
            norm_z_threshold: self.norm_z_threshold,
            degeneracy_min_classes: self.degeneracy_min_classes,
            adversaries: self.adversaries.clone(),
            link: self.link,
            topology: self.topology.clone(),
            gossip: self.gossip,
            staleness_decay: self.staleness_decay,
            faults: self.timeline.clone(),
            retarget: self.retarget,
            watchdog: self.watchdog,
            snapshot_interval: self.snapshot_interval,
            prune_depth: self.prune_depth,
            controller: self.controller.clone(),
            committees: self.committees,
            store: None,
            seed: self.seed,
        }
    }

    /// Runs the spec against externally prepared shards/tests and a model
    /// factory — the lowering used by `blockfed-bench`, whose experiments
    /// bring their own datasets and architectures (e.g. the EffNet head).
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or the shard count differs from the
    /// spec's peer count.
    pub fn run_with(
        &self,
        train_shards: &[Dataset],
        peer_tests: &[Dataset],
        make_model: &mut dyn FnMut() -> Sequential,
    ) -> DecentralizedRun {
        let mut sink = blockfed_telemetry::NoopSink;
        self.run_traced_with(train_shards, peer_tests, make_model, &mut sink)
    }

    /// [`ScenarioSpec::run_with`] with a trace sink attached: every span and
    /// event the orchestrator emits lands in `sink`, stamped with virtual sim
    /// time. Attaching a sink never perturbs the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or the shard count differs from the
    /// spec's peer count.
    pub fn run_traced_with(
        &self,
        train_shards: &[Dataset],
        peer_tests: &[Dataset],
        make_model: &mut dyn FnMut() -> Sequential,
        sink: &mut dyn blockfed_telemetry::TraceSink,
    ) -> DecentralizedRun {
        self.run_traced_with_store(train_shards, peer_tests, make_model, sink, None)
    }

    /// [`ScenarioSpec::run_traced_with`] with an explicit [`ChainStore`]
    /// handle: every peer of the run shares `store` for block-execution and
    /// signature-verdict caching, and sequential runs handed the same store
    /// reuse each other's cached work (the fork-replay path). `None` gives
    /// the run a private store that is dropped with it.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or the shard count differs from the
    /// spec's peer count.
    pub fn run_traced_with_store(
        &self,
        train_shards: &[Dataset],
        peer_tests: &[Dataset],
        make_model: &mut dyn FnMut() -> Sequential,
        sink: &mut dyn blockfed_telemetry::TraceSink,
        store: Option<ChainStore>,
    ) -> DecentralizedRun {
        self.validate().expect("invalid scenario spec");
        assert_eq!(
            train_shards.len(),
            self.peers(),
            "shard count must match the spec's peer count"
        );
        let mut cfg = self.decentralized_config();
        cfg.store = store;
        let driver = Decentralized::new(cfg, train_shards, peer_tests);
        driver.run_traced(make_model, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_lower() {
        let spec = ScenarioSpec::new("base", 3);
        spec.validate().unwrap();
        let cfg = spec.decentralized_config();
        assert_eq!(cfg.rounds, 3);
        assert!(cfg.per_peer_compute.is_none(), "uniform peers stay scalar");
        assert_eq!(cfg.strategy, Strategy::Consider);
    }

    #[test]
    fn heterogeneous_computes_become_per_peer() {
        let mut spec = ScenarioSpec::new("hetero", 3);
        spec.computes[2].train_rate = 50.0;
        let cfg = spec.decentralized_config();
        assert_eq!(cfg.per_peer_compute.as_ref().map(Vec::len), Some(3));
    }

    #[test]
    fn consider_cutover_lowers_to_best_k() {
        let small = ScenarioSpec::new("s", 5).consider_cutover(6, 3);
        assert_eq!(small.resolved_strategy(), Strategy::Consider);
        let big = ScenarioSpec::new("b", 10).consider_cutover(6, 3);
        assert_eq!(big.resolved_strategy(), Strategy::BestK(3));
        // An explicit strategy is never overridden.
        let explicit = ScenarioSpec::new("e", 10).strategy(Strategy::NotConsider);
        assert_eq!(explicit.resolved_strategy(), Strategy::NotConsider);
        assert_eq!(
            big.decentralized_config().strategy,
            Strategy::BestK(3),
            "the lowering uses the resolved strategy"
        );
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(ScenarioSpec::new("one", 1).validate().is_err());
        // 33 peers is no longer a mask-width violation — only the data pool
        // has to cover the population now.
        let thirty_three = ScenarioSpec::new("past-u32", 33).data(DataSpec::scaled_for(33));
        thirty_three.validate().unwrap();
        // 257 peers — the old ceiling's rejection point — now validates; the
        // ceiling is the mask's widened 1024.
        ScenarioSpec::new("past-old-cap", 257)
            .data(DataSpec::scaled_for(257))
            .validate()
            .unwrap();
        // Past the orchestrator ceiling the error mirrors ConfigError.
        let too_many = ScenarioSpec::new("many", 1025)
            .data(DataSpec::scaled_for(1025))
            .validate()
            .unwrap_err();
        assert!(too_many.contains("at most 1024 peers"), "{too_many}");
        assert_eq!(
            too_many,
            blockfed_core::ConfigError::TooManyPeers { got: 1025 }.to_string(),
            "spec and orchestrator must reject with the same words"
        );
        assert!(ScenarioSpec::new("r0", 3).rounds(0).validate().is_err());
        let bad_fault = ScenarioSpec::new("f", 3).leave_at(1.0, 7);
        assert!(bad_fault.validate().is_err());
        let bad_adv = ScenarioSpec::new("a", 3).adversary(Adversary::new(
            blockfed_fl::ClientId(5),
            blockfed_fl::Attack::Replay,
        ));
        assert!(bad_adv.validate().is_err());
        // 40 test examples cannot cover 48 peers; the scaled data spec can.
        assert!(ScenarioSpec::new("wide", 20).validate().is_ok());
        assert!(ScenarioSpec::new("starved", 48).validate().is_err());
        assert!(ScenarioSpec::new("fed", 48)
            .data(DataSpec::scaled_for(48))
            .validate()
            .is_ok());
        // A starved *train* pool is refused up front instead of blowing up
        // deep in the partitioner at run time.
        let starved_train = ScenarioSpec::new("st", 48).data(DataSpec {
            synth: blockfed_data::SynthCifarConfig {
                train_per_class: 1,
                test_per_class: 100,
                ..blockfed_data::SynthCifarConfig::tiny()
            },
            partition: blockfed_data::Partition::Iid,
        });
        let err = starved_train.validate().unwrap_err();
        assert!(err.contains("train pool of 4 examples"), "{err}");
    }

    #[test]
    fn committee_spec_validates_and_lowers() {
        use blockfed_core::CommitteeSpec;
        // Default flat: no committees in the lowered config.
        let flat = ScenarioSpec::new("flat", 6);
        assert_eq!(flat.committees, None);
        assert_eq!(flat.decentralized_config().committees, None);
        // A committee layout lowers verbatim.
        let spec = ScenarioSpec::new("c", 6).committees(CommitteeSpec::contiguous(3));
        spec.validate().unwrap();
        assert_eq!(
            spec.decentralized_config().committees,
            Some(CommitteeSpec::contiguous(3))
        );
        // Invalid layouts are refused with the orchestrator's exact words.
        let zero = ScenarioSpec::new("c0", 6)
            .committees(CommitteeSpec::contiguous(0))
            .validate()
            .unwrap_err();
        assert_eq!(
            zero,
            blockfed_core::ConfigError::InvalidCommittees("need at least one committee".into())
                .to_string()
        );
        let over = ScenarioSpec::new("c9", 6)
            .committees(CommitteeSpec::seeded(9, 7))
            .validate()
            .unwrap_err();
        assert_eq!(
            over,
            blockfed_core::ConfigError::InvalidCommittees(
                "more committees than peers (9 committees, 6 peers)".into()
            )
            .to_string()
        );
    }

    #[test]
    fn scaled_data_caps_past_256_peers_but_covers_the_ceiling() {
        // Linear growth below the cap…
        assert_eq!(DataSpec::scaled_for(48).synth.train_per_class, 60);
        // …the 256-peer point lands exactly on it (so the committed scale256
        // baselines are untouched)…
        assert_eq!(DataSpec::scaled_for(256).synth.train_per_class, 320);
        assert_eq!(DataSpec::scaled_for(512).synth.train_per_class, 320);
        // …and past it the pool stops growing while every shard and test
        // split stays non-empty all the way to the orchestrator ceiling.
        let huge = DataSpec::scaled_for(MAX_PEERS);
        assert_eq!(huge.synth.train_per_class, 320);
        let pool = huge.synth.test_per_class * huge.synth.num_classes;
        assert!(
            pool / MAX_PEERS >= 1,
            "pool {pool} starves {MAX_PEERS} peers"
        );
        ScenarioSpec::new("ceiling", MAX_PEERS)
            .data(huge)
            .validate()
            .unwrap();
    }

    #[test]
    fn gossip_mode_lowers_into_the_config() {
        // Announce/fetch is the primary path; Full is the opt-in legacy
        // accounting.
        let spec = ScenarioSpec::new("g", 3);
        assert_eq!(spec.gossip, GossipMode::AnnounceFetch);
        assert_eq!(
            spec.decentralized_config().gossip,
            GossipMode::AnnounceFetch
        );
        let full = ScenarioSpec::new("g", 3).gossip(GossipMode::Full);
        assert_eq!(full.decentralized_config().gossip, GossipMode::Full);
    }

    #[test]
    fn retarget_rule_lowers_into_the_config() {
        let spec = ScenarioSpec::new("pi", 3).retarget(RetargetRule::Pi { kp: 0.3, ki: 0.05 });
        assert_eq!(
            spec.decentralized_config().retarget,
            RetargetRule::Pi { kp: 0.3, ki: 0.05 }
        );
        // The default stays on the legacy Homestead control arm.
        assert_eq!(
            ScenarioSpec::new("h", 3).decentralized_config().retarget,
            RetargetRule::Homestead
        );
    }

    #[test]
    fn batch_parallel_is_builder_order_independent() {
        // The spec-level knob survives a later computes()/uniform_compute()
        // because it is applied at lowering time, not at builder-call time.
        let profiles = vec![ComputeProfile::paper_vm(); 3];
        let flipped_first = ScenarioSpec::new("bp", 3)
            .batch_parallel(true)
            .computes(profiles.clone());
        let flipped_last = ScenarioSpec::new("bp", 3)
            .computes(profiles)
            .batch_parallel(true);
        for spec in [&flipped_first, &flipped_last] {
            assert!(spec.effective_computes().iter().all(|c| c.batch_parallel));
            let cfg = spec.decentralized_config();
            assert!(cfg.compute.batch_parallel, "lowering must carry the knob");
        }
        // Unset, the per-profile flags pass through untouched.
        let mut spec = ScenarioSpec::new("bp-off", 3);
        spec.computes[1].batch_parallel = true;
        let effective = spec.effective_computes();
        assert!(!effective[0].batch_parallel && effective[1].batch_parallel);
        assert!(
            spec.decentralized_config()
                .per_peer_compute
                .expect("non-uniform profiles stay per-peer")[1]
                .batch_parallel
        );
    }

    #[test]
    fn timeline_builders_accumulate() {
        let spec = ScenarioSpec::new("t", 5)
            .partition_at(1.0, &[0, 1], &[2, 3])
            .heal_at(2.0)
            .join_at(3.0, 4)
            .leave_at(4.0, 0)
            .hash_shock_at(5.0, 1, 2.0)
            .crash_at(6.0, 1)
            .restart_at(7.0, 1);
        assert_eq!(spec.timeline.len(), 7);
        spec.validate().unwrap();
        // Crash/restart alternation is enforced through the shared timeline
        // validator.
        assert!(ScenarioSpec::new("r", 3)
            .restart_at(1.0, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn loss_lowers_and_invalid_loss_mirrors_the_orchestrator() {
        let spec = ScenarioSpec::new("lossy", 3).loss(0.05);
        spec.validate().unwrap();
        assert_eq!(spec.decentralized_config().link.loss_rate, 0.05);
        // An out-of-range rate is refused with the orchestrator's words.
        let err = ScenarioSpec::new("bad", 3)
            .loss(1.5)
            .validate()
            .unwrap_err();
        assert!(err.starts_with("invalid link profile"), "{err}");
        assert_eq!(
            err,
            blockfed_core::ConfigError::InvalidLink(
                blockfed_net::LinkError::InvalidLossRate { got: 1.5 }.to_string()
            )
            .to_string(),
            "spec and orchestrator must reject with the same words"
        );
    }

    #[test]
    fn watchdog_knob_lowers_into_the_config() {
        // The default matches the orchestrator's ten-minute window.
        let spec = ScenarioSpec::new("w", 3);
        assert_eq!(
            spec.decentralized_config().watchdog,
            Some(SimDuration::from_secs(600))
        );
        let tight = ScenarioSpec::new("w", 3).watchdog_secs(30.0);
        assert_eq!(
            tight.decentralized_config().watchdog,
            Some(SimDuration::from_secs(30))
        );
        let off = ScenarioSpec::new("w", 3).no_watchdog();
        assert_eq!(off.decentralized_config().watchdog, None);
    }
}
