//! `blockfed-scenario`: the declarative scenario engine.
//!
//! The paper evaluates one fixed topology — three healthy peers on a LAN —
//! and explicitly leaves "an arbitrary number of local updates on each peer
//! in asynchronous communication" to future work. This crate turns that
//! future work into data: a [`ScenarioSpec`] declares an N-peer run
//! (heterogeneous compute, topology, links, wait/seal policies, aggregation
//! strategy, staleness decay, adversaries) plus a timeline of faults
//! (partitions, heals, peer churn, hash-rate shocks); a [`ScenarioMatrix`]
//! varies it along axes; and the [`ScenarioRunner`] executes whole matrices
//! in parallel on the `blockfed-compute` worker pool, folding every cell into
//! a [`ScenarioReport`] (accuracy / wait / fork-rate / bytes-gossiped per
//! cell) that renders as a table or as machine-readable
//! `BENCH_scenarios.json`.
//!
//! Determinism contract: a spec's `seed` fully determines its report
//! (modulo host wall-clock, which is excluded from report equality), at any
//! `BLOCKFED_THREADS` setting.
//!
//! # Examples
//!
//! ```no_run
//! use blockfed_scenario::{ScenarioMatrix, ScenarioRunner, ScenarioSpec};
//! use blockfed_fl::WaitPolicy;
//!
//! // A 10-peer run with a mid-run partition and churn…
//! let spec = ScenarioSpec::new("frontier", 10)
//!     .rounds(3)
//!     .partition_at(5.0, &[0, 1], &[2, 3, 4])
//!     .heal_at(15.0)
//!     .join_at(20.0, 9)
//!     .leave_at(30.0, 1);
//! // …swept over wait policies and seeds, executed in parallel.
//! let matrix = ScenarioMatrix::new(spec)
//!     .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(5)])
//!     .vary_seed(&[1, 2]);
//! let report = ScenarioRunner::new().run_matrix(&matrix);
//! println!("{}", report.table());
//! report.write_json("results").unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod report;
pub mod runner;
pub mod spec;

pub use matrix::{ScenarioMatrix, DEFAULT_PEER_AXIS};
pub use report::{CellReport, ScenarioReport};
pub use runner::ScenarioRunner;
pub use spec::{DataSpec, ScenarioSpec};
