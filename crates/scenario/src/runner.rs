//! The scenario runner: self-contained cell execution and parallel matrices.
//!
//! Each cell is an independent deterministic simulation seeded from its spec,
//! so a matrix fans out across `blockfed-compute` workers with `par_map` —
//! one worker per cell chunk — while every *cell's* internals stay
//! single-threaded inside the parallel region (the compute layer runs nested
//! primitives inline), which keeps reports bit-identical at any worker count.

use std::time::Instant;

use blockfed_core::{ChainStore, ControllerSpec};
use blockfed_data::{partition_dataset, Dataset, SynthCifar};
use blockfed_fl::Strategy;
use blockfed_sim::RngHub;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::matrix::ScenarioMatrix;
use crate::report::{CellReport, ScenarioReport};
use crate::spec::ScenarioSpec;

/// Executes scenario specs and matrices.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner;

impl ScenarioRunner {
    /// Creates a runner.
    pub fn new() -> Self {
        ScenarioRunner
    }

    /// Runs one cell end to end: synthesizes and partitions the data from the
    /// spec's seed, builds the model, drives the decentralized orchestrator,
    /// and folds the result into a [`CellReport`].
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`].
    pub fn run(&self, spec: &ScenarioSpec) -> CellReport {
        let mut sink = blockfed_telemetry::NoopSink;
        self.run_traced(spec, &mut sink)
    }

    /// [`ScenarioRunner::run`] with a trace sink attached: the cell's spans
    /// and events (round lifecycle, floods, fetch episodes, faults, watchdog)
    /// land in `sink` stamped with virtual sim time. The simulation itself is
    /// bit-identical with or without a sink.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`].
    pub fn run_traced(
        &self,
        spec: &ScenarioSpec,
        sink: &mut dyn blockfed_telemetry::TraceSink,
    ) -> CellReport {
        self.run_cell(spec, sink, None)
    }

    /// [`ScenarioRunner::run`] against an explicit [`ChainStore`]: every peer
    /// of the cell shares `store` for block-execution and signature-verdict
    /// caching, and *sequential* cells handed the same handle reuse each
    /// other's cached work — the memory-check and fork-replay paths. The
    /// simulation itself is bit-identical to a private-store run; only the
    /// cell's `store_*` counters observe the sharing.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`].
    pub fn run_with_store(&self, spec: &ScenarioSpec, store: &ChainStore) -> CellReport {
        let mut sink = blockfed_telemetry::NoopSink;
        self.run_cell(spec, &mut sink, Some(store.clone()))
    }

    /// Replays the suffix of a finished run under a different aggregation
    /// strategy — "replay round `at_round` under BestK instead of Consider"
    /// as a first-class operation. Runs `spec` to completion against a fresh
    /// store, then runs a derived spec (named `{name}+replay@{at_round}`)
    /// that switches to `strategy` from round `at_round` (1-based) onward
    /// against the *same* store, so the unchanged prefix of blocks is served
    /// from the execution memo instead of being re-executed. Returns the
    /// (base, replay) reports.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`] or `at_round` is 0.
    pub fn run_fork_replay(
        &self,
        spec: &ScenarioSpec,
        at_round: u32,
        strategy: Strategy,
    ) -> (CellReport, CellReport) {
        let store = ChainStore::new();
        let base = self.run_with_store(spec, &store);
        let replay_spec = spec
            .clone()
            .named(format!("{}+replay@{at_round}", spec.name))
            .strategy_switch_at(at_round, strategy);
        let replay = self.run_with_store(&replay_spec, &store);
        (base, replay)
    }

    /// Controller-vs-static comparison from a shared prefix — the
    /// [`ScenarioRunner::run_fork_replay`] pattern with the adaptive
    /// controller as the delta. Runs `spec` (with any controller stripped)
    /// against a fresh store, then a derived spec (named `{name}+ctl={…}`)
    /// with `controller` attached against the *same* store: the rounds before
    /// the controller's first firing replay from the execution memo instead
    /// of being re-executed. Returns the (static, controlled) reports.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ScenarioSpec::validate`] or the controller
    /// spec is invalid.
    pub fn run_controller_replay(
        &self,
        spec: &ScenarioSpec,
        controller: ControllerSpec,
    ) -> (CellReport, CellReport) {
        let store = ChainStore::new();
        let mut static_spec = spec.clone();
        static_spec.controller = None;
        let base = self.run_with_store(&static_spec, &store);
        let controlled_spec = static_spec
            .named(format!("{}+ctl={controller}", spec.name))
            .controller(controller);
        let controlled = self.run_with_store(&controlled_spec, &store);
        (base, controlled)
    }

    fn run_cell(
        &self,
        spec: &ScenarioSpec,
        sink: &mut dyn blockfed_telemetry::TraceSink,
        store: Option<ChainStore>,
    ) -> CellReport {
        spec.validate().expect("invalid scenario spec");
        let started = Instant::now();
        let (shards, tests) = prepare_data(spec);
        let mut arch_rng = StdRng::seed_from_u64(spec.seed ^ 0x5CE0);
        let model = spec.model;
        let run = spec.run_traced_with_store(
            &shards,
            &tests,
            &mut || model.build(&mut arch_rng),
            sink,
            store,
        );

        let finished: Vec<&Vec<blockfed_core::PeerRoundRecord>> =
            run.peer_records.iter().filter(|r| !r.is_empty()).collect();
        let mean_final_accuracy = if finished.is_empty() {
            0.0
        } else {
            finished
                .iter()
                .map(|r| r.last().expect("non-empty").chosen_accuracy)
                .sum::<f64>()
                / finished.len() as f64
        };
        let records = run.peer_records.iter().map(Vec::len).sum();
        let max_mask_bit = run.max_mask_bit().map(|b| b as u32);
        // Accuracy-over-time trajectory: a round counts from the moment its
        // last finisher aggregated, at the mean accuracy the finishers saw.
        let mut round_accuracy = Vec::new();
        for round in 1..=spec.rounds {
            let finishers: Vec<&blockfed_core::PeerRoundRecord> = run
                .peer_records
                .iter()
                .flatten()
                .filter(|r| r.round == round)
                .collect();
            if finishers.is_empty() {
                continue;
            }
            let done_at = finishers
                .iter()
                .map(|r| r.aggregated_at)
                .max()
                .expect("non-empty");
            let mean_acc =
                finishers.iter().map(|r| r.chosen_accuracy).sum::<f64>() / finishers.len() as f64;
            round_accuracy.push((done_at.as_secs_f64(), mean_acc));
        }
        CellReport {
            name: spec.name.clone(),
            peers: spec.peers(),
            rounds: spec.rounds,
            wait_policy: spec.wait_policy,
            strategy: spec.resolved_strategy(),
            controller: spec.controller.as_ref().map(ToString::to_string),
            seed: spec.seed,
            mean_final_accuracy,
            mean_wait_secs: run.mean_wait().as_secs_f64(),
            makespan_secs: run.finished_at.as_secs_f64(),
            fork_rate: run.fork_rate(),
            gossip_bytes: run.gossip_bytes,
            fetch_bytes: run.fetch_bytes,
            metrics: run.metrics,
            blocks: run.chain.blocks,
            records,
            max_mask_bit,
            round_accuracy,
            wall_clock_secs: started.elapsed().as_secs_f64(),
        }
    }

    /// Expands the matrix and runs every cell, fanning the cells across the
    /// `blockfed-compute` worker pool.
    ///
    /// # Panics
    ///
    /// Panics if any cell spec is invalid (validate cells up front via
    /// [`ScenarioMatrix::cells`] to report errors without burning compute).
    pub fn run_matrix(&self, matrix: &ScenarioMatrix) -> ScenarioReport {
        let cells = matrix.cells();
        for c in &cells {
            c.validate().expect("invalid matrix cell");
        }
        // Run each *distinct* cell exactly once and clone its report into
        // every duplicate slot. Spec equality implies equal seeds, so a
        // deduplicated cell is bit-identical to what the duplicate would have
        // produced; distinct cells keep fully isolated fresh stores, so
        // parallel cells can never observe each other's cached executions.
        let mut unique: Vec<&ScenarioSpec> = Vec::new();
        let mut slot: Vec<usize> = Vec::with_capacity(cells.len());
        for c in &cells {
            match unique.iter().position(|u| *u == c) {
                Some(i) => slot.push(i),
                None => {
                    unique.push(c);
                    slot.push(unique.len() - 1);
                }
            }
        }
        let unique_reports = blockfed_compute::par_map(&unique, |spec| self.run(spec));
        let reports = slot.iter().map(|&i| unique_reports[i].clone()).collect();
        ScenarioReport {
            name: matrix.base.name.clone(),
            cells: reports,
        }
    }
}

/// Synthesizes the cell's datasets: one Dirichlet/IID shard per peer from a
/// fresh training draw, and per-peer test sets cut from a disjoint draw.
fn prepare_data(spec: &ScenarioSpec) -> (Vec<Dataset>, Vec<Dataset>) {
    let n = spec.peers();
    let gen = SynthCifar::new(spec.data.synth.clone());
    let (train, _held_out) = gen.generate(spec.seed);
    let hub = RngHub::new(spec.seed);
    let mut peer_draw = hub.stream("scenario-peer-tests");
    let pool = gen.sample(&mut peer_draw, spec.data.synth.test_per_class);
    let per = pool.len() / n;
    let tests: Vec<Dataset> = (0..n)
        .map(|i| {
            let idx: Vec<usize> = (i * per..(i + 1) * per).collect();
            pool.subset(&idx)
        })
        .collect();
    let mut part_rng = hub.stream("scenario-partition");
    let shards = partition_dataset(&train, n, spec.data.partition, &mut part_rng);
    (shards, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_fl::{Strategy, WaitPolicy};

    /// A small but fully featured churn cell: heterogeneous compute, one
    /// partition + heal, one join and one leave.
    fn churn_spec(peers: usize, seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new("churn", peers)
            .rounds(2)
            .consider_cutover(4, 3)
            .partition_at(3.0, &[0], &[1, 2])
            .heal_at(8.0)
            .join_at(10.0, peers - 1)
            .leave_at(14.0, 1)
            .seed(seed);
        // Heterogeneous peers: a fast head, a straggling tail.
        for (i, c) in spec.computes.iter_mut().enumerate() {
            c.train_rate = 700.0 - 40.0 * i as f64;
        }
        spec
    }

    #[test]
    fn acceptance_ten_peer_churn_cell_replays_deterministically() {
        // The PR's acceptance bar: a single spec expresses a 10-peer
        // heterogeneous run with a mid-run partition and a join + leave, and
        // the same seed reproduces the identical report.
        let spec = churn_spec(10, 33);
        assert_eq!(spec.resolved_strategy(), Strategy::BestK(3));
        let runner = ScenarioRunner::new();
        let a = runner.run(&spec);
        let b = runner.run(&spec);
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert!(a.records > 0, "nobody aggregated: {a:?}");
        assert!(a.mean_final_accuracy > 0.0);
        // A different seed diverges.
        let c = runner.run(&churn_spec(10, 34));
        assert_ne!(a, c);
    }

    #[test]
    fn lossy_cell_records_resilience_meters_and_replays() {
        // A lossy cell settles through the retry machinery, meters its drops,
        // and still replays bit-identically; its lossless twin keeps every
        // resilience meter at zero.
        let spec = churn_spec(5, 70).loss(0.2);
        let runner = ScenarioRunner::new();
        let a = runner.run(&spec);
        assert!(a.dropped_msgs() > 0, "20% loss must drop something: {a:?}");
        assert!(!a.stalled(), "the lossy cell must settle, not stall: {a:?}");
        assert!(a.records > 0);
        let b = runner.run(&spec);
        assert_eq!(a, b, "lossy runs must replay bit-identically");
        // The lossless twin drops nothing on its links; the mid-run partition
        // may still force on-demand fetch recoveries (deliveries cut in
        // flight), which is the machinery working, not loss.
        let clean = runner.run(&churn_spec(5, 70));
        assert_eq!(clean.dropped_msgs(), 0, "lossless links drop nothing");
        assert!(!clean.stalled());
        // A fault-free lossless cell keeps every resilience meter at zero.
        let calm = runner.run(&ScenarioSpec::new("calm", 3).rounds(2).seed(70));
        assert_eq!(calm.dropped_msgs(), 0);
        assert_eq!(calm.fetch_retries(), 0);
        assert_eq!(calm.recovery_ms(), 0.0);
        assert!(!calm.stalled());
        // The folded timing distributions ride along on every cell.
        assert!(calm.metrics.histogram("wait_secs").is_some());
        assert!(calm.wait_max_secs() >= 0.0);
    }

    #[test]
    fn traced_cell_matches_untraced_and_captures_round_spans() {
        // ScenarioRunner::run_traced is run() with a sink: same report bit
        // for bit, plus the full span stream in the sink.
        let spec = churn_spec(5, 70).loss(0.2);
        let runner = ScenarioRunner::new();
        let plain = runner.run(&spec);
        let mut sink = blockfed_telemetry::MemorySink::new();
        let traced = runner.run_traced(&spec, &mut sink);
        assert_eq!(plain, traced, "a sink must never perturb the cell");
        for name in ["round", "round.train", "round.wait", "net.flood"] {
            assert!(sink.contains(name), "trace missing {name}");
        }
    }

    #[test]
    fn sequential_runs_share_nothing_unless_handed_a_store() {
        // The memo-growth regression: two sequential in-process runs must not
        // share or accumulate cached verdicts. With private (default) stores
        // the second run starts cold — bit-identical reports, including the
        // store_* counters, prove it re-verified and re-executed everything.
        let spec = ScenarioSpec::new("iso", 3).rounds(2).seed(7);
        let runner = ScenarioRunner::new();
        let a = runner.run(&spec);
        let b = runner.run(&spec);
        assert_eq!(a, b, "private stores must leave no trace between runs");
        // Within one run the cell's peers share its store, so sibling imports
        // of the same block hit the memo; but every block was *executed*
        // exactly once (a miss), so misses track the canonical chain.
        assert!(a.metrics.counter("store_exec_misses") > 0);
        // An explicitly shared store is the opt-in: the second run reuses the
        // first's work, visible in its counters and nowhere else.
        let store = blockfed_core::ChainStore::new();
        let c = runner.run_with_store(&spec, &store);
        let d = runner.run_with_store(&spec, &store);
        assert_eq!(c, a, "an empty shared store behaves like a private one");
        assert!(
            d.metrics.counter("store_exec_hits") > c.metrics.counter("store_exec_hits"),
            "the second run over a shared store must hit the warm memo: {d:?}"
        );
        assert_eq!(
            d.metrics.counter("store_exec_misses"),
            0,
            "every block execution was cached by the first run"
        );
        assert_eq!(
            d.metrics.counter("store_sig_misses"),
            0,
            "every verdict was cached by the first run"
        );
        // Sharing never changes simulation results.
        assert_eq!(c.mean_final_accuracy, d.mean_final_accuracy);
        assert_eq!(c.blocks, d.blocks);
        assert_eq!(c.records, d.records);
    }

    #[test]
    fn fork_replay_reuses_prefix_and_switches_strategy() {
        let spec = ScenarioSpec::new("fr", 5).rounds(3).seed(9);
        let runner = ScenarioRunner::new();
        let (base, replay) = runner.run_fork_replay(&spec, 2, Strategy::NotConsider);
        assert_eq!(replay.name, "fr+replay@2");
        // The base leg against the (initially empty) shared store matches a
        // plain private-store run bit for bit.
        assert_eq!(base, runner.run(&spec));
        // The replay's unchanged prefix is served from the execution memo.
        assert!(
            replay.metrics.counter("store_exec_hits") > 0,
            "replay must reuse the base run's prefix: {replay:?}"
        );
        // Replaying is itself deterministic.
        let (base2, replay2) = runner.run_fork_replay(&spec, 2, Strategy::NotConsider);
        assert_eq!(base, base2);
        assert_eq!(replay, replay2);
    }

    #[test]
    fn matrix_dedups_identical_cells() {
        // vary_seed(&[1, 1]) expands to two bit-identical cells; the runner
        // executes one and clones the report into both slots, and the
        // duplicate is indistinguishable from running it again from scratch.
        let base = ScenarioSpec::new("dup", 3).rounds(2);
        let matrix = ScenarioMatrix::new(base.clone()).vary_seed(&[1, 1]);
        let runner = ScenarioRunner::new();
        let report = runner.run_matrix(&matrix);
        assert_eq!(report.cells.len(), 2, "every slot keeps its report");
        assert_eq!(report.cells[0], report.cells[1]);
        let solo = runner.run(&base.seed(1).named(report.cells[0].name.clone()));
        assert_eq!(report.cells[0], solo, "dedup must not change any cell");
    }

    #[test]
    fn dedup_key_covers_store_and_controller_fields() {
        // Regression: the matrix dedup keys on *spec equality*. Cells that
        // differ only in snapshot_interval, prune_depth, the controller, the
        // committee layout, or the gossip mode would be silently merged if
        // any of those fields escaped PartialEq — each must keep the pair
        // distinct.
        let base = ScenarioSpec::new("key", 3).rounds(1);
        let variants = [
            base.clone().snapshot_interval(2),
            base.clone().prune_depth(4),
            base.clone()
                .controller(blockfed_core::ControllerSpec::noop()),
            base.clone()
                .committees(blockfed_core::CommitteeSpec::contiguous(2)),
            base.clone()
                .gossip(blockfed_net::GossipMode::Epidemic { fanout: 2 }),
        ];
        for v in &variants {
            assert_ne!(base, *v, "field must be part of spec identity: {}", v.name);
        }
        // End to end: a matrix whose controller axis is (static, noop) runs
        // both cells instead of cloning one report — visible in the reports'
        // controller columns.
        let matrix = ScenarioMatrix::new(base.clone())
            .vary_controller(&[None, Some(blockfed_core::ControllerSpec::noop())]);
        let report = ScenarioRunner::new().run_matrix(&matrix);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].controller, None);
        assert_eq!(report.cells[1].controller, Some("noop".into()));
        assert!(report.cells[1].name.ends_with("/ctl=noop"));
        // Same end to end for the hierarchical axes: flat vs committee runs
        // both cells (visible in the committee meters), never one clone.
        let hier = ScenarioMatrix::new(base.rounds(1))
            .vary_committees(&[None, Some(blockfed_core::CommitteeSpec::contiguous(2))]);
        let hier_report = ScenarioRunner::new().run_matrix(&hier);
        assert_eq!(hier_report.cells.len(), 2);
        assert!(hier_report.cells[0].name.ends_with("/flat"));
        assert_eq!(hier_report.cells[0].committee_rounds(), 0);
        assert!(hier_report.cells[1].name.ends_with("/c2"));
        assert!(
            hier_report.cells[1].committee_rounds() > 0,
            "the committee cell must actually merge: {:?}",
            hier_report.cells[1]
        );
    }

    #[test]
    fn controller_replay_shares_the_prefix_with_the_static_run() {
        // run_controller_replay is the fork-replay pattern with the adaptive
        // controller as the delta: same store, so the rounds before the
        // controller's first firing come from the execution memo.
        let spec = churn_spec(5, 9).rounds(3);
        let runner = ScenarioRunner::new();
        let ctl = blockfed_core::ControllerSpec::threshold(Default::default());
        let (base, controlled) = runner.run_controller_replay(&spec, ctl.clone());
        assert_eq!(base.controller, None);
        assert_eq!(controlled.controller, Some("rule".into()));
        assert!(controlled.name.ends_with("+ctl=rule"));
        // The static leg matches a plain private-store run bit for bit.
        assert_eq!(base, runner.run(&spec));
        assert!(
            controlled.metrics.counter("store_exec_hits") > 0,
            "controlled leg must reuse the static prefix: {controlled:?}"
        );
        // Replaying the comparison is itself deterministic.
        let (base2, controlled2) = runner.run_controller_replay(&spec, ctl);
        assert_eq!(base, base2);
        assert_eq!(controlled, controlled2);
    }

    #[test]
    fn matrix_runs_four_churn_cells_in_parallel() {
        // ≥ 4 such cells through the compute-pool fan-out, still
        // deterministic end to end.
        let matrix = ScenarioMatrix::new(churn_spec(5, 1))
            .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(3)])
            .vary_seed(&[1, 2]);
        let runner = ScenarioRunner::new();
        let report = runner.run_matrix(&matrix);
        assert_eq!(report.cells.len(), 4);
        let again = runner.run_matrix(&matrix);
        assert_eq!(report, again, "matrix replay must be deterministic");
        for cell in &report.cells {
            assert!(cell.records > 0, "{} never aggregated", cell.name);
        }
        // JSON feed covers every cell.
        let json = report.to_json();
        for cell in &report.cells {
            assert!(json.contains(&format!("\"name\": \"{}\"", cell.name)));
        }
    }
}
