//! Scenario matrices: the cartesian expansion of a base spec along axes.
//!
//! The paper's tables are exactly such matrices (policy × model, attack ×
//! defence); the matrix type makes the pattern declarative and lets the
//! runner execute every cell in parallel.

use blockfed_core::{CommitteeSpec, ControllerSpec};
use blockfed_fl::{Strategy, WaitPolicy};
use blockfed_net::GossipMode;

use crate::spec::ScenarioSpec;

/// The default peer-count axis for scaling sweeps: small populations where
/// the full combination search still terminates, the mid range around the
/// Consider→BestK cutover, and a 48-peer point past the old 32-peer
/// (u32 combo-mask) ceiling so every sweep exercises the variable-width
/// mask path. The axis deliberately stops well below the 1024-peer
/// orchestrator ceiling: flat cells past a few hundred peers are
/// quadratic-traffic territory, covered instead by the hierarchical
/// committee cells (`tests/scale1024.rs`, `examples/scenarios.rs
/// --committees`) over [`crate::DataSpec::scaled_for`]'s capped pools.
pub const DEFAULT_PEER_AXIS: &[usize] = &[3, 5, 10, 15, 20, 48];

/// A base scenario plus variation axes. Empty axes keep the base value, so a
/// matrix with no axes has exactly one cell (the base itself).
///
/// # Examples
///
/// ```
/// use blockfed_scenario::{ScenarioMatrix, ScenarioSpec};
/// use blockfed_fl::WaitPolicy;
///
/// let matrix = ScenarioMatrix::new(ScenarioSpec::new("demo", 3))
///     .vary_peers(&[3, 5])
///     .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(2)]);
/// assert_eq!(matrix.cells().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// The base spec every cell derives from.
    pub base: ScenarioSpec,
    peer_counts: Vec<usize>,
    wait_policies: Vec<WaitPolicy>,
    strategies: Vec<Strategy>,
    seeds: Vec<u64>,
    controllers: Vec<Option<ControllerSpec>>,
    committees: Vec<Option<CommitteeSpec>>,
    gossips: Vec<GossipMode>,
}

impl ScenarioMatrix {
    /// Wraps a base spec with no variation axes.
    pub fn new(base: ScenarioSpec) -> Self {
        ScenarioMatrix {
            base,
            peer_counts: Vec::new(),
            wait_policies: Vec::new(),
            strategies: Vec::new(),
            seeds: Vec::new(),
            controllers: Vec::new(),
            committees: Vec::new(),
            gossips: Vec::new(),
        }
    }

    /// Varies the peer count. Compute profiles are cycled from the base's;
    /// timeline events referencing peers outside the new count are dropped.
    #[must_use]
    pub fn vary_peers(mut self, counts: &[usize]) -> Self {
        self.peer_counts = counts.to_vec();
        self
    }

    /// Varies the peer count along [`DEFAULT_PEER_AXIS`]. The base spec's
    /// data must cover the axis's largest population (see
    /// [`crate::DataSpec::scaled_for`]).
    #[must_use]
    pub fn vary_peers_default(self) -> Self {
        self.vary_peers(DEFAULT_PEER_AXIS)
    }

    /// Varies the wait policy.
    #[must_use]
    pub fn vary_wait(mut self, policies: &[WaitPolicy]) -> Self {
        self.wait_policies = policies.to_vec();
        self
    }

    /// Varies the aggregation strategy.
    #[must_use]
    pub fn vary_strategy(mut self, strategies: &[Strategy]) -> Self {
        self.strategies = strategies.to_vec();
        self
    }

    /// Varies the master seed.
    #[must_use]
    pub fn vary_seed(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Varies the adaptive policy controller. `None` entries pin the cell to
    /// the spec's static knobs — the axis for controller-vs-static
    /// comparisons on otherwise identical cells.
    #[must_use]
    pub fn vary_controller(mut self, controllers: &[Option<ControllerSpec>]) -> Self {
        self.controllers = controllers.to_vec();
        self
    }

    /// Varies the hierarchical committee layout. `None` entries pin the cell
    /// to the flat (single-tier) topology — the axis for flat-vs-committee
    /// comparisons on otherwise identical cells.
    #[must_use]
    pub fn vary_committees(mut self, layouts: &[Option<CommitteeSpec>]) -> Self {
        self.committees = layouts.to_vec();
        self
    }

    /// Varies the gossip dissemination mode (including epidemic fan-outs).
    #[must_use]
    pub fn vary_gossip(mut self, modes: &[GossipMode]) -> Self {
        self.gossips = modes.to_vec();
        self
    }

    /// The number of cells the matrix expands to (the product of the axis
    /// lengths; an empty axis keeps the base value and counts as one).
    pub fn len(&self) -> usize {
        [
            self.peer_counts.len(),
            self.wait_policies.len(),
            self.strategies.len(),
            self.seeds.len(),
            self.controllers.len(),
            self.committees.len(),
            self.gossips.len(),
        ]
        .iter()
        .map(|&l| l.max(1))
        .product()
    }

    /// Whether the matrix has no cells (never: an axis-free matrix is the base).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product into concrete cell specs, named
    /// `base/n=…/policy/strategy/seed=…` (only varied axes appear).
    pub fn cells(&self) -> Vec<ScenarioSpec> {
        fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().copied().map(Some).collect()
            }
        }
        let peer_axis = axis(&self.peer_counts);
        let wait_axis = axis(&self.wait_policies);
        let strat_axis = axis(&self.strategies);
        let seed_axis = axis(&self.seeds);
        let com_axis = axis(&self.committees);
        let gossip_axis = axis(&self.gossips);
        // ControllerSpec is not Copy; borrow the axis entries instead.
        let ctl_axis: Vec<Option<&Option<ControllerSpec>>> = if self.controllers.is_empty() {
            vec![None]
        } else {
            self.controllers.iter().map(Some).collect()
        };

        let mut out = Vec::new();
        for &n in &peer_axis {
            for &w in &wait_axis {
                for &s in &strat_axis {
                    for &seed in &seed_axis {
                        for &ctl in &ctl_axis {
                            for &com in &com_axis {
                                for &g in &gossip_axis {
                                    let mut cell = self.base.clone();
                                    let mut name = self.base.name.clone();
                                    if let Some(n) = n {
                                        cell = resize_peers(cell, n);
                                        name.push_str(&format!("/n={n}"));
                                    }
                                    if let Some(w) = w {
                                        cell.wait_policy = w;
                                        name.push_str(&format!("/{w}"));
                                    }
                                    if let Some(s) = s {
                                        cell.strategy = s;
                                        name.push_str(&format!("/{s}"));
                                    }
                                    if let Some(seed) = seed {
                                        cell.seed = seed;
                                        name.push_str(&format!("/seed={seed}"));
                                    }
                                    if let Some(ctl) = ctl {
                                        cell.controller = ctl.clone();
                                        match ctl {
                                            Some(c) => name.push_str(&format!("/ctl={c}")),
                                            None => name.push_str("/ctl=static"),
                                        }
                                    }
                                    if let Some(com) = com {
                                        cell.committees = com;
                                        match com {
                                            Some(cs) => name.push_str(&format!("/{cs}")),
                                            None => name.push_str("/flat"),
                                        }
                                    }
                                    if let Some(g) = g {
                                        cell.gossip = g;
                                        name.push_str(&format!("/{g}"));
                                    }
                                    cell.name = name;
                                    out.push(cell);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Rescales a spec to `n` peers: compute profiles cycle from the base's, and
/// timeline entries or adversaries referencing peers beyond the new count are
/// dropped (partitions are kept only if both sides survive the filter).
fn resize_peers(mut spec: ScenarioSpec, n: usize) -> ScenarioSpec {
    let base = spec.computes.clone();
    spec.computes = (0..n).map(|i| base[i % base.len()]).collect();
    spec.timeline.retain(|tf| match &tf.fault {
        blockfed_core::Fault::Partition { left, right } => {
            left.iter().all(|&p| p < n) && right.iter().all(|&p| p < n)
        }
        f => f.peers().iter().all(|&p| p < n),
    });
    spec.adversaries.retain(|a| a.client.0 < n);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_peer_axis_crosses_the_u32_boundary_and_validates() {
        assert!(
            DEFAULT_PEER_AXIS.iter().any(|&n| n > 32),
            "the default axis must exercise the >32-peer mask path"
        );
        let base = ScenarioSpec::new("scale", 3).data(crate::DataSpec::scaled_for(
            *DEFAULT_PEER_AXIS.iter().max().unwrap(),
        ));
        for cell in ScenarioMatrix::new(base).vary_peers_default().cells() {
            cell.validate().unwrap();
        }
    }

    #[test]
    fn axis_free_matrix_is_the_base() {
        let m = ScenarioMatrix::new(ScenarioSpec::new("solo", 3));
        let cells = m.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].name, "solo");
    }

    #[test]
    fn cartesian_expansion_and_names() {
        let m = ScenarioMatrix::new(ScenarioSpec::new("x", 3))
            .vary_peers(&[3, 5])
            .vary_wait(&[WaitPolicy::All, WaitPolicy::FirstK(2)])
            .vary_seed(&[1, 2]);
        let cells = m.cells();
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().any(|c| c.name == "x/n=5/wait-2/seed=2"));
        for c in &cells {
            c.validate().unwrap();
        }
    }

    #[test]
    fn committee_and_gossip_axes_expand_and_name_cells() {
        use blockfed_net::GossipMode;
        let m = ScenarioMatrix::new(ScenarioSpec::new("h", 8))
            .vary_committees(&[None, Some(CommitteeSpec::contiguous(4))])
            .vary_gossip(&[
                GossipMode::AnnounceFetch,
                GossipMode::Epidemic { fanout: 3 },
            ]);
        let cells = m.cells();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().any(|c| c.name == "h/flat/announce-fetch"));
        assert!(cells.iter().any(|c| c.name == "h/c4/epidemic-f3"));
        for c in &cells {
            c.validate().unwrap();
        }
        let committee_cell = cells.iter().find(|c| c.name == "h/c4/epidemic-f3").unwrap();
        assert_eq!(
            committee_cell.committees,
            Some(CommitteeSpec::contiguous(4))
        );
        assert_eq!(committee_cell.gossip, GossipMode::Epidemic { fanout: 3 });
        // Seeded layouts carry their seed in the cell name.
        let seeded = ScenarioMatrix::new(ScenarioSpec::new("s", 8))
            .vary_committees(&[Some(CommitteeSpec::seeded(2, 7))])
            .cells();
        assert_eq!(seeded[0].name, "s/c2s7");
    }

    #[test]
    fn resizing_cycles_computes_and_filters_timeline() {
        let mut base = ScenarioSpec::new("r", 3)
            .leave_at(5.0, 2)
            .partition_at(1.0, &[0], &[4])
            .adversary(blockfed_fl::Adversary::new(
                blockfed_fl::ClientId(2),
                blockfed_fl::Attack::Replay,
            ));
        base.computes[1].train_rate = 123.0;
        // Invalid for 3 peers (partition names peer 4), valid once resized up.
        let m = ScenarioMatrix::new(base).vary_peers(&[2, 6]);
        let cells = m.cells();
        assert_eq!(cells.len(), 2);
        // n=2: leave(2), partition(…4), and the adversary on peer 2 dropped.
        assert!(cells[0].timeline.is_empty());
        assert!(cells[0].adversaries.is_empty());
        assert_eq!(cells[0].peers(), 2);
        cells[0].validate().unwrap();
        // n=6: everything kept; compute profiles cycle.
        assert_eq!(cells[1].timeline.len(), 2);
        assert_eq!(cells[1].adversaries.len(), 1);
        assert_eq!(cells[1].computes[4].train_rate, 123.0);
        cells[1].validate().unwrap();
    }
}
