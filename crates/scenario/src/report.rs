//! Scenario results: per-cell metrics, a rendered table, and the
//! machine-readable `BENCH_scenarios.json` feed for the perf trajectory.

use std::io;
use std::path::{Path, PathBuf};

use blockfed_fl::{Strategy, WaitPolicy};
use blockfed_report::Table;
use blockfed_telemetry::{Histogram, MetricSet};

/// The folded result of one scenario cell.
///
/// Equality ignores [`CellReport::wall_clock_secs`] (host timing noise), so
/// two runs of the same seed compare equal exactly when the *simulation* was
/// bit-identical.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's name (base name plus axis suffixes).
    pub name: String,
    /// Peer count.
    pub peers: usize,
    /// Communication rounds requested.
    pub rounds: u32,
    /// Wait policy in force.
    pub wait_policy: WaitPolicy,
    /// The strategy actually used (after the Consider→BestK cutover).
    pub strategy: Strategy,
    /// Compact name of the adaptive policy controller the cell ran under
    /// (`None` = the spec's static knobs, the paper's setting).
    pub controller: Option<String>,
    /// Master seed.
    pub seed: u64,
    /// Mean final-round accuracy across peers that completed ≥ 1 round.
    pub mean_final_accuracy: f64,
    /// Mean per-round aggregation wait (virtual seconds).
    pub mean_wait_secs: f64,
    /// Virtual time when the run settled.
    pub makespan_secs: f64,
    /// Fraction of sealed blocks that did not make the canonical chain.
    pub fork_rate: f64,
    /// Total bytes crossing links during gossip floods (announcements only
    /// under announce/fetch; full payloads under legacy full flooding).
    pub gossip_bytes: u64,
    /// Total bytes of targeted payload pulls (one artifact copy per
    /// receiving peer). Zero under legacy full flooding.
    pub fetch_bytes: u64,
    /// Counters, gauges, and per-phase distributions folded from the
    /// instrumented run: resilience meters (`dropped_msgs`, `fetch_retries`,
    /// `recovery_ms`, `stalled`) plus timing histograms (`wait_secs`,
    /// `train_secs`, `staleness_secs`, `fetch_ms`, `block_interval_secs`).
    /// Read by name with zero defaults; the named accessors below cover the
    /// meters older callers used as fields.
    pub metrics: MetricSet,
    /// Canonical blocks on peer 0's chain.
    pub blocks: usize,
    /// Total per-peer round records folded into the cell.
    pub records: usize,
    /// Highest participant index set in any on-chain aggregate mask
    /// (`None` when no aggregate confirmed). A value ≥ 32 certifies the cell
    /// ran through the variable-width (post-u32) combination-mask path.
    pub max_mask_bit: Option<u32>,
    /// Accuracy trajectory over virtual time: one `(completed_at_secs,
    /// mean_accuracy)` entry per communication round that anyone finished,
    /// in round order — the raw material of time-to-accuracy comparisons.
    pub round_accuracy: Vec<(f64, f64)>,
    /// Host wall-clock the cell took (excluded from equality).
    pub wall_clock_secs: f64,
}

impl PartialEq for CellReport {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.peers == other.peers
            && self.rounds == other.rounds
            && self.wait_policy == other.wait_policy
            && self.strategy == other.strategy
            && self.controller == other.controller
            && self.seed == other.seed
            && self.mean_final_accuracy == other.mean_final_accuracy
            && self.mean_wait_secs == other.mean_wait_secs
            && self.makespan_secs == other.makespan_secs
            && self.fork_rate == other.fork_rate
            && self.gossip_bytes == other.gossip_bytes
            && self.fetch_bytes == other.fetch_bytes
            && self.metrics == other.metrics
            && self.blocks == other.blocks
            && self.records == other.records
            && self.max_mask_bit == other.max_mask_bit
            && self.round_accuracy == other.round_accuracy
    }
}

impl CellReport {
    /// Deliveries lost to per-edge packet loss (flood relays and targeted
    /// pulls). Zero on lossless links.
    pub fn dropped_msgs(&self) -> u64 {
        self.metrics.counter("dropped_msgs")
    }

    /// Payload-fetch retries the loss-recovery machinery issued. Zero on
    /// lossless fault-free runs.
    pub fn fetch_retries(&self) -> u64 {
        self.metrics.counter("fetch_retries")
    }

    /// Mean virtual milliseconds from a fetch episode's first attempt to the
    /// artifact's arrival, over episodes that needed the retry machinery.
    /// `0.0` when nothing had to recover.
    pub fn recovery_ms(&self) -> f64 {
        self.metrics.gauge("recovery_ms")
    }

    /// Whether the liveness watchdog stopped the cell as stalled instead of
    /// letting it settle.
    pub fn stalled(&self) -> bool {
        self.metrics.gauge("stalled") != 0.0
    }

    /// Worst single aggregation wait (virtual seconds) any peer endured.
    pub fn wait_max_secs(&self) -> f64 {
        self.metrics
            .histogram("wait_secs")
            .map_or(0.0, Histogram::max)
    }

    /// Mean staleness (virtual seconds) of updates folded into aggregates.
    pub fn staleness_mean_secs(&self) -> f64 {
        self.metrics
            .histogram("staleness_secs")
            .map_or(0.0, Histogram::mean)
    }

    /// Knob changes the cell's adaptive controller applied. Zero on static
    /// (and noop-controller) cells.
    pub fn policy_switches(&self) -> u64 {
        self.metrics.counter("policy_switches")
    }

    /// Tier-2 committee merges completed across peers (hierarchical cells
    /// only; zero on flat cells).
    pub fn committee_rounds(&self) -> u64 {
        self.metrics.counter("committee_rounds")
    }

    /// Worst wait (virtual seconds) any peer spent between finishing its
    /// committee's tier-1 aggregate and completing the tier-2 cross-committee
    /// merge. `0.0` on flat cells.
    pub fn merge_wait_max_secs(&self) -> f64 {
        self.metrics
            .histogram("merge_wait_secs")
            .map_or(0.0, Histogram::max)
    }

    /// Flood bytes attributable to the committee tier (leader record floods,
    /// committee-aggregate announcements, tier-2 merge records) — a subset of
    /// [`CellReport::gossip_bytes`]. Zero on flat cells.
    pub fn tier2_gossip_bytes(&self) -> u64 {
        self.metrics.counter("tier2_gossip_bytes")
    }

    /// Pulled-payload bytes attributable to the committee tier
    /// (committee-aggregate pulls and their loss recovery) — a subset of
    /// [`CellReport::fetch_bytes`]. Zero on flat cells.
    pub fn tier2_fetch_bytes(&self) -> u64 {
        self.metrics.counter("tier2_fetch_bytes")
    }

    /// Virtual seconds until the cell's mean accuracy first reached
    /// `threshold` (the paper's speed-vs-precision currency). `None` if no
    /// round got there — which compares as *slower than* any reached time.
    pub fn time_to_accuracy(&self, threshold: f64) -> Option<f64> {
        self.round_accuracy
            .iter()
            .find(|&&(_, acc)| acc >= threshold)
            .map(|&(t, _)| t)
    }
}

/// The folded result of a whole scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The matrix (base spec) name.
    pub name: String,
    /// One report per cell, in matrix expansion order.
    pub cells: Vec<CellReport>,
}

impl ScenarioReport {
    /// Renders the per-cell metrics as an aligned table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!("Scenario matrix — {}", self.name),
            &[
                "Cell",
                "Peers",
                "Policy",
                "Strategy",
                "Ctl",
                "Final acc",
                "Mean wait (s)",
                "Makespan (s)",
                "Fork rate",
                "Gossip (MB)",
                "Fetch (MB)",
                "Dropped",
                "Retries",
                "Wall (s)",
            ],
        );
        for c in &self.cells {
            table.row_owned(vec![
                c.name.clone(),
                c.peers.to_string(),
                c.wait_policy.to_string(),
                c.strategy.to_string(),
                c.controller.clone().unwrap_or_else(|| "-".into()),
                format!("{:.4}", c.mean_final_accuracy),
                format!("{:.2}", c.mean_wait_secs),
                format!("{:.1}", c.makespan_secs),
                format!("{:.3}", c.fork_rate),
                format!("{:.2}", c.gossip_bytes as f64 / 1e6),
                format!("{:.2}", c.fetch_bytes as f64 / 1e6),
                c.dropped_msgs().to_string(),
                c.fetch_retries().to_string(),
                format!("{:.2}", c.wall_clock_secs),
            ]);
        }
        table
    }

    /// Renders the speed-vs-precision comparison: per cell, the virtual time
    /// to first reach `threshold` mean accuracy (the wait-or-not-to-wait
    /// question in one number), alongside final accuracy and the knob changes
    /// an adaptive controller applied.
    pub fn time_to_accuracy_table(&self, threshold: f64) -> Table {
        let mut table = Table::new(
            format!("Time to {:.0}% accuracy — {}", threshold * 100.0, self.name),
            &["Cell", "Policy", "Ctl", "TTA (s)", "Final acc", "Switches"],
        );
        for c in &self.cells {
            table.row_owned(vec![
                c.name.clone(),
                c.wait_policy.to_string(),
                c.controller.clone().unwrap_or_else(|| "-".into()),
                c.time_to_accuracy(threshold)
                    .map_or_else(|| "never".into(), |t| format!("{t:.1}")),
                format!("{:.4}", c.mean_final_accuracy),
                c.policy_switches().to_string(),
            ]);
        }
        table
    }

    /// Serializes the report as JSON (the `BENCH_scenarios.json` shape: one
    /// object with a `scenario` name and a `cells` array of flat metrics).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenario\": {},\n", json_str(&self.name)));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&c.name)));
            out.push_str(&format!("\"peers\": {}, ", c.peers));
            out.push_str(&format!("\"rounds\": {}, ", c.rounds));
            out.push_str(&format!(
                "\"wait_policy\": {}, ",
                json_str(&c.wait_policy.to_string())
            ));
            out.push_str(&format!(
                "\"strategy\": {}, ",
                json_str(&c.strategy.to_string())
            ));
            out.push_str(&format!(
                "\"controller\": {}, ",
                c.controller.as_deref().map_or("null".into(), json_str)
            ));
            out.push_str(&format!("\"seed\": {}, ", c.seed));
            out.push_str(&format!(
                "\"mean_final_accuracy\": {}, ",
                json_f64(c.mean_final_accuracy)
            ));
            out.push_str(&format!(
                "\"mean_wait_secs\": {}, ",
                json_f64(c.mean_wait_secs)
            ));
            out.push_str(&format!(
                "\"makespan_secs\": {}, ",
                json_f64(c.makespan_secs)
            ));
            out.push_str(&format!("\"fork_rate\": {}, ", json_f64(c.fork_rate)));
            out.push_str(&format!("\"gossip_bytes\": {}, ", c.gossip_bytes));
            out.push_str(&format!("\"fetch_bytes\": {}, ", c.fetch_bytes));
            out.push_str(&format!("\"dropped_msgs\": {}, ", c.dropped_msgs()));
            out.push_str(&format!("\"fetch_retries\": {}, ", c.fetch_retries()));
            out.push_str(&format!("\"recovery_ms\": {}, ", json_f64(c.recovery_ms())));
            out.push_str(&format!("\"stalled\": {}, ", c.stalled()));
            out.push_str(&format!(
                "\"wait_max_secs\": {}, ",
                json_f64(c.wait_max_secs())
            ));
            out.push_str(&format!(
                "\"staleness_mean_secs\": {}, ",
                json_f64(c.staleness_mean_secs())
            ));
            out.push_str(&format!("\"policy_switches\": {}, ", c.policy_switches()));
            out.push_str(&format!("\"committee_rounds\": {}, ", c.committee_rounds()));
            out.push_str(&format!(
                "\"merge_wait_max_secs\": {}, ",
                json_f64(c.merge_wait_max_secs())
            ));
            out.push_str(&format!(
                "\"tier2_gossip_bytes\": {}, ",
                c.tier2_gossip_bytes()
            ));
            out.push_str(&format!(
                "\"tier2_fetch_bytes\": {}, ",
                c.tier2_fetch_bytes()
            ));
            out.push_str(&format!(
                "\"round_accuracy\": [{}], ",
                c.round_accuracy
                    .iter()
                    .map(|&(t, a)| format!("[{}, {}]", json_f64(t), json_f64(a)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!("\"blocks\": {}, ", c.blocks));
            out.push_str(&format!("\"records\": {}, ", c.records));
            out.push_str(&format!(
                "\"max_mask_bit\": {}, ",
                c.max_mask_bit.map_or("null".into(), |b| b.to_string())
            ));
            out.push_str(&format!("\"metrics\": {}, ", c.metrics.to_json()));
            out.push_str(&format!(
                "\"wall_clock_secs\": {}",
                json_f64(c.wall_clock_secs)
            ));
            out.push_str(if i + 1 < self.cells.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`ScenarioReport::to_json`] to `dir/BENCH_scenarios.json`,
    /// creating the directory. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join("BENCH_scenarios.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// One perf-trajectory line per cell, in the `BENCH_history.jsonl`
    /// shape: cell name, traffic meters, wall clock, and the recording
    /// revision. `BENCH_scenarios.json` is overwritten per run; the history
    /// file only ever grows, so deltas stay visible across PRs.
    pub fn history_lines(&self, git_rev: &str) -> String {
        let mut out = String::new();
        for c in &self.cells {
            // Hierarchical cells carry their committee meters; flat cells
            // keep the legacy line shape so committed history stays diffable.
            let committee = if c.committee_rounds() > 0 {
                format!(
                    "\"committee_rounds\": {}, \"merge_wait_max_secs\": {}, \
                     \"tier2_gossip_bytes\": {}, \"tier2_fetch_bytes\": {}, ",
                    c.committee_rounds(),
                    json_f64(c.merge_wait_max_secs()),
                    c.tier2_gossip_bytes(),
                    c.tier2_fetch_bytes(),
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{{\"cell\": {}, \"peers\": {}, \"gossip_bytes\": {}, \"fetch_bytes\": {}, \
                 \"dropped_msgs\": {}, \"fetch_retries\": {}, \
                 \"wait_max_secs\": {}, \"staleness_mean_secs\": {}, \
                 \"policy_switches\": {}, {committee}\"final_accuracy\": {}, \
                 \"wall_clock_secs\": {}, \"git_rev\": {}}}\n",
                json_str(&c.name),
                c.peers,
                c.gossip_bytes,
                c.fetch_bytes,
                c.dropped_msgs(),
                c.fetch_retries(),
                json_f64(c.wait_max_secs()),
                json_f64(c.staleness_mean_secs()),
                c.policy_switches(),
                json_f64(c.mean_final_accuracy),
                json_f64(c.wall_clock_secs),
                json_str(git_rev),
            ));
        }
        out
    }

    /// Appends [`ScenarioReport::history_lines`] to `dir/BENCH_history.jsonl`
    /// (created on first use). Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append_history(&self, dir: impl AsRef<Path>, git_rev: &str) -> io::Result<PathBuf> {
        use std::io::Write;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join("BENCH_history.jsonl");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        file.write_all(self.history_lines(git_rev).as_bytes())?;
        Ok(path)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str) -> CellReport {
        let mut metrics = MetricSet::new();
        metrics.add("dropped_msgs", 7);
        metrics.add("fetch_retries", 3);
        metrics.set_gauge("recovery_ms", 120.5);
        metrics.set_gauge("stalled", 0.0);
        metrics.observe("wait_secs", 1.0);
        metrics.observe("wait_secs", 1.5);
        metrics.observe("staleness_secs", 4.0);
        CellReport {
            name: name.into(),
            peers: 5,
            rounds: 2,
            wait_policy: WaitPolicy::FirstK(3),
            strategy: Strategy::BestK(3),
            controller: None,
            seed: 7,
            mean_final_accuracy: 0.5,
            mean_wait_secs: 1.25,
            makespan_secs: 100.0,
            fork_rate: 0.1,
            gossip_bytes: 1_000_000,
            fetch_bytes: 250_000,
            metrics,
            blocks: 12,
            records: 10,
            max_mask_bit: Some(4),
            round_accuracy: vec![(40.0, 0.3), (100.0, 0.5)],
            wall_clock_secs: 3.3,
        }
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let a = cell("a");
        let mut b = cell("a");
        b.wall_clock_secs = 99.0;
        assert_eq!(a, b);
        let mut c = cell("a");
        c.blocks = 13;
        assert_ne!(a, c);
        // The resilience meters are part of simulation identity.
        let mut d = cell("a");
        d.metrics.add("dropped_msgs", 1);
        assert_ne!(a, d);
        let mut e = cell("a");
        e.metrics.set_gauge("stalled", 1.0);
        assert_ne!(a, e);
    }

    #[test]
    fn meter_accessors_read_the_metric_set() {
        let c = cell("a");
        assert_eq!(c.dropped_msgs(), 7);
        assert_eq!(c.fetch_retries(), 3);
        assert_eq!(c.recovery_ms(), 120.5);
        assert!(!c.stalled());
        assert_eq!(c.wait_max_secs(), 1.5);
        assert_eq!(c.staleness_mean_secs(), 4.0);
        // Missing metrics read as zero, never panic.
        let mut bare = cell("b");
        bare.metrics = MetricSet::new();
        assert_eq!(bare.dropped_msgs(), 0);
        assert_eq!(bare.wait_max_secs(), 0.0);
        assert!(!bare.stalled());
        assert_eq!(bare.policy_switches(), 0);
        // Committee meters read zero on flat cells…
        assert_eq!(bare.committee_rounds(), 0);
        assert_eq!(bare.merge_wait_max_secs(), 0.0);
        assert_eq!(bare.tier2_gossip_bytes(), 0);
        assert_eq!(bare.tier2_fetch_bytes(), 0);
        // …and read the folded counters on hierarchical ones.
        let mut hier = cell("h");
        hier.metrics.add("committee_rounds", 4);
        hier.metrics.add("tier2_gossip_bytes", 512);
        hier.metrics.add("tier2_fetch_bytes", 2048);
        hier.metrics.observe("merge_wait_secs", 1.5);
        hier.metrics.observe("merge_wait_secs", 0.5);
        assert_eq!(hier.committee_rounds(), 4);
        assert_eq!(hier.merge_wait_max_secs(), 1.5);
        assert_eq!(hier.tier2_gossip_bytes(), 512);
        assert_eq!(hier.tier2_fetch_bytes(), 2048);
    }

    #[test]
    fn time_to_accuracy_walks_the_trajectory() {
        let c = cell("a"); // rounds at (40s, 0.3) and (100s, 0.5)
        assert_eq!(c.time_to_accuracy(0.25), Some(40.0));
        assert_eq!(c.time_to_accuracy(0.3), Some(40.0));
        assert_eq!(c.time_to_accuracy(0.4), Some(100.0));
        assert_eq!(c.time_to_accuracy(0.9), None, "never reached");
        // The trajectory and controller identity are part of cell equality.
        let mut d = cell("a");
        d.round_accuracy[1].1 = 0.6;
        assert_ne!(c, d);
        let mut e = cell("a");
        e.controller = Some("rule".into());
        assert_ne!(c, e);
        // The TTA table renders reached and never-reached cells.
        let report = ScenarioReport {
            name: "tta".into(),
            cells: vec![cell("fast"), cell("slow")],
        };
        let rendered = report.time_to_accuracy_table(0.4).to_string();
        assert!(rendered.contains("Time to 40% accuracy"));
        assert!(rendered.contains("100.0"));
        let rendered = report.time_to_accuracy_table(0.9).to_string();
        assert!(rendered.contains("never"));
    }

    #[test]
    fn json_shape_and_escaping() {
        let report = ScenarioReport {
            name: "demo \"quoted\"".into(),
            cells: vec![cell("one"), cell("two")],
        };
        let json = report.to_json();
        assert!(json.contains("\"scenario\": \"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"name\": \"one\""));
        assert!(json.contains("\"mean_final_accuracy\": 0.5"));
        assert!(json.contains("\"max_mask_bit\": 4"));
        assert!(json.contains("\"wall_clock_secs\": 3.3"));
        assert!(json.contains("\"dropped_msgs\": 7"));
        assert!(json.contains("\"fetch_retries\": 3"));
        assert!(json.contains("\"recovery_ms\": 120.5"));
        assert!(json.contains("\"stalled\": false"));
        // Telemetry columns derived from the folded histograms.
        assert!(json.contains("\"wait_max_secs\": 1.5"));
        assert!(json.contains("\"staleness_mean_secs\": 4"));
        // Adaptive-policy columns: controller identity, switch count, and
        // the accuracy trajectory TTA is computed from.
        assert!(json.contains("\"controller\": null"));
        assert!(json.contains("\"policy_switches\": 0"));
        // Committee columns are always present (zero on flat cells).
        assert!(json.contains("\"committee_rounds\": 0"));
        assert!(json.contains("\"merge_wait_max_secs\": 0"));
        assert!(json.contains("\"tier2_gossip_bytes\": 0"));
        assert!(json.contains("\"tier2_fetch_bytes\": 0"));
        assert!(json.contains("\"round_accuracy\": [[40, 0.3], [100, 0.5]]"));
        // The full extensible metric set rides along as a nested object.
        assert!(json.contains("\"metrics\": {\"counters\":{"));
        assert!(json.contains("\"wait_secs\":{\"count\":2"));
        // Two cells, comma-separated.
        assert_eq!(json.matches("\"peers\": 5").count(), 2);
    }

    #[test]
    fn table_renders_all_cells() {
        let report = ScenarioReport {
            name: "t".into(),
            cells: vec![cell("one"), cell("two"), cell("three")],
        };
        let t = report.table();
        assert_eq!(t.len(), 3);
        assert!(t.to_string().contains("wait-3"));
    }

    #[test]
    fn json_carries_fetch_bytes() {
        let report = ScenarioReport {
            name: "t".into(),
            cells: vec![cell("one")],
        };
        assert!(report.to_json().contains("\"fetch_bytes\": 250000"));
    }

    #[test]
    fn history_appends_one_line_per_cell_per_run() {
        let dir = std::env::temp_dir().join(format!("blockfed-hist-{}", std::process::id()));
        let report = ScenarioReport {
            name: "h".into(),
            cells: vec![cell("a"), cell("b")],
        };
        let path = report.append_history(&dir, "rev1").unwrap();
        report.append_history(&dir, "rev2").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 4, "append must accumulate, not overwrite");
        assert!(lines[0].contains("\"cell\": \"a\""));
        assert!(lines[0].contains("\"git_rev\": \"rev1\""));
        assert!(lines[3].contains("\"git_rev\": \"rev2\""));
        assert!(lines[0].contains("\"gossip_bytes\": 1000000"));
        assert!(lines[0].contains("\"fetch_bytes\": 250000"));
        assert!(lines[0].contains("\"dropped_msgs\": 7"));
        assert!(lines[0].contains("\"fetch_retries\": 3"));
        assert!(lines[0].contains("\"wait_max_secs\": 1.5"));
        assert!(lines[0].contains("\"staleness_mean_secs\": 4"));
        // Flat cells keep the legacy line shape — no committee columns.
        assert!(!lines[0].contains("committee_rounds"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_lines_carry_committee_meters_on_hierarchical_cells() {
        let mut hier = cell("hier");
        hier.metrics.add("committee_rounds", 6);
        hier.metrics.add("tier2_gossip_bytes", 4096);
        hier.metrics.add("tier2_fetch_bytes", 8192);
        hier.metrics.observe("merge_wait_secs", 2.5);
        let report = ScenarioReport {
            name: "h".into(),
            cells: vec![hier],
        };
        let line = report.history_lines("rev");
        assert!(line.contains("\"committee_rounds\": 6"), "{line}");
        assert!(line.contains("\"merge_wait_max_secs\": 2.5"), "{line}");
        assert!(line.contains("\"tier2_gossip_bytes\": 4096"), "{line}");
        assert!(line.contains("\"tier2_fetch_bytes\": 8192"), "{line}");
    }

    #[test]
    fn json_writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("blockfed-scn-{}", std::process::id()));
        let report = ScenarioReport {
            name: "disk".into(),
            cells: vec![cell("c")],
        };
        let path = report.write_json(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"scenario\": \"disk\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
