//! Neural networks with manual backpropagation for the `blockfed` experiments.
//!
//! The stack mirrors what the paper trains with PyTorch: a small from-scratch
//! network ([`zoo::SimpleNn`], ≈62 K parameters) and a transfer-learned complex
//! network ([`zoo::EffNetLite`], ≈5.3 M parameters with a frozen pretrained
//! backbone). Models expose their trainable parameters as flat vectors so the
//! federated layer can average and ship them.
//!
//! # Examples
//!
//! ```
//! use blockfed_nn::{Linear, Relu, Sequential, Sgd};
//! use blockfed_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Linear::new(&mut rng, 2, 8));
//! model.push(Relu::new());
//! model.push(Linear::new(&mut rng, 8, 2));
//! let mut opt = Sgd::new(0.1, 0.9);
//! let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
//! let loss = model.train_batch(&x, &[0], &mut opt);
//! assert!(loss.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod zoo;

pub use layer::{Frozen, Layer, Linear, Relu, Tanh};
pub use metrics::ConfusionMatrix;
pub use model::{train_shards, EvalResult, Sequential, MAX_TRAIN_SHARDS};
pub use optim::Sgd;
pub use zoo::{EffNetLite, EffNetLiteConfig, ModelKind, SimpleNn, SimpleNnConfig};
