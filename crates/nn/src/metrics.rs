//! Classification metrics beyond plain accuracy.
//!
//! The anomaly studies need to *explain* why a model is abnormal, not just
//! that its accuracy is low: a free-rider's constant model has chance-level
//! accuracy but a degenerate confusion matrix (one predicted class), while an
//! honestly-trained model on skewed data has a skewed but full-rank one. The
//! [`ConfusionMatrix`] and its derived per-class metrics make that
//! distinction measurable.

/// A `classes × classes` confusion matrix; rows are true labels, columns are
/// predicted labels.
///
/// # Examples
///
/// ```
/// use blockfed_nn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0); // true 0, predicted 0
/// cm.record(0, 1); // true 0, predicted 1
/// cm.record(1, 1);
/// assert_eq!(cm.accuracy(), 2.0 / 3.0);
/// assert_eq!(cm.count(0, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>, // row-major [true][predicted]
}

impl ConfusionMatrix {
    /// An empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel label/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or contain out-of-range
    /// classes.
    pub fn from_predictions(classes: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "label/prediction length mismatch"
        );
        let mut cm = ConfusionMatrix::new(classes);
        for (&t, &p) in truth.iter().zip(predicted) {
            cm.record(t, p);
        }
        cm
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one example.
    ///
    /// # Panics
    ///
    /// Panics if either class is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes, "true class {truth} out of range");
        assert!(
            predicted < self.classes,
            "predicted class {predicted} out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// The count of examples with `truth` label predicted as `predicted`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total recorded examples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall: `tp / (tp + fn)`; `None` for classes with no
    /// examples.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Per-class precision: `tp / (tp + fp)`; `None` for classes never
    /// predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }

    /// Per-class F1 (harmonic mean of precision and recall); `None` when
    /// either is undefined, 0 when both are 0.
    pub fn f1(&self, class: usize) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over classes with defined F1 (0 when none).
    pub fn macro_f1(&self) -> f64 {
        let f1s: Vec<f64> = (0..self.classes).filter_map(|c| self.f1(c)).collect();
        if f1s.is_empty() {
            0.0
        } else {
            f1s.iter().sum::<f64>() / f1s.len() as f64
        }
    }

    /// How many distinct classes the model ever predicted — the degeneracy
    /// signal: a constant (free-rider) model predicts exactly one.
    pub fn predicted_class_count(&self) -> usize {
        (0..self.classes)
            .filter(|&p| (0..self.classes).any(|t| self.count(t, p) > 0))
            .count()
    }

    /// Whether the predictions are degenerate (at most one predicted class
    /// despite multiple examples) — the free-rider fingerprint.
    pub fn is_degenerate(&self) -> bool {
        self.total() > 1 && self.predicted_class_count() <= 1
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "true\\pred {}",
            (0..self.classes)
                .map(|c| format!("{c:>6}"))
                .collect::<String>()
        )?;
        for t in 0..self.classes {
            write!(f, "{t:>9} ")?;
            for p in 0..self.classes {
                write!(f, "{:>6}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal() -> ConfusionMatrix {
        // Perfect classifier on 3 classes, 2 examples each.
        ConfusionMatrix::from_predictions(3, &[0, 0, 1, 1, 2, 2], &[0, 0, 1, 1, 2, 2])
    }

    #[test]
    fn perfect_classifier_metrics() {
        let cm = diagonal();
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.recall(c), Some(1.0));
            assert_eq!(cm.precision(c), Some(1.0));
            assert_eq!(cm.f1(c), Some(1.0));
        }
        assert_eq!(cm.predicted_class_count(), 3);
        assert!(!cm.is_degenerate());
    }

    #[test]
    fn constant_model_is_degenerate() {
        // Predicts class 0 for everything: chance-level accuracy on balanced
        // data but a one-column matrix.
        let cm = ConfusionMatrix::from_predictions(4, &[0, 1, 2, 3], &[0, 0, 0, 0]);
        assert_eq!(cm.accuracy(), 0.25);
        assert_eq!(cm.predicted_class_count(), 1);
        assert!(cm.is_degenerate());
        // Recall defined everywhere, precision only for the predicted class.
        assert_eq!(cm.recall(1), Some(0.0));
        assert_eq!(cm.precision(1), None);
        assert_eq!(cm.precision(0), Some(0.25));
    }

    #[test]
    fn mixed_case_counts_and_metrics() {
        let cm = ConfusionMatrix::from_predictions(2, &[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        // Class 1: precision 2/3, recall 2/3 → f1 2/3.
        assert!((cm.f1(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_behaviour() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.precision(0), None);
        assert_eq!(cm.f1(0), None);
        assert_eq!(cm.macro_f1(), 0.0);
        assert!(
            !cm.is_degenerate(),
            "a single-or-zero-example matrix is not judged"
        );
    }

    #[test]
    fn incremental_matches_batch() {
        let truth = [0usize, 1, 2, 1, 0];
        let pred = [0usize, 1, 1, 1, 2];
        let batch = ConfusionMatrix::from_predictions(3, &truth, &pred);
        let mut inc = ConfusionMatrix::new(3);
        for (&t, &p) in truth.iter().zip(&pred) {
            inc.record(t, p);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn display_renders_all_cells() {
        let s = diagonal().to_string();
        assert!(s.contains("true\\pred"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_rejected() {
        let _ = ConfusionMatrix::from_predictions(2, &[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = ConfusionMatrix::new(0);
    }
}
