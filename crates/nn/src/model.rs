//! The [`Sequential`] model container and training/evaluation entry points.

use blockfed_data::{Batcher, Dataset};
use blockfed_tensor::{ops, Tensor};
use rand::Rng;

use crate::layer::Layer;
use crate::loss::cross_entropy;
use crate::optim::Sgd;

/// A feed-forward stack of layers.
///
/// # Examples
///
/// ```
/// use blockfed_nn::{Linear, Relu, Sequential};
/// use blockfed_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Linear::new(&mut rng, 4, 8));
/// model.push(Relu::new());
/// model.push(Linear::new(&mut rng, 8, 2));
/// let logits = model.forward(&Tensor::ones(&[3, 4]), false);
/// assert_eq!(logits.shape(), &[3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Result of evaluating a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Fraction of correctly classified examples.
    pub accuracy: f64,
    /// Mean cross-entropy.
    pub loss: f64,
    /// Number of evaluated examples.
    pub examples: usize,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Deep-copies the model (architecture and parameters) into a fresh
    /// instance. Duplicates serve as per-worker scratch models when the
    /// orchestrator evaluates model combinations in parallel — cheaper and
    /// RNG-neutral compared to rebuilding from an architecture config.
    pub fn duplicate(&self) -> Sequential {
        Sequential {
            layers: self.layers.iter().map(|l| l.box_clone()).collect(),
        }
    }

    /// Runs the forward pass. `train = true` caches activations for backward.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs the backward pass from the loss gradient.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Visits every trainable parameter in a fixed order.
    pub fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits every trainable parameter mutably.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    /// Visits every accumulated gradient.
    pub fn visit_grads(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_grads(f);
        }
    }

    /// Flattens all trainable parameters into one vector (federated payloads).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit_params(&mut |p| out.extend_from_slice(p.as_slice()));
        out
    }

    /// Loads trainable parameters from a flat vector produced by
    /// [`Sequential::params_flat`] on an identically shaped model.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the parameter count.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut offset = 0usize;
        self.visit_params_mut(&mut |p| {
            let n = p.numel();
            p.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
    }

    /// One SGD step over one mini-batch; returns the batch loss.
    pub fn train_batch(&mut self, features: &Tensor, labels: &[usize], opt: &mut Sgd) -> f32 {
        self.zero_grads();
        let logits = self.forward(features, true);
        let out = cross_entropy(&logits, labels);
        self.backward(&out.grad);
        opt.step(self);
        out.loss
    }

    /// Trains for `epochs` full passes over `dataset`; returns mean epoch losses.
    pub fn train_epochs<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        epochs: usize,
        batcher: &Batcher,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for batch in batcher.epoch(dataset, rng) {
                total += self.train_batch(&batch.features, &batch.labels, opt);
                batches += 1;
            }
            losses.push(if batches > 0 {
                total / batches as f32
            } else {
                0.0
            });
        }
        losses
    }

    /// Evaluates accuracy and loss on a dataset (inference mode).
    pub fn evaluate(&mut self, dataset: &Dataset) -> EvalResult {
        if dataset.is_empty() {
            return EvalResult {
                accuracy: 0.0,
                loss: 0.0,
                examples: 0,
            };
        }
        let logits = self.forward(dataset.features(), false);
        let out = cross_entropy(&logits, dataset.labels());
        EvalResult {
            accuracy: ops::accuracy(&logits, dataset.labels()),
            loss: f64::from(out.loss),
            examples: dataset.len(),
        }
    }

    /// Predicted class per row.
    pub fn predict(&mut self, features: &Tensor) -> Vec<usize> {
        self.forward(features, false).argmax_rows()
    }

    /// Evaluates on `dataset` and returns the full confusion matrix (rows =
    /// true labels, columns = predictions) — see [`crate::metrics`] for the
    /// derived per-class metrics and the degeneracy signal used by anomaly
    /// detection.
    pub fn evaluate_confusion(&mut self, dataset: &Dataset) -> crate::metrics::ConfusionMatrix {
        let predicted = self.predict(dataset.features());
        crate::metrics::ConfusionMatrix::from_predictions(
            dataset.num_classes(),
            dataset.labels(),
            &predicted,
        )
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("params", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_dataset(n_per: usize) -> Dataset {
        // Two linearly separable blobs.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            let t = (i as f32) / (n_per as f32);
            data.extend_from_slice(&[1.0 + 0.1 * t, 1.0 - 0.1 * t]);
            labels.push(0);
            data.extend_from_slice(&[-1.0 - 0.1 * t, -1.0 + 0.1 * t]);
            labels.push(1);
        }
        Dataset::new(Tensor::from_vec(data, &[2 * n_per, 2]), labels, 2)
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Linear::new(&mut rng, 2, 16));
        m.push(Relu::new());
        m.push(Linear::new(&mut rng, 16, 2));
        m
    }

    #[test]
    fn training_reaches_full_accuracy_on_separable_data() {
        let ds = two_blob_dataset(20);
        let mut model = mlp(0);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let losses = model.train_epochs(&ds, 20, &Batcher::new(8), &mut opt, &mut rng);
        assert!(
            losses.last().unwrap() < &0.05,
            "final loss {:?}",
            losses.last()
        );
        let eval = model.evaluate(&ds);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.examples, 40);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = two_blob_dataset(20);
        let mut model = mlp(2);
        let mut opt = Sgd::new(0.05, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let losses = model.train_epochs(&ds, 10, &Batcher::new(8), &mut opt, &mut rng);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn params_flat_roundtrip() {
        let mut a = mlp(4);
        let mut b = mlp(5);
        let x = Tensor::ones(&[1, 2]);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        let flat = a.params_flat();
        assert_eq!(flat.len(), a.param_count());
        b.set_params_flat(&flat);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    #[should_panic(expected = "flat parameter length mismatch")]
    fn set_params_rejects_wrong_length() {
        let mut m = mlp(6);
        m.set_params_flat(&[0.0]);
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = mlp(7);
        assert_eq!(m.param_count(), 2 * 16 + 16 + 16 * 2 + 2);
        assert_eq!(m.depth(), 3);
    }

    #[test]
    fn evaluate_on_empty_dataset() {
        let mut m = mlp(8);
        let empty = Dataset::new(Tensor::zeros(&[0, 2]), vec![], 2);
        let r = m.evaluate(&empty);
        assert_eq!(r.examples, 0);
        assert_eq!(r.accuracy, 0.0);
    }

    #[test]
    fn predict_returns_argmax_labels() {
        let ds = two_blob_dataset(5);
        let mut model = mlp(9);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(10);
        model.train_epochs(&ds, 15, &Batcher::new(5), &mut opt, &mut rng);
        let preds = model.predict(ds.features());
        assert_eq!(preds, ds.labels());
    }

    #[test]
    fn debug_lists_layers() {
        let m = mlp(11);
        let s = format!("{m:?}");
        assert!(s.contains("linear"));
        assert!(s.contains("relu"));
    }
}
