//! The [`Sequential`] model container and training/evaluation entry points.
//!
//! # Batch-parallel training
//!
//! Mini-batches are split into **gradient shards** by a plan that is a pure
//! function of the batch size ([`train_shards`]) — never of the worker
//! count. Every shard's gradient contribution is computed from zeroed
//! scratch gradients and folded back into the model in fixed shard order, so
//! [`Sequential::train_batch`] (sequential execution of the plan) and
//! [`Sequential::par_train_batch`] (shards fanned across `blockfed-compute`
//! workers on per-worker model replicas) perform the *same arithmetic in the
//! same order* and produce bit-identical parameters at any thread count —
//! the determinism contract the tensor kernels already honour.

use std::ops::Range;

use blockfed_data::{Batcher, Dataset};
use blockfed_tensor::{ops, Tensor};
use rand::Rng;

use crate::layer::Layer;
use crate::loss::cross_entropy;
use crate::optim::Sgd;

/// Ceiling on gradient shards per mini-batch. More shards than this buys no
/// extra parallelism on the machines we target and inflates the fixed
/// per-shard cost (snapshot + reduction) at every batch size.
pub const MAX_TRAIN_SHARDS: usize = 8;

/// Below this many rows per shard, splitting further costs more in per-shard
/// overhead than it can recover in parallelism, so small batches keep the
/// classic fused single-shard path.
const MIN_SHARD_ROWS: usize = 8;

/// The fixed gradient-shard plan for a mini-batch of `n` examples: contiguous
/// row ranges, at most [`MAX_TRAIN_SHARDS`] of them, each at least
/// `MIN_SHARD_ROWS` rows (so batches under 16 rows stay a single shard).
///
/// The plan depends only on `n` — never on the worker count — which is what
/// makes sequential and batch-parallel training bit-identical: both execute
/// exactly these shards and reduce them in index order.
pub fn train_shards(n: usize) -> Vec<Range<usize>> {
    let shards = (n / MIN_SHARD_ROWS).clamp(1, MAX_TRAIN_SHARDS);
    blockfed_compute::split_ranges(n, shards)
}

/// The feature rows of `range`: borrowed when the range covers the whole
/// tensor (the single-shard case pays no copy), copied into a standalone
/// `[rows, d]` tensor otherwise.
fn slice_rows<'a>(features: &'a Tensor, range: &Range<usize>) -> std::borrow::Cow<'a, Tensor> {
    let d = features.shape()[1];
    if range.start == 0 && range.end == features.shape()[0] {
        return std::borrow::Cow::Borrowed(features);
    }
    std::borrow::Cow::Owned(Tensor::from_vec(
        features.as_slice()[range.start * d..range.end * d].to_vec(),
        &[range.end - range.start, d],
    ))
}

/// One shard's contribution to a mini-batch step: its share of the batch loss
/// and a snapshot of its gradient contribution (computed from zeroed
/// gradients, so the snapshot is exactly this shard's term of the batch-mean
/// gradient).
struct ShardGrads {
    loss: f32,
    grads: Vec<Tensor>,
}

/// Forward/backward for one shard, accumulating its gradient contribution
/// into `model`'s (not-necessarily-zeroed) gradients; returns the shard's
/// share of the batch loss. The upstream loss gradient is scaled by
/// `|shard| / total`, turning the shard-mean cross-entropy gradient into the
/// shard's exact share of the batch-mean gradient (`share == 1.0` skips the
/// scale — multiplication by one is a bitwise no-op anyway).
fn shard_forward_backward(
    model: &mut Sequential,
    features: &Tensor,
    labels: &[usize],
    range: &Range<usize>,
    total: usize,
) -> f32 {
    let x = slice_rows(features, range);
    let y = &labels[range.clone()];
    let logits = model.forward(&x, true);
    let out = cross_entropy(&logits, y);
    let share = range.len() as f32 / total as f32;
    if share == 1.0 {
        model.backward(&out.grad);
    } else {
        model.backward(&out.grad.scale(share));
    }
    out.loss * share
}

/// [`shard_forward_backward`] from zeroed gradients, snapshotting the result
/// — what each parallel worker produces for the ordered reduction. A fold of
/// these zero-initialized snapshots in shard order is bit-identical to
/// accumulating the same shards in place (IEEE-754 round-to-nearest: adding
/// from +0.0 only rewrites -0.0 contributions to +0.0, and a running
/// accumulator can never be -0.0, where that rewrite could matter).
fn shard_step(
    model: &mut Sequential,
    features: &Tensor,
    labels: &[usize],
    range: &Range<usize>,
    total: usize,
) -> ShardGrads {
    model.zero_grads();
    let loss = shard_forward_backward(model, features, labels, range, total);
    let mut grads = Vec::new();
    model.visit_grads(&mut |g| grads.push(g.clone()));
    ShardGrads { loss, grads }
}

/// A feed-forward stack of layers.
///
/// # Examples
///
/// ```
/// use blockfed_nn::{Linear, Relu, Sequential};
/// use blockfed_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Linear::new(&mut rng, 4, 8));
/// model.push(Relu::new());
/// model.push(Linear::new(&mut rng, 8, 2));
/// let logits = model.forward(&Tensor::ones(&[3, 4]), false);
/// assert_eq!(logits.shape(), &[3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Result of evaluating a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Fraction of correctly classified examples.
    pub accuracy: f64,
    /// Mean cross-entropy.
    pub loss: f64,
    /// Number of evaluated examples.
    pub examples: usize,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Deep-copies the model (architecture and parameters) into a fresh
    /// instance. Duplicates serve as per-worker scratch models when the
    /// orchestrator evaluates model combinations in parallel — cheaper and
    /// RNG-neutral compared to rebuilding from an architecture config.
    pub fn duplicate(&self) -> Sequential {
        Sequential {
            layers: self.layers.iter().map(|l| l.box_clone()).collect(),
        }
    }

    /// Runs the forward pass. `train = true` caches activations for backward.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs the backward pass from the loss gradient.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Visits every trainable parameter in a fixed order.
    pub fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    /// Visits every trainable parameter mutably.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    /// Visits every accumulated gradient.
    pub fn visit_grads(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_grads(f);
        }
    }

    /// Visits every accumulated gradient mutably, in the same order as
    /// [`Sequential::visit_grads`].
    pub fn visit_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_grads_mut(f);
        }
    }

    /// Flattens all trainable parameters into one vector (federated payloads).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit_params(&mut |p| out.extend_from_slice(p.as_slice()));
        out
    }

    /// Loads trainable parameters from a flat vector produced by
    /// [`Sequential::params_flat`] on an identically shaped model.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the parameter count.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut offset = 0usize;
        self.visit_params_mut(&mut |p| {
            let n = p.numel();
            p.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
    }

    /// One SGD step over one mini-batch; returns the batch loss.
    ///
    /// Executes the fixed gradient-shard plan ([`train_shards`])
    /// sequentially — the reference arithmetic that
    /// [`Sequential::par_train_batch`] reproduces bit-for-bit in parallel.
    pub fn train_batch(&mut self, features: &Tensor, labels: &[usize], opt: &mut Sgd) -> f32 {
        assert!(!labels.is_empty(), "empty batch");
        assert_eq!(features.shape()[0], labels.len(), "label count mismatch");
        let total = labels.len();
        self.zero_grads();
        let mut loss = 0.0f32;
        for range in train_shards(total) {
            // Gradients accumulate in place across shards — bit-identical to
            // the parallel path's snapshot-and-fold (see [`shard_step`]) and
            // free of its per-shard clones.
            loss += shard_forward_backward(self, features, labels, &range, total);
        }
        opt.step(self);
        loss
    }

    /// One SGD step over one mini-batch with the gradient shards split across
    /// `blockfed-compute` workers, each running on its own model replica
    /// ([`Sequential::duplicate`] + scratch gradients). Shard results are
    /// reduced in fixed shard order before a single optimizer step, so the
    /// outcome is bit-identical to [`Sequential::train_batch`] at any thread
    /// count. Falls back to the sequential path when only one worker is
    /// available or the batch is a single shard.
    pub fn par_train_batch(&mut self, features: &Tensor, labels: &[usize], opt: &mut Sgd) -> f32 {
        // Consult the shard plan before cloning anything: a single-shard
        // batch (or a single worker) needs no replicas at all.
        let workers = blockfed_compute::num_threads().min(train_shards(labels.len()).len());
        let mut replicas: Vec<Sequential> = (1..workers).map(|_| self.duplicate()).collect();
        self.par_train_batch_with(&mut replicas, features, labels, opt)
    }

    /// [`Sequential::par_train_batch`] with caller-owned replicas, so an
    /// epoch loop pays the replica allocation once. Replica parameters are
    /// re-synced from `self` every call; their gradients are scratch.
    fn par_train_batch_with(
        &mut self,
        replicas: &mut [Sequential],
        features: &Tensor,
        labels: &[usize],
        opt: &mut Sgd,
    ) -> f32 {
        assert!(!labels.is_empty(), "empty batch");
        assert_eq!(features.shape()[0], labels.len(), "label count mismatch");
        let total = labels.len();
        let plan = train_shards(total);
        // One state per worker, never more states than shards: extra states
        // would sit idle, and the shard plan (not the state count) fixes the
        // arithmetic.
        let states = plan
            .len()
            .min(blockfed_compute::num_threads())
            .min(1 + replicas.len());
        if states <= 1 {
            return self.train_batch(features, labels, opt);
        }
        let flat = self.params_flat();
        for replica in replicas[..states - 1].iter_mut() {
            replica.set_params_flat(&flat);
        }
        let shards: Vec<ShardGrads> = {
            let mut pool: Vec<&mut Sequential> = Vec::with_capacity(states);
            pool.push(&mut *self);
            for replica in replicas[..states - 1].iter_mut() {
                pool.push(replica);
            }
            blockfed_compute::par_map_with(&mut pool, &plan, |model, range| {
                shard_step(model, features, labels, range, total)
            })
        };
        self.reduce_shards(&shards, opt)
    }

    /// Folds per-shard gradient snapshots into `self` in shard-index order —
    /// the same fold-left the sequential path performs — then takes one
    /// optimizer step. Returns the summed (batch-mean) loss.
    fn reduce_shards(&mut self, shards: &[ShardGrads], opt: &mut Sgd) -> f32 {
        self.zero_grads();
        let mut loss = 0.0f32;
        for shard in shards {
            loss += shard.loss;
            let mut idx = 0usize;
            self.visit_grads_mut(&mut |g| {
                g.axpy(1.0, &shard.grads[idx]);
                idx += 1;
            });
        }
        opt.step(self);
        loss
    }

    /// Trains for `epochs` full passes over `dataset`; returns mean epoch losses.
    pub fn train_epochs<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        epochs: usize,
        batcher: &Batcher,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> Vec<f32> {
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for batch in batcher.epoch(dataset, rng) {
                total += self.train_batch(&batch.features, &batch.labels, opt);
                batches += 1;
            }
            losses.push(if batches > 0 {
                total / batches as f32
            } else {
                0.0
            });
        }
        losses
    }

    /// [`Sequential::train_epochs`] with every mini-batch step running
    /// through [`Sequential::par_train_batch`]: worker replicas are allocated
    /// once and re-synced per batch. Mini-batch order, RNG consumption, and
    /// all arithmetic match the sequential loop, so the returned losses and
    /// the final parameters are bit-identical to [`Sequential::train_epochs`]
    /// at any thread count.
    pub fn par_train_epochs<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        epochs: usize,
        batcher: &Batcher,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> Vec<f32> {
        // The widest plan any batch of this epoch loop can produce bounds
        // how many replicas can ever be used at once.
        let widest_plan = train_shards(batcher.batch_size().min(dataset.len())).len();
        let workers = blockfed_compute::num_threads().min(widest_plan);
        let mut replicas: Vec<Sequential> = (1..workers).map(|_| self.duplicate()).collect();
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for batch in batcher.epoch(dataset, rng) {
                total +=
                    self.par_train_batch_with(&mut replicas, &batch.features, &batch.labels, opt);
                batches += 1;
            }
            losses.push(if batches > 0 {
                total / batches as f32
            } else {
                0.0
            });
        }
        losses
    }

    /// Dispatches to [`Sequential::par_train_epochs`] or
    /// [`Sequential::train_epochs`] — the one-line hook for the fl/core/bench
    /// local-training paths, whose `batch_parallel` knobs all mean exactly
    /// this choice. Bit-identical results either way.
    pub fn train_epochs_maybe_par<R: Rng + ?Sized>(
        &mut self,
        parallel: bool,
        dataset: &Dataset,
        epochs: usize,
        batcher: &Batcher,
        opt: &mut Sgd,
        rng: &mut R,
    ) -> Vec<f32> {
        if parallel {
            self.par_train_epochs(dataset, epochs, batcher, opt, rng)
        } else {
            self.train_epochs(dataset, epochs, batcher, opt, rng)
        }
    }

    /// Inference forward pass with the rows split across `blockfed-compute`
    /// workers on model replicas, re-assembled in row order. Every logits row
    /// depends only on its own input row, so the result is bit-identical to
    /// [`Sequential::forward`] in inference mode at any thread count.
    fn par_forward(&mut self, features: &Tensor) -> Tensor {
        let rows = features.shape()[0];
        let plan = train_shards(rows);
        let states = plan.len().min(blockfed_compute::num_threads());
        if states <= 1 {
            return self.forward(features, false);
        }
        let mut replicas: Vec<Sequential> = (1..states).map(|_| self.duplicate()).collect();
        let parts: Vec<Tensor> = {
            let mut pool: Vec<&mut Sequential> = Vec::with_capacity(states);
            pool.push(&mut *self);
            for replica in &mut replicas {
                pool.push(replica);
            }
            blockfed_compute::par_map_with(&mut pool, &plan, |model, range| {
                model.forward(&slice_rows(features, range), false)
            })
        };
        let cols = parts[0].shape()[1];
        let mut data = Vec::with_capacity(rows * cols);
        for p in &parts {
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, &[rows, cols])
    }

    /// [`Sequential::evaluate`] with the forward pass sharded across workers;
    /// bit-identical results at any thread count.
    pub fn par_evaluate(&mut self, dataset: &Dataset) -> EvalResult {
        if dataset.is_empty() {
            return EvalResult {
                accuracy: 0.0,
                loss: 0.0,
                examples: 0,
            };
        }
        let logits = self.par_forward(dataset.features());
        let out = cross_entropy(&logits, dataset.labels());
        EvalResult {
            accuracy: ops::accuracy(&logits, dataset.labels()),
            loss: f64::from(out.loss),
            examples: dataset.len(),
        }
    }

    /// [`Sequential::predict`] with the forward pass sharded across workers;
    /// bit-identical results at any thread count.
    pub fn par_predict(&mut self, features: &Tensor) -> Vec<usize> {
        self.par_forward(features).argmax_rows()
    }

    /// Evaluates accuracy and loss on a dataset (inference mode).
    ///
    /// One batched forward pass covers the entire dataset — never one pass
    /// per sample; the per-sample reference exists only as a regression test
    /// (`batched_evaluate_agrees_with_per_sample_reference`) pinning that the
    /// batched path scores every row identically.
    pub fn evaluate(&mut self, dataset: &Dataset) -> EvalResult {
        if dataset.is_empty() {
            return EvalResult {
                accuracy: 0.0,
                loss: 0.0,
                examples: 0,
            };
        }
        let logits = self.forward(dataset.features(), false);
        let out = cross_entropy(&logits, dataset.labels());
        EvalResult {
            accuracy: ops::accuracy(&logits, dataset.labels()),
            loss: f64::from(out.loss),
            examples: dataset.len(),
        }
    }

    /// Predicted class per row.
    pub fn predict(&mut self, features: &Tensor) -> Vec<usize> {
        self.forward(features, false).argmax_rows()
    }

    /// Evaluates on `dataset` and returns the full confusion matrix (rows =
    /// true labels, columns = predictions) — see [`crate::metrics`] for the
    /// derived per-class metrics and the degeneracy signal used by anomaly
    /// detection.
    pub fn evaluate_confusion(&mut self, dataset: &Dataset) -> crate::metrics::ConfusionMatrix {
        let predicted = self.predict(dataset.features());
        crate::metrics::ConfusionMatrix::from_predictions(
            dataset.num_classes(),
            dataset.labels(),
            &predicted,
        )
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("params", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blob_dataset(n_per: usize) -> Dataset {
        // Two linearly separable blobs.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            let t = (i as f32) / (n_per as f32);
            data.extend_from_slice(&[1.0 + 0.1 * t, 1.0 - 0.1 * t]);
            labels.push(0);
            data.extend_from_slice(&[-1.0 - 0.1 * t, -1.0 + 0.1 * t]);
            labels.push(1);
        }
        Dataset::new(Tensor::from_vec(data, &[2 * n_per, 2]), labels, 2)
    }

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Linear::new(&mut rng, 2, 16));
        m.push(Relu::new());
        m.push(Linear::new(&mut rng, 16, 2));
        m
    }

    #[test]
    fn training_reaches_full_accuracy_on_separable_data() {
        let ds = two_blob_dataset(20);
        let mut model = mlp(0);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let losses = model.train_epochs(&ds, 20, &Batcher::new(8), &mut opt, &mut rng);
        assert!(
            losses.last().unwrap() < &0.05,
            "final loss {:?}",
            losses.last()
        );
        let eval = model.evaluate(&ds);
        assert_eq!(eval.accuracy, 1.0);
        assert_eq!(eval.examples, 40);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = two_blob_dataset(20);
        let mut model = mlp(2);
        let mut opt = Sgd::new(0.05, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let losses = model.train_epochs(&ds, 10, &Batcher::new(8), &mut opt, &mut rng);
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn params_flat_roundtrip() {
        let mut a = mlp(4);
        let mut b = mlp(5);
        let x = Tensor::ones(&[1, 2]);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        let flat = a.params_flat();
        assert_eq!(flat.len(), a.param_count());
        b.set_params_flat(&flat);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    #[should_panic(expected = "flat parameter length mismatch")]
    fn set_params_rejects_wrong_length() {
        let mut m = mlp(6);
        m.set_params_flat(&[0.0]);
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = mlp(7);
        assert_eq!(m.param_count(), 2 * 16 + 16 + 16 * 2 + 2);
        assert_eq!(m.depth(), 3);
    }

    #[test]
    fn evaluate_on_empty_dataset() {
        let mut m = mlp(8);
        let empty = Dataset::new(Tensor::zeros(&[0, 2]), vec![], 2);
        let r = m.evaluate(&empty);
        assert_eq!(r.examples, 0);
        assert_eq!(r.accuracy, 0.0);
    }

    #[test]
    fn predict_returns_argmax_labels() {
        let ds = two_blob_dataset(5);
        let mut model = mlp(9);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(10);
        model.train_epochs(&ds, 15, &Batcher::new(5), &mut opt, &mut rng);
        let preds = model.predict(ds.features());
        assert_eq!(preds, ds.labels());
    }

    #[test]
    fn debug_lists_layers() {
        let m = mlp(11);
        let s = format!("{m:?}");
        assert!(s.contains("linear"));
        assert!(s.contains("relu"));
    }

    #[test]
    fn shard_plan_is_a_pure_function_of_batch_size() {
        // Single shard below 16 rows, then ≥ MIN_SHARD_ROWS rows per shard,
        // capped at MAX_TRAIN_SHARDS, always an exact partition.
        assert_eq!(train_shards(1), vec![0..1]);
        assert_eq!(train_shards(15), vec![0..15]);
        assert_eq!(train_shards(16).len(), 2);
        assert_eq!(train_shards(32).len(), 4);
        assert_eq!(train_shards(64).len(), 8);
        assert_eq!(train_shards(1000).len(), MAX_TRAIN_SHARDS);
        assert!(train_shards(0).is_empty());
        for n in [1usize, 7, 16, 17, 33, 64, 100, 257] {
            let plan = train_shards(n);
            let mut next = 0usize;
            for r in &plan {
                assert_eq!(r.start, next, "gap in plan for n={n}");
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, n, "plan must cover the batch for n={n}");
        }
    }

    #[test]
    fn par_train_batch_bit_matches_sequential_on_uneven_batches() {
        // 33 rows: 4 shards of 9/8/8/8 — the plan splits unevenly, and the
        // parallel path must still reproduce the sequential fold exactly.
        let ds = two_blob_dataset(17); // 34 examples; use the first 33
        let idx: Vec<usize> = (0..33).collect();
        let ds = Dataset::new(
            ds.features().gather_rows(&idx),
            ds.labels()[..33].to_vec(),
            2,
        );
        let run = |parallel: bool| {
            let mut model = mlp(21);
            let mut opt = Sgd::new(0.1, 0.9);
            for _ in 0..3 {
                if parallel {
                    model.par_train_batch(ds.features(), ds.labels(), &mut opt);
                } else {
                    model.train_batch(ds.features(), ds.labels(), &mut opt);
                }
            }
            model.params_flat()
        };
        let seq = run(false);
        let par = run(true);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&seq), bits(&par));
    }

    #[test]
    fn batched_evaluate_agrees_with_per_sample_reference() {
        // `evaluate` runs ONE batched forward over the whole dataset; this
        // pins that it scores every row exactly as a one-sample-at-a-time
        // loop would (rows are independent through every layer).
        let ds = two_blob_dataset(20);
        let mut model = mlp(12);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(13);
        model.train_epochs(&ds, 5, &Batcher::new(8), &mut opt, &mut rng);
        let batched = model.evaluate(&ds);

        let mut correct = 0usize;
        let mut loss_sum = 0.0f64;
        for i in 0..ds.len() {
            let row = Dataset::new(
                ds.features().gather_rows(&[i]),
                vec![ds.labels()[i]],
                ds.num_classes(),
            );
            let per_sample = model.evaluate(&row);
            if per_sample.accuracy == 1.0 {
                correct += 1;
            }
            loss_sum += per_sample.loss;
        }
        assert_eq!(batched.accuracy, correct as f64 / ds.len() as f64);
        // The batched mean folds the per-row losses in one pass; the
        // per-sample mean rounds at each step, so compare approximately.
        assert!(
            (batched.loss - loss_sum / ds.len() as f64).abs() < 1e-5,
            "batched {} vs per-sample {}",
            batched.loss,
            loss_sum / ds.len() as f64
        );
    }

    #[test]
    fn par_evaluate_and_predict_match_sequential() {
        let ds = two_blob_dataset(40); // 80 rows: a multi-shard plan
        let mut model = mlp(14);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = StdRng::seed_from_u64(15);
        model.train_epochs(&ds, 3, &Batcher::new(16), &mut opt, &mut rng);
        let seq = model.evaluate(&ds);
        let par = model.par_evaluate(&ds);
        assert_eq!(seq, par, "par_evaluate diverged");
        assert_eq!(
            model.predict(ds.features()),
            model.par_predict(ds.features())
        );
        // Empty dataset short-circuits like the sequential path.
        let empty = Dataset::new(Tensor::zeros(&[0, 2]), vec![], 2);
        assert_eq!(model.par_evaluate(&empty).examples, 0);
    }

    #[test]
    fn par_train_epochs_bit_matches_train_epochs() {
        let ds = two_blob_dataset(32); // 64 examples, batch 32 → 4 shards
        let run = |parallel: bool| {
            let mut model = mlp(20);
            let mut opt = Sgd::new(0.1, 0.9);
            let mut rng = StdRng::seed_from_u64(22);
            let losses = if parallel {
                model.par_train_epochs(&ds, 4, &Batcher::new(32), &mut opt, &mut rng)
            } else {
                model.train_epochs(&ds, 4, &Batcher::new(32), &mut opt, &mut rng)
            };
            (losses, model.params_flat())
        };
        let (seq_losses, seq_params) = run(false);
        let (par_losses, par_params) = run(true);
        assert_eq!(seq_losses, par_losses);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&seq_params), bits(&par_params));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn train_batch_rejects_empty_batch() {
        let mut m = mlp(23);
        let mut opt = Sgd::new(0.1, 0.0);
        m.train_batch(&Tensor::zeros(&[0, 2]), &[], &mut opt);
    }
}
