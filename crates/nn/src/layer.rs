//! Neural-network layers with explicit forward/backward passes.
//!
//! Layers cache whatever the backward pass needs during `forward`, and expose
//! their parameters through a visitor so optimizers and the federated
//! serialization code can walk them without fighting the borrow checker.
//!
//! `Frozen` wraps any layer and stops gradient updates — the mechanism behind
//! the paper's transfer-learned EfficientNet-B0, whose backbone never trains.

use blockfed_tensor::{matmul, matmul_at, ops, Tensor};
use rand::Rng;

/// A differentiable layer.
pub trait Layer: Send {
    /// Computes the output, caching activations needed by [`Layer::backward`].
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates the gradient, accumulating parameter gradients internally.
    ///
    /// Must be called after `forward` with `train = true`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits trainable parameters in a fixed order.
    fn visit_params(&self, f: &mut dyn FnMut(&Tensor));

    /// Visits trainable parameters mutably, in the same order as
    /// [`Layer::visit_params`].
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor));

    /// Visits accumulated gradients in the same order as parameters.
    fn visit_grads(&self, f: &mut dyn FnMut(&Tensor));

    /// Visits accumulated gradients mutably, in the same order as
    /// [`Layer::visit_grads`] — how batch-parallel training folds per-shard
    /// gradient snapshots back into the primary model in fixed shard order.
    fn visit_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor));

    /// Clears accumulated gradients.
    fn zero_grads(&mut self);

    /// A short layer name for debugging.
    fn name(&self) -> &'static str;

    /// Clones the layer (parameters included) behind a fresh box — what
    /// [`Sequential::duplicate`] uses to stamp out per-worker scratch models
    /// for parallel combination evaluation.
    ///
    /// [`Sequential::duplicate`]: crate::Sequential::duplicate
    fn box_clone(&self) -> Box<dyn Layer>;

    /// Number of trainable scalars.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

/// A fully connected layer `y = x·Wᵀ + b` with weights stored `[out, in]`.
#[derive(Clone)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let weight =
            blockfed_tensor::init::xavier_uniform(rng, &[out_dim, in_dim], in_dim, out_dim);
        Linear {
            weight,
            bias: Tensor::zeros(&[out_dim]),
            grad_weight: Tensor::zeros(&[out_dim, in_dim]),
            grad_bias: Tensor::zeros(&[out_dim]),
            cached_input: None,
        }
    }

    /// Builds a layer from explicit weights `[out, in]` and bias `[out]`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.ndim(), 2, "weight must be 2-D");
        assert_eq!(bias.numel(), weight.shape()[0], "bias length mismatch");
        let gw = Tensor::zeros(weight.shape());
        let gb = Tensor::zeros(&[bias.numel()]);
        Linear {
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// The weight tensor `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "Linear expects [batch, in] input");
        assert_eq!(input.shape()[1], self.in_dim(), "input width mismatch");
        if train {
            self.cached_input = Some(input.clone());
        }
        blockfed_tensor::matmul_bt(input, &self.weight).add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called without a training forward pass");
        // dW += gᵀ·x, db += column sums of g, dx = g·W
        self.grad_weight.axpy(1.0, &matmul_at(grad, input));
        self.grad_bias.axpy(1.0, &grad.sum_rows());
        matmul(grad, &self.weight)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_grads(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.grad_weight);
        f(&self.grad_bias);
    }

    fn visit_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.grad_weight);
        f(&mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn box_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Elementwise ReLU.
#[derive(Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        ops::relu(input)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called without a training forward pass");
        ops::relu_backward(grad, input)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_grads(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn box_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Elementwise tanh.
#[derive(Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called without a training forward pass");
        grad.zip_map(out, |g, y| g * (1.0 - y * y))
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_grads(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn box_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// Wraps a layer and freezes it: forward passes through, but the inner
/// parameters are hidden from optimizers and federated serialization, and the
/// backward pass still propagates input gradients without accumulating any.
pub struct Frozen<L: Layer> {
    inner: L,
}

impl<L: Layer + Clone> Clone for Frozen<L> {
    fn clone(&self) -> Self {
        Frozen {
            inner: self.inner.clone(),
        }
    }
}

impl<L: Layer> Frozen<L> {
    /// Freezes `inner`.
    pub fn new(inner: L) -> Self {
        Frozen { inner }
    }

    /// Borrows the frozen layer.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Total parameters held (frozen, so *not* reported by `param_count`).
    pub fn frozen_param_count(&self) -> usize {
        self.inner.param_count()
    }
}

impl<L: Layer + Clone + 'static> Layer for Frozen<L> {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.inner.forward(input, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let out = self.inner.backward(grad);
        self.inner.zero_grads(); // discard any accumulated gradient
        out
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_grads(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn zero_grads(&mut self) {
        self.inner.zero_grads();
    }

    fn box_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "frozen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_forward_known_values() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]); // [out=2, in=2]
        let bias = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut layer = Linear::from_parts(weight, bias);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = layer.forward(&x, false);
        // y0 = 1*1 + 2*1 + 0.5 = 3.5 ; y1 = 3 + 4 - 0.5 = 6.5
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut r = rng();
        let mut layer = Linear::new(&mut r, 3, 2);
        let x = Tensor::from_vec(vec![0.5, -0.2, 0.8, 1.0, 0.3, -0.7], &[2, 3]);
        // Loss = sum(y); dL/dy = ones.
        let y = layer.forward(&x, true);
        let ones = Tensor::ones(y.shape());
        let dx = layer.backward(&ones);

        let eps = 1e-3f32;
        // Check grad for weight[0][1] by finite differences.
        let mut analytic = Vec::new();
        layer.visit_grads(&mut |g| analytic.push(g.clone()));
        let gw = analytic[0].get(&[0, 1]);

        let bumped = Linear::from_parts(layer.weight().clone(), layer.bias().clone());
        let mut w = bumped.weight().clone();
        w.set(&[0, 1], w.get(&[0, 1]) + eps);
        let mut bumped = Linear::from_parts(w, layer.bias().clone());
        let y2 = bumped.forward(&x, false);
        let numeric = (y2.sum() - y.sum()) / eps;
        assert!(
            (gw - numeric).abs() < 1e-2,
            "analytic {gw} vs numeric {numeric}"
        );

        // dL/dx for loss=sum: each row of dx equals column sums of W.
        let mut expected_dx0 = 0.0;
        for o in 0..2 {
            expected_dx0 += layer.weight().get(&[o, 0]);
        }
        assert!((dx.get(&[0, 0]) - expected_dx0).abs() < 1e-5);
    }

    #[test]
    fn linear_gradients_accumulate_until_zeroed() {
        let mut r = rng();
        let mut layer = Linear::new(&mut r, 2, 2);
        let x = Tensor::ones(&[1, 2]);
        for _ in 0..3 {
            let y = layer.forward(&x, true);
            layer.backward(&Tensor::ones(y.shape()));
        }
        let mut gb = Tensor::zeros(&[1]);
        layer.visit_grads(&mut |g| {
            if g.ndim() == 1 {
                gb = g.clone();
            }
        });
        assert_eq!(gb.as_slice(), &[3.0, 3.0]);
        layer.zero_grads();
        layer.visit_grads(&mut |g| assert_eq!(g.sum(), 0.0));
    }

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
        let dx = relu.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_matches_identity() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(vec![0.0], &[1, 1]);
        let _ = tanh.forward(&x, true);
        let dx = tanh.backward(&Tensor::ones(&[1, 1]));
        // d tanh(0) = 1.
        assert!((dx.get(&[0, 0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn frozen_hides_params_but_propagates() {
        let mut r = rng();
        let inner = Linear::new(&mut r, 4, 3);
        let inner_weight = inner.weight().clone();
        let mut frozen = Frozen::new(inner);
        assert_eq!(frozen.param_count(), 0);
        assert_eq!(frozen.frozen_param_count(), 4 * 3 + 3);
        let x = Tensor::ones(&[2, 4]);
        let y = frozen.forward(&x, true);
        let dx = frozen.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), &[2, 4]);
        assert_eq!(
            frozen.inner().weight(),
            &inner_weight,
            "weights must not move"
        );
        // No grads escape.
        frozen.visit_grads(&mut |_| panic!("frozen layer exposed a gradient"));
    }

    #[test]
    fn param_count_counts_weights_and_biases() {
        let mut r = rng();
        let layer = Linear::new(&mut r, 10, 5);
        assert_eq!(layer.param_count(), 55);
        assert_eq!(Relu::new().param_count(), 0);
    }

    #[test]
    #[should_panic(expected = "backward called without")]
    fn backward_requires_training_forward() {
        let mut r = rng();
        let mut layer = Linear::new(&mut r, 2, 2);
        let x = Tensor::ones(&[1, 2]);
        let _ = layer.forward(&x, false); // inference mode: no cache
        let _ = layer.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn width_mismatch_rejected() {
        let mut r = rng();
        let mut layer = Linear::new(&mut r, 3, 2);
        let _ = layer.forward(&Tensor::ones(&[1, 4]), false);
    }
}
