//! Wire format for model parameters.
//!
//! Federated peers exchange trainable parameters as length-prefixed
//! little-endian `f32` buffers with a magic/version header, so malformed or
//! truncated payloads from the network are rejected instead of silently
//! producing garbage models.

use std::fmt;

/// Magic bytes identifying a blockfed weight buffer.
pub const MAGIC: [u8; 4] = *b"BFWT";
/// Current wire-format version.
pub const VERSION: u16 = 1;

/// Error decoding a parameter buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the fixed header.
    TooShort,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported version.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// Declared element count disagrees with the payload size.
    LengthMismatch {
        /// Elements declared in the header.
        declared: u64,
        /// Elements actually present.
        present: u64,
    },
    /// A parameter decoded to NaN or infinity.
    NonFinite {
        /// Index of the offending element.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "buffer shorter than header"),
            DecodeError::BadMagic => write!(f, "magic bytes mismatch"),
            DecodeError::BadVersion { found } => write!(f, "unsupported version {found}"),
            DecodeError::LengthMismatch { declared, present } => {
                write!(
                    f,
                    "declared {declared} elements but payload holds {present}"
                )
            }
            DecodeError::NonFinite { index } => {
                write!(f, "non-finite parameter at index {index}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes parameters into the wire format.
///
/// # Examples
///
/// ```
/// use blockfed_nn::serialize::{decode_params, encode_params};
///
/// let params = vec![1.0f32, -2.5, 0.0];
/// let bytes = encode_params(&params);
/// assert_eq!(decode_params(&bytes)?, params);
/// # Ok::<(), blockfed_nn::serialize::DecodeError>(())
/// ```
pub fn encode_params(params: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(14 + params.len() * 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for &p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Decodes a wire-format buffer back into parameters, rejecting malformed
/// input and non-finite values.
///
/// # Errors
///
/// Returns [`DecodeError`] describing the first problem found.
pub fn decode_params(bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.len() < 14 {
        return Err(DecodeError::TooShort);
    }
    if bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(DecodeError::BadVersion { found: version });
    }
    let declared = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let payload = &bytes[14..];
    if !payload.len().is_multiple_of(4) || (payload.len() / 4) as u64 != declared {
        return Err(DecodeError::LengthMismatch {
            declared,
            present: (payload.len() / 4) as u64,
        });
    }
    let mut out = Vec::with_capacity(payload.len() / 4);
    for (i, chunk) in payload.chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if !v.is_finite() {
            return Err(DecodeError::NonFinite { index: i });
        }
        out.push(v);
    }
    Ok(out)
}

/// Encoded size in bytes for a parameter count (header included).
pub fn encoded_len(param_count: usize) -> usize {
    14 + param_count * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_roundtrip_of_a_trained_model() {
        // Train a small model, ship its parameters through the wire format,
        // and load them into a fresh instance: the parameters must survive
        // byte-identically and the restored model must evaluate identically.
        use crate::layer::{Linear, Relu};
        use crate::model::Sequential;
        use crate::optim::Sgd;
        use blockfed_data::{Batcher, Dataset};
        use blockfed_tensor::Tensor;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let t = i as f32 / 24.0;
            data.extend_from_slice(&[1.0 + t, -1.0 - t]);
            labels.push(0);
            data.extend_from_slice(&[-1.0 - t, 1.0 + t]);
            labels.push(1);
        }
        let ds = Dataset::new(Tensor::from_vec(data, &[48, 2]), labels, 2);

        let mut rng = StdRng::seed_from_u64(77);
        let mut model = Sequential::new();
        model.push(Linear::new(&mut rng, 2, 12));
        model.push(Relu::new());
        model.push(Linear::new(&mut rng, 12, 2));
        let mut opt = Sgd::new(0.1, 0.9);
        model.train_epochs(&ds, 6, &Batcher::new(16), &mut opt, &mut rng);

        let params = model.params_flat();
        let bytes = encode_params(&params);
        // The encoding itself is the golden artifact: re-encoding the decoded
        // parameters must reproduce it byte for byte.
        let decoded = decode_params(&bytes).expect("trained params are finite");
        assert_eq!(encode_params(&decoded), bytes, "re-encode must be stable");
        for (a, b) in params.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "parameter bits must survive");
        }

        let mut restored = model.duplicate();
        // Scramble, then restore from the wire: proves the restore (not the
        // duplicate) carries the behaviour.
        restored.set_params_flat(&vec![0.0; params.len()]);
        restored.set_params_flat(&decoded);
        assert_eq!(
            restored
                .params_flat()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            params.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(restored.evaluate(&ds), model.evaluate(&ds));
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let params = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, -123.456, 7e20];
        let decoded = decode_params(&encode_params(&params)).unwrap();
        assert_eq!(params.len(), decoded.len());
        for (a, b) in params.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_params_roundtrip() {
        let decoded = decode_params(&encode_params(&[])).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn encoded_len_matches() {
        assert_eq!(encode_params(&[1.0; 10]).len(), encoded_len(10));
        assert_eq!(encode_params(&[]).len(), encoded_len(0));
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(decode_params(&[1, 2, 3]), Err(DecodeError::TooShort));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = encode_params(&[1.0]);
        b[0] = b'X';
        assert_eq!(decode_params(&b), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut b = encode_params(&[1.0]);
        b[4] = 99;
        assert_eq!(
            decode_params(&b),
            Err(DecodeError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut b = encode_params(&[1.0, 2.0]);
        b.truncate(b.len() - 4);
        assert!(matches!(
            decode_params(&b),
            Err(DecodeError::LengthMismatch {
                declared: 2,
                present: 1
            })
        ));
    }

    #[test]
    fn rejects_extra_payload() {
        let mut b = encode_params(&[1.0]);
        b.extend_from_slice(&[0, 0, 128, 63]);
        assert!(matches!(
            decode_params(&b),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_ragged_payload() {
        let mut b = encode_params(&[1.0]);
        b.push(0);
        assert!(matches!(
            decode_params(&b),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_nan_and_infinity() {
        let b = encode_params(&[1.0, f32::NAN]);
        assert_eq!(decode_params(&b), Err(DecodeError::NonFinite { index: 1 }));
        let b2 = encode_params(&[f32::INFINITY]);
        assert_eq!(decode_params(&b2), Err(DecodeError::NonFinite { index: 0 }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeError::LengthMismatch {
            declared: 5,
            present: 2,
        };
        assert!(e.to_string().contains('5'));
        assert!(DecodeError::TooShort.to_string().contains("header"));
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::BadVersion { found: 7 }
            .to_string()
            .contains('7'));
        assert!(DecodeError::NonFinite { index: 3 }
            .to_string()
            .contains('3'));
    }
}
