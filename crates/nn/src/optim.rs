//! Optimizers.

use blockfed_tensor::Tensor;

use crate::model::Sequential;

/// Stochastic gradient descent with classical momentum.
///
/// # Examples
///
/// ```
/// use blockfed_nn::Sgd;
///
/// let opt = Sgd::new(0.01, 0.9);
/// assert_eq!(opt.learning_rate(), 0.01);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer with learning rate `lr` and momentum coefficient
    /// `momentum` (`0.0` disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive/finite or momentum is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// The configured momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Overrides the learning rate (e.g. for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive/finite.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step to every trainable parameter of `model`, using
    /// the gradients accumulated since the last `zero_grads`.
    ///
    /// Velocity slots are allocated lazily on first use; reusing one optimizer
    /// across models of different shapes resets the mismatched slots.
    pub fn step(&mut self, model: &mut Sequential) {
        // Snapshot gradients first (immutable walk), then update parameters.
        let mut grads: Vec<Tensor> = Vec::new();
        model.visit_grads(&mut |g| grads.push(g.clone()));
        if self.velocity.len() != grads.len() {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        model.visit_params_mut(&mut |p| {
            let g = &grads[idx];
            if velocity[idx].shape() != g.shape() {
                velocity[idx] = Tensor::zeros(g.shape());
            }
            if momentum > 0.0 {
                let v = &mut velocity[idx];
                // v = momentum*v + g ; p -= lr*v
                for (vv, &gg) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vv = momentum * *vv + gg;
                }
                p.axpy(-lr, v);
            } else {
                p.axpy(-lr, g);
            }
            idx += 1;
        });
    }

    /// Drops accumulated momentum (used when a federated round replaces the
    /// model parameters wholesale).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use crate::model::Sequential;
    use blockfed_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn one_layer() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = Sequential::new();
        m.push(Linear::new(&mut rng, 1, 1));
        m
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut m = one_layer();
        let before = m.params_flat();
        let x = Tensor::ones(&[1, 1]);
        let y = m.forward(&x, true);
        m.backward(&Tensor::ones(y.shape())); // dL/dW = 1, dL/db = 1
        let mut opt = Sgd::new(0.5, 0.0);
        opt.step(&mut m);
        let after = m.params_flat();
        assert!((before[0] - 0.5 - after[0]).abs() < 1e-6);
        assert!((before[1] - 0.5 - after[1]).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_repeated_steps() {
        let run = |momentum: f32| {
            let mut m = one_layer();
            let start = m.params_flat()[0];
            let mut opt = Sgd::new(0.1, momentum);
            for _ in 0..5 {
                m.zero_grads();
                let x = Tensor::ones(&[1, 1]);
                let y = m.forward(&x, true);
                m.backward(&Tensor::ones(y.shape()));
                opt.step(&mut m);
            }
            start - m.params_flat()[0]
        };
        assert!(run(0.9) > run(0.0), "momentum should travel further");
    }

    #[test]
    fn reset_state_clears_velocity() {
        let mut m = one_layer();
        let mut opt = Sgd::new(0.1, 0.9);
        let x = Tensor::ones(&[1, 1]);
        let y = m.forward(&x, true);
        m.backward(&Tensor::ones(y.shape()));
        opt.step(&mut m);
        opt.reset_state();
        // After reset, one step with zero grads must not move parameters.
        m.zero_grads();
        let before = m.params_flat();
        opt.step(&mut m);
        assert_eq!(before, m.params_flat());
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let mut opt = Sgd::new(0.1, 0.0);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        assert_eq!(opt.momentum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn momentum_one_rejected() {
        let _ = Sgd::new(0.1, 1.0);
    }
}
