//! The model zoo: the two architectures the paper evaluates.
//!
//! * [`SimpleNn`] — the "Simple NN … constructed from scratch with only 62K
//!   parameters and approximately 248KB in size".
//! * [`EffNetLite`] — the EfficientNet-B0 stand-in (5.3M parameters, 21.2MB):
//!   a backbone that is *pretrained on a related task and then frozen*, plus a
//!   trainable classification head — the same transfer-learning shape as the
//!   paper's "modifying its final layer". Only the head's parameters are
//!   trainable (and therefore exchanged in federated rounds), but the on-chain
//!   payload is the full serialized model, as in the paper.

use blockfed_data::{Batcher, Dataset};
use blockfed_tensor::Tensor;
use rand::Rng;

use crate::layer::{Frozen, Linear, Relu};
use crate::model::Sequential;
use crate::optim::Sgd;

/// Which of the paper's two models an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The small from-scratch network.
    SimpleNn,
    /// The transfer-learned complex network.
    EffNetLite,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::SimpleNn => write!(f, "Simple NN"),
            ModelKind::EffNetLite => write!(f, "Efficient-B0"),
        }
    }
}

/// Configuration of [`SimpleNn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimpleNnConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// First hidden width.
    pub hidden1: usize,
    /// Second hidden width.
    pub hidden2: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl SimpleNnConfig {
    /// The paper-scale configuration: ≈62 K parameters (≈248 KB of f32s) on a
    /// 64-dimensional input.
    pub fn paper() -> Self {
        SimpleNnConfig {
            input_dim: 64,
            hidden1: 310,
            hidden2: 130,
            num_classes: 10,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny(input_dim: usize, num_classes: usize) -> Self {
        SimpleNnConfig {
            input_dim,
            hidden1: 16,
            hidden2: 8,
            num_classes,
        }
    }

    /// Exact trainable parameter count of the architecture.
    pub fn param_count(&self) -> usize {
        self.input_dim * self.hidden1
            + self.hidden1
            + self.hidden1 * self.hidden2
            + self.hidden2
            + self.hidden2 * self.num_classes
            + self.num_classes
    }

    /// Serialized model size in bytes (4 bytes per parameter, as in the paper's
    /// 62 K ↔ 248 KB correspondence).
    pub fn payload_bytes(&self) -> u64 {
        (self.param_count() as u64) * 4
    }

    /// Builds a freshly initialized model.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Sequential {
        let mut m = Sequential::new();
        m.push(Linear::new(rng, self.input_dim, self.hidden1));
        m.push(Relu::new());
        m.push(Linear::new(rng, self.hidden1, self.hidden2));
        m.push(Relu::new());
        m.push(Linear::new(rng, self.hidden2, self.num_classes));
        m
    }
}

/// Convenience alias: builds a [`SimpleNnConfig`] model.
pub struct SimpleNn;

impl SimpleNn {
    /// Builds the paper-scale SimpleNN.
    pub fn paper<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
        SimpleNnConfig::paper().build(rng)
    }
}

/// Configuration of [`EffNetLite`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffNetLiteConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Backbone width (two hidden layers of this width).
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Epochs of backbone pretraining on the pretext task.
    pub pretrain_epochs: usize,
    /// Learning rate for pretraining.
    pub pretrain_lr: f32,
}

impl EffNetLiteConfig {
    /// The paper-scale configuration: ≈5.3 M total parameters (≈21.2 MB).
    pub fn paper() -> Self {
        EffNetLiteConfig {
            input_dim: 64,
            width: 2270,
            num_classes: 10,
            pretrain_epochs: 8,
            pretrain_lr: 0.05,
        }
    }

    /// A faster configuration with the same qualitative behaviour, used by the
    /// default experiment profile.
    pub fn quick() -> Self {
        EffNetLiteConfig {
            input_dim: 64,
            width: 384,
            num_classes: 10,
            pretrain_epochs: 8,
            pretrain_lr: 0.05,
        }
    }

    /// A reduced configuration for unit tests.
    pub fn tiny(input_dim: usize, num_classes: usize) -> Self {
        EffNetLiteConfig {
            input_dim,
            width: 24,
            num_classes,
            pretrain_epochs: 2,
            pretrain_lr: 0.05,
        }
    }

    /// Total parameter count including the frozen backbone.
    pub fn total_param_count(&self) -> usize {
        self.input_dim * self.width
            + self.width
            + self.width * self.width
            + self.width
            + self.width * self.num_classes
            + self.num_classes
    }

    /// Trainable (head) parameter count — what federated rounds exchange.
    pub fn head_param_count(&self) -> usize {
        self.width * self.num_classes + self.num_classes
    }

    /// Serialized full-model size in bytes (what travels on chain, as in the
    /// paper's 5.3 M ↔ 21.2 MB correspondence).
    pub fn payload_bytes(&self) -> u64 {
        (self.total_param_count() as u64) * 4
    }
}

/// The EfficientNet-B0 stand-in: frozen pretrained backbone + trainable head.
pub struct EffNetLite {
    config: EffNetLiteConfig,
    backbone: Sequential,
}

impl EffNetLite {
    /// Builds the model and *pretrains* the backbone on a pretext dataset —
    /// the analog of "EfficientNet-B0 pretrained on ImageNet": the pretext data
    /// shares the observation process ("natural image statistics") with the
    /// downstream task but has its own classes.
    ///
    /// After pretraining the backbone is frozen; only heads created by
    /// [`EffNetLite::fresh_head`] train afterwards.
    pub fn pretrained<R: Rng + ?Sized>(
        config: EffNetLiteConfig,
        pretext: &Dataset,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            pretext.feature_dim(),
            config.input_dim,
            "pretext dim mismatch"
        );
        // Build backbone + auxiliary head, train jointly, then freeze backbone.
        let mut full = Sequential::new();
        full.push(Linear::new(rng, config.input_dim, config.width));
        full.push(Relu::new());
        full.push(Linear::new(rng, config.width, config.width));
        full.push(Relu::new());
        full.push(Linear::new(rng, config.width, pretext.num_classes()));
        let mut opt = Sgd::new(config.pretrain_lr, 0.9);
        let batcher = Batcher::new(32);
        full.train_epochs(pretext, config.pretrain_epochs, &batcher, &mut opt, rng);

        // Extract the trained backbone weights into frozen layers.
        let flat = full.params_flat();
        let (w1n, b1n) = (config.input_dim * config.width, config.width);
        let (w2n, b2n) = (config.width * config.width, config.width);
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| {
            let s = flat[*off..*off + n].to_vec();
            *off += n;
            s
        };
        let w1 = Tensor::from_vec(take(&mut off, w1n), &[config.width, config.input_dim]);
        let b1 = Tensor::from_vec(take(&mut off, b1n), &[config.width]);
        let w2 = Tensor::from_vec(take(&mut off, w2n), &[config.width, config.width]);
        let b2 = Tensor::from_vec(take(&mut off, b2n), &[config.width]);

        let mut backbone = Sequential::new();
        backbone.push(Frozen::new(Linear::from_parts(w1, b1)));
        backbone.push(Relu::new());
        backbone.push(Frozen::new(Linear::from_parts(w2, b2)));
        backbone.push(Relu::new());
        EffNetLite { config, backbone }
    }

    /// The configuration.
    pub fn config(&self) -> &EffNetLiteConfig {
        &self.config
    }

    /// Runs the frozen backbone over a dataset once, producing the feature
    /// dataset the head trains on (the standard frozen-transfer optimization;
    /// numerically identical to running the full network every step).
    pub fn extract_features(&mut self, dataset: &Dataset) -> Dataset {
        let feats = self.backbone.forward(dataset.features(), false);
        Dataset::new(feats, dataset.labels().to_vec(), dataset.num_classes())
    }

    /// A freshly initialized trainable head (`width → num_classes`).
    pub fn fresh_head<R: Rng + ?Sized>(&self, rng: &mut R) -> Sequential {
        let mut head = Sequential::new();
        head.push(Linear::new(rng, self.config.width, self.config.num_classes));
        head
    }

    /// The backbone's frozen parameter count.
    pub fn backbone_param_count(&self) -> usize {
        self.config.input_dim * self.config.width
            + self.config.width
            + self.config.width * self.config.width
            + self.config.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_nn_paper_parameter_budget() {
        let cfg = SimpleNnConfig::paper();
        // "only 62K parameters and approximately 248KB in size"
        assert!(
            (60_000..=64_000).contains(&cfg.param_count()),
            "{}",
            cfg.param_count()
        );
        let kb = cfg.payload_bytes() as f64 / 1024.0;
        assert!((235.0..=255.0).contains(&kb), "{kb} KB");
        let mut rng = StdRng::seed_from_u64(0);
        let model = cfg.build(&mut rng);
        assert_eq!(model.param_count(), cfg.param_count());
    }

    #[test]
    fn effnet_paper_parameter_budget() {
        let cfg = EffNetLiteConfig::paper();
        // "parameters count 5.3M, size 21.2MB"
        let m = cfg.total_param_count() as f64 / 1e6;
        assert!((5.0..=5.6).contains(&m), "{m} M params");
        let mb = cfg.payload_bytes() as f64 / (1024.0 * 1024.0);
        assert!((19.5..=22.5).contains(&mb), "{mb} MB");
        // Trainable head is a tiny fraction (transfer learning).
        assert!(cfg.head_param_count() * 100 < cfg.total_param_count());
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::SimpleNn.to_string(), "Simple NN");
        assert_eq!(ModelKind::EffNetLite.to_string(), "Efficient-B0");
    }

    fn pretext_dataset(n: usize, dim: usize, classes: usize, seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % classes;
            for j in 0..dim {
                let center = if j % classes == class { 1.0 } else { -0.2 };
                data.push(center + rng.gen_range(-0.3..0.3));
            }
            labels.push(class);
        }
        Dataset::new(Tensor::from_vec(data, &[n, dim]), labels, classes)
    }

    #[test]
    fn pretrained_backbone_is_frozen_and_reusable() {
        let mut rng = StdRng::seed_from_u64(1);
        let pretext = pretext_dataset(60, 8, 3, 2);
        let cfg = EffNetLiteConfig::tiny(8, 4);
        let mut model = EffNetLite::pretrained(cfg, &pretext, &mut rng);
        assert_eq!(model.backbone_param_count(), 8 * 24 + 24 + 24 * 24 + 24);
        // Backbone exposes no trainable params.
        let downstream = pretext_dataset(40, 8, 4, 3);
        let feats = model.extract_features(&downstream);
        assert_eq!(feats.len(), 40);
        assert_eq!(feats.feature_dim(), 24);
        // Extraction is deterministic (frozen).
        let feats2 = model.extract_features(&downstream);
        assert_eq!(feats, feats2);
        // Heads are trainable and sized width → classes.
        let head = model.fresh_head(&mut rng);
        assert_eq!(head.param_count(), 24 * 4 + 4);
    }

    #[test]
    fn transfer_head_learns_downstream_task() {
        let mut rng = StdRng::seed_from_u64(4);
        let pretext = pretext_dataset(90, 8, 3, 5);
        let cfg = EffNetLiteConfig::tiny(8, 3);
        let mut model = EffNetLite::pretrained(cfg, &pretext, &mut rng);
        let downstream = pretext_dataset(90, 8, 3, 6);
        let feats = model.extract_features(&downstream);
        let mut head = model.fresh_head(&mut rng);
        let mut opt = Sgd::new(0.1, 0.9);
        head.train_epochs(&feats, 10, &Batcher::new(16), &mut opt, &mut rng);
        let eval = head.evaluate(&feats);
        assert!(eval.accuracy > 0.8, "transfer accuracy {}", eval.accuracy);
    }

    #[test]
    fn tiny_configs_are_consistent() {
        let s = SimpleNnConfig::tiny(12, 4);
        assert_eq!(s.param_count(), 12 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
        let e = EffNetLiteConfig::tiny(12, 4);
        assert_eq!(e.head_param_count(), 24 * 4 + 4);
        assert!(e.total_param_count() > e.head_param_count());
    }
}
