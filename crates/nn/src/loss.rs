//! Loss functions.

use blockfed_tensor::{ops, Tensor};

/// Mean cross-entropy over a batch, with the gradient w.r.t. the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean negative log-likelihood.
    pub loss: f32,
    /// `[batch, classes]` gradient of the mean loss w.r.t. the logits.
    pub grad: Tensor,
}

/// Softmax cross-entropy between `logits` (`[batch, classes]`) and integer
/// labels.
///
/// # Panics
///
/// Panics if the logits are not 2-D, the label count differs from the batch
/// size, or a label is out of range.
///
/// # Examples
///
/// ```
/// use blockfed_nn::loss::cross_entropy;
/// use blockfed_tensor::Tensor;
///
/// let confident = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
/// let out = cross_entropy(&confident, &[0]);
/// assert!(out.loss < 1e-3);
/// ```
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.ndim(), 2, "logits must be [batch, classes]");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(batch, labels.len(), "label count mismatch");
    assert!(labels.iter().all(|&l| l < classes), "label out of range");
    assert!(batch > 0, "empty batch");

    let log_probs = ops::log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (r, &l) in labels.iter().enumerate() {
        loss -= log_probs.get(&[r, l]);
    }
    loss /= batch as f32;

    // grad = (softmax - onehot) / batch
    let mut grad = ops::softmax_rows(logits);
    for (r, &l) in labels.iter().enumerate() {
        let v = grad.get(&[r, l]);
        grad.set(&[r, l], v - 1.0);
    }
    let grad = grad.scale(1.0 / batch as f32);
    LossOutput { loss, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn confident_wrong_prediction_has_high_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let out = cross_entropy(&logits, &[1]);
        assert!(out.loss > 10.0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0], &[2, 3]);
        let out = cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]);
        let labels = [2usize];
        let out = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut bumped = logits.clone();
            bumped.set(&[0, j], bumped.get(&[0, j]) + eps);
            let out2 = cross_entropy(&bumped, &labels);
            let numeric = (out2.loss - out.loss) / eps;
            let analytic = out.grad.get(&[0, j]);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "logit {j}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn batch_mean_scaling() {
        let one = cross_entropy(&Tensor::zeros(&[1, 2]), &[0]);
        let four = cross_entropy(&Tensor::zeros(&[4, 2]), &[0, 0, 0, 0]);
        assert!((one.loss - four.loss).abs() < 1e-6);
        // Per-example gradient magnitude shrinks with batch size.
        assert!((one.grad.get(&[0, 0]) - 4.0 * four.grad.get(&[0, 0])).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = cross_entropy(&Tensor::zeros(&[1, 2]), &[2]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = cross_entropy(&Tensor::zeros(&[0, 2]), &[]);
    }
}
