//! Synthetic federated datasets for the `blockfed` experiments.
//!
//! CIFAR-10 is not available offline, so the experiments run on
//! [`SynthCifar`] — a seeded 10-class generator engineered to preserve the two
//! properties the paper's evaluation actually depends on: a capacity gap
//! between simple and complex models, and client heterogeneity under
//! federated partitioning (see `DESIGN.md` for the substitution argument).
//!
//! # Examples
//!
//! ```
//! use blockfed_data::{partition_dataset, Partition, SynthCifar, SynthCifarConfig};
//! use rand::SeedableRng;
//!
//! let gen = SynthCifar::new(SynthCifarConfig::tiny());
//! let (train, _test) = gen.generate(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let shards = partition_dataset(&train, 3, Partition::DirichletLabelSkew { alpha: 0.5 }, &mut rng);
//! assert_eq!(shards.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod loader;
pub mod partition;
pub mod synth_cifar;

pub use dataset::Dataset;
pub use loader::{Batch, Batcher};
pub use partition::{partition_dataset, Partition};
pub use synth_cifar::{SynthCifar, SynthCifarConfig};
