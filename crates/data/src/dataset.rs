//! Labeled datasets for the federated-learning experiments.

use blockfed_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A labeled classification dataset with flat feature vectors.
///
/// # Examples
///
/// ```
/// use blockfed_data::Dataset;
/// use blockfed_tensor::Tensor;
///
/// let ds = Dataset::new(Tensor::zeros(&[4, 3]), vec![0, 1, 0, 1], 2);
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.class_counts(), vec![2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from a `[n, d]` feature tensor and `n` labels.
    ///
    /// # Panics
    ///
    /// Panics if the feature tensor is not 2-D, the label count differs from
    /// the row count, or any label is out of range.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.ndim(), 2, "features must be 2-D [n, d]");
        assert_eq!(
            features.shape()[0],
            labels.len(),
            "feature/label count mismatch"
        );
        assert!(num_classes > 0, "num_classes must be positive");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Dataset {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.shape()[1]
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The `[n, d]` feature tensor.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies the selected examples into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = self.features.gather_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(first n, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the length.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }

    /// Number of examples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Concatenates two datasets over the same feature space.
    ///
    /// # Panics
    ///
    /// Panics if dimensionality or class count disagree.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(
            self.feature_dim(),
            other.feature_dim(),
            "feature dim mismatch"
        );
        assert_eq!(self.num_classes, other.num_classes, "class count mismatch");
        let mut data = self.features.as_slice().to_vec();
        data.extend_from_slice(other.features.as_slice());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset {
            features: Tensor::from_vec(data, &[self.len() + other.len(), self.feature_dim()]),
            labels,
            num_classes: self.num_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        Dataset::new(features, vec![0, 1, 1, 2], 3)
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.feature_dim(), 3);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.class_counts(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = Dataset::new(Tensor::zeros(&[1, 2]), vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "feature/label count mismatch")]
    fn rejects_count_mismatch() {
        let _ = Dataset::new(Tensor::zeros(&[2, 2]), vec![0], 2);
    }

    #[test]
    fn subset_selects_rows_and_labels() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[2, 0]);
        assert_eq!(sub.features().row(0), &[9.0, 10.0, 11.0]);
    }

    #[test]
    fn split_at_partitions() {
        let ds = toy();
        let (a, b) = ds.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.labels(), &[1, 1, 2]);
        let (all, none) = ds.split_at(4);
        assert_eq!(all.len(), 4);
        assert!(none.is_empty());
    }

    #[test]
    fn concat_appends() {
        let ds = toy();
        let merged = ds.concat(&ds);
        assert_eq!(merged.len(), 8);
        assert_eq!(merged.class_counts(), vec![2, 4, 2]);
        assert_eq!(merged.features().row(4), ds.features().row(0));
    }

    #[test]
    #[should_panic(expected = "split point beyond dataset")]
    fn split_beyond_len_panics() {
        let _ = toy().split_at(9);
    }
}
