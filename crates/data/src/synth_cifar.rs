//! SynthCifar: the offline stand-in for CIFAR-10.
//!
//! The paper uses CIFAR-10 purely as "a 10-class image classification task that a
//! small network fits poorly and a large (transfer-learned) network fits well,
//! and that becomes heterogeneous when split across clients". SynthCifar is a
//! seeded generative process engineered to have exactly those properties:
//!
//! 1. each class has several latent sub-cluster prototypes (intra-class
//!    variation),
//! 2. latent vectors pass through a fixed random two-layer nonlinear "camera"
//!    shared by every sample (so the raw features are *not* linearly separable,
//!    giving high-capacity models headroom over small ones — the
//!    SimpleNN-vs-EfficientNet gap of the paper),
//! 3. additive observation noise.
//!
//! The generator is deterministic given a seed, so experiments are reproducible
//! without shipping a dataset.

use blockfed_tensor::{matmul, ops::relu, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Configuration of the SynthCifar generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthCifarConfig {
    /// Number of classes (CIFAR-10 uses 10).
    pub num_classes: usize,
    /// Latent dimensionality of the class structure.
    pub latent_dim: usize,
    /// Observed feature dimensionality (the "pixels").
    pub feature_dim: usize,
    /// Latent sub-clusters per class (intra-class variation).
    pub subclusters: usize,
    /// Training examples per class.
    pub train_per_class: usize,
    /// Test examples per class.
    pub test_per_class: usize,
    /// Distance between class prototypes in latent space.
    pub class_separation: f32,
    /// Radius of sub-cluster offsets around the class prototype.
    pub subcluster_spread: f32,
    /// Std-dev of latent noise added per sample.
    pub latent_noise: f32,
    /// Std-dev of observation noise added after the nonlinear mixing.
    pub observation_noise: f32,
    /// Seed for the fixed mixing "camera" and prototypes.
    pub seed: u64,
}

impl Default for SynthCifarConfig {
    fn default() -> Self {
        SynthCifarConfig {
            num_classes: 10,
            latent_dim: 24,
            feature_dim: 64,
            subclusters: 10,
            train_per_class: 150,
            test_per_class: 60,
            class_separation: 0.8,
            subcluster_spread: 2.5,
            latent_noise: 1.05,
            observation_noise: 0.15,
            seed: 0xC1FA_0010,
        }
    }
}

impl SynthCifarConfig {
    /// A reduced configuration for fast unit tests — easier than the default
    /// so tiny models learn it in a couple of epochs.
    pub fn tiny() -> Self {
        SynthCifarConfig {
            num_classes: 4,
            latent_dim: 6,
            feature_dim: 12,
            subclusters: 2,
            train_per_class: 20,
            test_per_class: 10,
            class_separation: 3.0,
            subcluster_spread: 1.2,
            latent_noise: 0.8,
            observation_noise: 0.05,
            ..SynthCifarConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_classes == 0 {
            return Err("num_classes must be positive".into());
        }
        if self.latent_dim == 0 || self.feature_dim == 0 {
            return Err("dimensions must be positive".into());
        }
        if self.subclusters == 0 {
            return Err("subclusters must be positive".into());
        }
        if self.train_per_class == 0 || self.test_per_class == 0 {
            return Err("per-class sample counts must be positive".into());
        }
        if self.class_separation.is_nan() || self.class_separation <= 0.0 {
            return Err("class_separation must be positive".into());
        }
        Ok(())
    }
}

/// The deterministic SynthCifar generator.
#[derive(Debug, Clone)]
pub struct SynthCifar {
    config: SynthCifarConfig,
    prototypes: Vec<Tensor>, // per class-subcluster latent prototype [latent_dim]
    mix1: Tensor,            // [latent_dim, hidden]
    mix2: Tensor,            // [hidden, feature_dim]
}

impl SynthCifar {
    /// Builds the generator (prototypes and fixed mixing weights) from a config.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`SynthCifarConfig::validate`] first to handle errors gracefully.
    pub fn new(config: SynthCifarConfig) -> Self {
        config.validate().expect("invalid SynthCifar configuration");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let hidden = (config.latent_dim + config.feature_dim) / 2 + 8;
        let mut prototypes = Vec::with_capacity(config.num_classes * config.subclusters);
        for _ in 0..config.num_classes {
            // One center per class, subclusters scattered around it.
            let center: Vec<f32> = (0..config.latent_dim)
                .map(|_| gaussian(&mut rng) * config.class_separation)
                .collect();
            for _ in 0..config.subclusters {
                let proto: Vec<f32> = center
                    .iter()
                    .map(|&c| c + gaussian(&mut rng) * config.subcluster_spread)
                    .collect();
                prototypes.push(Tensor::from_vec(proto, &[config.latent_dim]));
            }
        }
        let mix1 = random_matrix(
            &mut rng,
            config.latent_dim,
            hidden,
            1.0 / (config.latent_dim as f32).sqrt(),
        );
        let mix2 = random_matrix(
            &mut rng,
            hidden,
            config.feature_dim,
            1.0 / (hidden as f32).sqrt(),
        );
        SynthCifar {
            config,
            prototypes,
            mix1,
            mix2,
        }
    }

    /// The configuration used to build this generator.
    pub fn config(&self) -> &SynthCifarConfig {
        &self.config
    }

    /// Generates `per_class` samples of each class using the provided RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, per_class: usize) -> Dataset {
        let c = &self.config;
        let n = per_class * c.num_classes;
        let mut latents = Vec::with_capacity(n * c.latent_dim);
        let mut labels = Vec::with_capacity(n);
        for class in 0..c.num_classes {
            for _ in 0..per_class {
                let sub = rng.gen_range(0..c.subclusters);
                let proto = &self.prototypes[class * c.subclusters + sub];
                for &p in proto.as_slice() {
                    latents.push(p + gaussian(rng) * c.latent_noise);
                }
                labels.push(class);
            }
        }
        let z = Tensor::from_vec(latents, &[n, c.latent_dim]);
        // Fixed nonlinear "camera": x = tanh(relu(z·M1)·M2) + noise.
        let h = relu(&matmul(&z, &self.mix1));
        let mut x = matmul(&h, &self.mix2).map(f32::tanh);
        if c.observation_noise > 0.0 {
            for v in x.as_mut_slice() {
                *v += gaussian(rng) * c.observation_noise;
            }
        }
        Dataset::new(x, labels, c.num_classes)
    }

    /// Generates the standard `(train, test)` split from a seed.
    pub fn generate(&self, split_seed: u64) -> (Dataset, Dataset) {
        let mut train_rng = StdRng::seed_from_u64(split_seed.wrapping_mul(2).wrapping_add(1));
        let mut test_rng = StdRng::seed_from_u64(split_seed.wrapping_mul(2).wrapping_add(2));
        let train = self.sample(&mut train_rng, self.config.train_per_class);
        let test = self.sample(&mut test_rng, self.config.test_per_class);
        (train, test)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn random_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, scale: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| gaussian(rng) * scale).collect();
    Tensor::from_vec(data, &[rows, cols])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen1 = SynthCifar::new(SynthCifarConfig::tiny());
        let gen2 = SynthCifar::new(SynthCifarConfig::tiny());
        let (tr1, te1) = gen1.generate(7);
        let (tr2, te2) = gen2.generate(7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
    }

    #[test]
    fn different_split_seeds_differ() {
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (tr1, _) = gen.generate(1);
        let (tr2, _) = gen.generate(2);
        assert_ne!(tr1, tr2);
    }

    #[test]
    fn shape_and_balance() {
        let cfg = SynthCifarConfig::tiny();
        let gen = SynthCifar::new(cfg.clone());
        let (train, test) = gen.generate(0);
        assert_eq!(train.len(), cfg.num_classes * cfg.train_per_class);
        assert_eq!(test.len(), cfg.num_classes * cfg.test_per_class);
        assert_eq!(train.feature_dim(), cfg.feature_dim);
        assert!(train
            .class_counts()
            .iter()
            .all(|&c| c == cfg.train_per_class));
    }

    #[test]
    fn features_are_bounded_and_finite() {
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (train, _) = gen.generate(0);
        assert!(train.features().all_finite());
        // tanh output plus small noise: comfortably within [-2, 2].
        assert!(train.features().as_slice().iter().all(|&v| v.abs() < 2.0));
    }

    #[test]
    fn classes_are_statistically_distinguishable() {
        // Nearest-class-mean classification on raw features must beat chance by
        // a wide margin, otherwise no model could learn anything.
        let gen = SynthCifar::new(SynthCifarConfig::tiny());
        let (train, test) = gen.generate(3);
        let d = train.feature_dim();
        let k = train.num_classes();
        let mut means = vec![vec![0.0f32; d]; k];
        let counts = train.class_counts();
        for i in 0..train.len() {
            let row = train.features().row(i);
            let l = train.labels()[i];
            for j in 0..d {
                means[l][j] += row[j];
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            for v in m.iter_mut() {
                *v /= counts[c] as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..test.len() {
            let row = test.features().row(i);
            let mut best = 0;
            let mut best_dist = f32::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let dist: f32 = row.iter().zip(m).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        let chance = 1.0 / k as f64;
        assert!(
            acc > chance * 2.0,
            "nearest-mean accuracy {acc} vs chance {chance}"
        );
    }

    #[test]
    fn config_validation_catches_errors() {
        let mut cfg = SynthCifarConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.num_classes = 0;
        assert!(cfg.validate().is_err());
        let cfg2 = SynthCifarConfig {
            class_separation: 0.0,
            ..Default::default()
        };
        assert!(cfg2.validate().is_err());
        let cfg3 = SynthCifarConfig {
            train_per_class: 0,
            ..Default::default()
        };
        assert!(cfg3.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid SynthCifar configuration")]
    fn constructor_panics_on_invalid_config() {
        let cfg = SynthCifarConfig {
            latent_dim: 0,
            ..Default::default()
        };
        let _ = SynthCifar::new(cfg);
    }
}
