//! Mini-batch iteration with per-epoch shuffling.

use blockfed_tensor::Tensor;
use rand::Rng;

use crate::dataset::Dataset;

/// One mini-batch of features and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// `[batch, d]` features.
    pub features: Tensor,
    /// Labels aligned with the feature rows.
    pub labels: Vec<usize>,
}

/// Produces shuffled mini-batches over a dataset.
///
/// # Examples
///
/// ```
/// use blockfed_data::{Batcher, Dataset};
/// use blockfed_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let ds = Dataset::new(Tensor::zeros(&[5, 2]), vec![0, 1, 0, 1, 0], 2);
/// let batcher = Batcher::new(2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let batches = batcher.epoch(&ds, &mut rng);
/// assert_eq!(batches.len(), 3); // 2 + 2 + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batcher {
    batch_size: usize,
}

impl Batcher {
    /// Creates a batcher with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher { batch_size }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Produces one epoch of shuffled batches (the last batch may be smaller).
    pub fn epoch<R: Rng + ?Sized>(&self, dataset: &Dataset, rng: &mut R) -> Vec<Batch> {
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order
            .chunks(self.batch_size)
            .map(|chunk| {
                let sub = dataset.subset(chunk);
                Batch {
                    labels: sub.labels().to_vec(),
                    features: sub.features().clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_vec((0..n * 2).map(|x| x as f32).collect(), &[n, 2]);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(features, labels, 3)
    }

    #[test]
    fn covers_every_example_once() {
        let ds = toy(10);
        let batcher = Batcher::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = batcher.epoch(&ds, &mut rng);
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 10);
        // Every original first-feature value appears exactly once.
        let mut firsts: Vec<f32> = batches
            .iter()
            .flat_map(|b| {
                (0..b.features.shape()[0])
                    .map(|r| b.features.row(r)[0])
                    .collect::<Vec<_>>()
            })
            .collect();
        firsts.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..10).map(|i| (i * 2) as f32).collect();
        assert_eq!(firsts, expected);
    }

    #[test]
    fn shuffles_between_epochs() {
        let ds = toy(32);
        let batcher = Batcher::new(32);
        let mut rng = StdRng::seed_from_u64(2);
        let e1 = batcher.epoch(&ds, &mut rng);
        let e2 = batcher.epoch(&ds, &mut rng);
        assert_ne!(
            e1[0].labels, e2[0].labels,
            "epochs should shuffle differently"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy(16);
        let batcher = Batcher::new(4);
        let a = batcher.epoch(&ds, &mut StdRng::seed_from_u64(3));
        let b = batcher.epoch(&ds, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn exact_division_has_no_runt_batch() {
        let ds = toy(9);
        let batcher = Batcher::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let batches = batcher.epoch(&ds, &mut rng);
        assert!(batches.iter().all(|b| b.labels.len() == 3));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = Batcher::new(0);
    }
}
