//! Federated partitioning: splitting one dataset across clients.
//!
//! The paper's heterogeneity ("noisy models … due to the heterogeneous data from
//! other regions or scopes") is modeled with the standard Dirichlet label-skew
//! partition; IID and quantity-skew partitions are provided as baselines and for
//! ablations.

use rand::Rng;

use crate::dataset::Dataset;

/// How to split a dataset across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Uniformly random equal-size shards.
    Iid,
    /// Label-skew via per-class Dirichlet(α) allocation. Small α → heavy skew.
    DirichletLabelSkew {
        /// Dirichlet concentration; the standard 0.5 gives visible skew.
        alpha: f64,
    },
    /// Same label distribution but unequal shard sizes drawn from Dirichlet(α).
    QuantitySkew {
        /// Dirichlet concentration over shard sizes.
        alpha: f64,
    },
}

/// Splits `dataset` into `clients` shards according to the partition scheme.
///
/// Every example is assigned to exactly one shard; shards are never empty (a
/// round-robin repair pass moves examples from the largest shard if needed).
///
/// # Panics
///
/// Panics if `clients` is zero or exceeds the dataset size.
///
/// # Examples
///
/// ```
/// use blockfed_data::{partition_dataset, Dataset, Partition};
/// use blockfed_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let ds = Dataset::new(Tensor::zeros(&[10, 2]), vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1], 2);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let shards = partition_dataset(&ds, 2, Partition::Iid, &mut rng);
/// assert_eq!(shards.len(), 2);
/// assert_eq!(shards[0].len() + shards[1].len(), 10);
/// ```
pub fn partition_dataset<R: Rng + ?Sized>(
    dataset: &Dataset,
    clients: usize,
    partition: Partition,
    rng: &mut R,
) -> Vec<Dataset> {
    assert!(clients > 0, "client count must be positive");
    assert!(clients <= dataset.len(), "more clients than examples");
    let assignment = match partition {
        Partition::Iid => assign_iid(dataset.len(), clients, rng),
        Partition::DirichletLabelSkew { alpha } => {
            assert!(alpha > 0.0, "alpha must be positive");
            assign_label_skew(dataset, clients, alpha, rng)
        }
        Partition::QuantitySkew { alpha } => {
            assert!(alpha > 0.0, "alpha must be positive");
            assign_quantity_skew(dataset.len(), clients, alpha, rng)
        }
    };
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); clients];
    for (example, &client) in assignment.iter().enumerate() {
        shards[client].push(example);
    }
    repair_empty_shards(&mut shards);
    shards.iter().map(|idx| dataset.subset(idx)).collect()
}

fn assign_iid<R: Rng + ?Sized>(n: usize, clients: usize, rng: &mut R) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, rng);
    let mut assignment = vec![0usize; n];
    for (pos, &example) in order.iter().enumerate() {
        assignment[example] = pos % clients;
    }
    assignment
}

fn assign_label_skew<R: Rng + ?Sized>(
    dataset: &Dataset,
    clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<usize> {
    let mut assignment = vec![0usize; dataset.len()];
    for class in 0..dataset.num_classes() {
        let mut members: Vec<usize> = (0..dataset.len())
            .filter(|&i| dataset.labels()[i] == class)
            .collect();
        shuffle(&mut members, rng);
        let weights = dirichlet(clients, alpha, rng);
        // Convert weights to cumulative example counts.
        let mut cut = 0usize;
        let mut cursor = 0usize;
        for (client, &w) in weights.iter().enumerate() {
            let take = if client == clients - 1 {
                members.len() - cursor
            } else {
                ((w * members.len() as f64).round() as usize).min(members.len() - cursor)
            };
            cut += take;
            for &m in &members[cursor..cursor + take] {
                assignment[m] = client;
            }
            cursor += take;
        }
        debug_assert_eq!(cut, members.len());
    }
    assignment
}

fn assign_quantity_skew<R: Rng + ?Sized>(
    n: usize,
    clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<usize> {
    let weights = dirichlet(clients, alpha, rng);
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, rng);
    let mut assignment = vec![0usize; n];
    let mut cursor = 0usize;
    for (client, &w) in weights.iter().enumerate() {
        let take = if client == clients - 1 {
            n - cursor
        } else {
            ((w * n as f64).round() as usize).min(n - cursor)
        };
        for &e in &order[cursor..cursor + take] {
            assignment[e] = client;
        }
        cursor += take;
    }
    assignment
}

fn repair_empty_shards(shards: &mut [Vec<usize>]) {
    loop {
        let empty = match shards.iter().position(Vec::is_empty) {
            Some(i) => i,
            None => return,
        };
        let largest = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
            .expect("at least one shard");
        if shards[largest].len() <= 1 {
            return; // nothing to move without emptying the donor
        }
        let moved = shards[largest].pop().expect("largest shard nonempty");
        shards[empty].push(moved);
    }
}

/// Samples from a symmetric Dirichlet(α) via normalized Gamma draws
/// (Marsaglia–Tsang for shape ≥ 1, boost trick below 1).
fn dirichlet<R: Rng + ?Sized>(k: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| gamma(alpha, rng)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    draws.into_iter().map(|d| d / total).collect()
}

fn gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gaussian64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn gaussian64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn shuffle<R: Rng + ?Sized>(v: &mut [usize], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockfed_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn balanced_dataset(n_per_class: usize, classes: usize) -> Dataset {
        let n = n_per_class * classes;
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(Tensor::zeros(&[n, 2]), labels, classes)
    }

    #[test]
    fn iid_is_an_exact_partition() {
        let ds = balanced_dataset(30, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let shards = partition_dataset(&ds, 3, Partition::Iid, &mut rng);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
        // Equal sizes for IID.
        assert!(shards.iter().all(|s| s.len() == 40));
    }

    #[test]
    fn iid_class_distribution_is_roughly_uniform() {
        let ds = balanced_dataset(100, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let shards = partition_dataset(&ds, 4, Partition::Iid, &mut rng);
        for s in &shards {
            for &c in &s.class_counts() {
                assert!((10..=40).contains(&c), "count {c} far from uniform 25");
            }
        }
    }

    #[test]
    fn dirichlet_low_alpha_skews_labels() {
        let ds = balanced_dataset(100, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let shards = partition_dataset(
            &ds,
            3,
            Partition::DirichletLabelSkew { alpha: 0.1 },
            &mut rng,
        );
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
        // With alpha=0.1 at least one client should be missing (or nearly
        // missing) some class.
        let skewed = shards
            .iter()
            .any(|s| s.class_counts().iter().any(|&c| c < 10));
        assert!(skewed, "expected visible label skew");
    }

    #[test]
    fn dirichlet_high_alpha_approaches_uniform() {
        let ds = balanced_dataset(200, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let shards = partition_dataset(
            &ds,
            2,
            Partition::DirichletLabelSkew { alpha: 100.0 },
            &mut rng,
        );
        for s in &shards {
            for &c in &s.class_counts() {
                assert!((70..=130).contains(&c), "count {c} far from uniform 100");
            }
        }
    }

    #[test]
    fn quantity_skew_varies_sizes() {
        let ds = balanced_dataset(100, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let shards = partition_dataset(&ds, 4, Partition::QuantitySkew { alpha: 0.3 }, &mut rng);
        let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 400);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > min, "expected unequal shard sizes, got {sizes:?}");
    }

    #[test]
    fn no_shard_is_empty() {
        let ds = balanced_dataset(5, 2);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let shards = partition_dataset(
                &ds,
                3,
                Partition::DirichletLabelSkew { alpha: 0.05 },
                &mut rng,
            );
            assert!(shards.iter().all(|s| !s.is_empty()), "seed {seed}");
        }
    }

    #[test]
    fn partition_is_deterministic_given_rng() {
        let ds = balanced_dataset(50, 3);
        let a = partition_dataset(
            &ds,
            3,
            Partition::DirichletLabelSkew { alpha: 0.5 },
            &mut StdRng::seed_from_u64(9),
        );
        let b = partition_dataset(
            &ds,
            3,
            Partition::DirichletLabelSkew { alpha: 0.5 },
            &mut StdRng::seed_from_u64(9),
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    #[should_panic(expected = "client count must be positive")]
    fn zero_clients_panics() {
        let ds = balanced_dataset(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = partition_dataset(&ds, 0, Partition::Iid, &mut rng);
    }

    #[test]
    #[should_panic(expected = "more clients than examples")]
    fn too_many_clients_panics() {
        let ds = balanced_dataset(1, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = partition_dataset(&ds, 5, Partition::Iid, &mut rng);
    }

    #[test]
    fn dirichlet_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(11);
        for &alpha in &[0.1, 0.5, 1.0, 10.0] {
            let w = dirichlet(5, alpha, &mut rng);
            assert_eq!(w.len(), 5);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(12);
        for &shape in &[0.5f64, 1.0, 2.0, 5.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < shape * 0.1,
                "shape {shape}: mean {mean}"
            );
        }
    }
}
