//! The contract runtime wired into the chain: MiniVM bytecode by default,
//! native contracts (the FL registry) at registered addresses.

use std::collections::HashMap;

use blockfed_chain::{CallContext, ContractRuntime, ExecOutcome, State};
use blockfed_crypto::H160;

use crate::interp;
use crate::registry::execute_registry;

/// Marker installed as "code" at native contract addresses so the chain
/// executor recognizes the account as a contract.
pub const NATIVE_REGISTRY_CODE: &[u8] = b"native:blockfed-fl-registry";

/// The production runtime: dispatches to natives, falls back to MiniVM.
#[derive(Debug, Default)]
pub struct BlockfedRuntime {
    natives: HashMap<H160, NativeContract>,
}

/// Kinds of built-in native contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeContract {
    /// The federated-learning registry.
    FlRegistry,
}

impl BlockfedRuntime {
    /// A runtime with no natives (pure MiniVM).
    pub fn new() -> Self {
        BlockfedRuntime::default()
    }

    /// Registers a native contract at an address.
    pub fn register_native(&mut self, addr: H160, contract: NativeContract) {
        self.natives.insert(addr, contract);
    }

    /// Installs the FL registry: marker code in the state (so the executor
    /// treats the account as a contract) and a native dispatch entry here.
    pub fn install_fl_registry(&mut self, state: &mut State, addr: H160) {
        state.set_code(addr, NATIVE_REGISTRY_CODE.to_vec());
        self.register_native(addr, NativeContract::FlRegistry);
    }

    /// Whether an address hosts a native contract.
    pub fn is_native(&self, addr: &H160) -> bool {
        self.natives.contains_key(addr)
    }
}

impl ContractRuntime for BlockfedRuntime {
    fn execute(&mut self, ctx: &CallContext, code: &[u8], state: &mut State) -> ExecOutcome {
        match self.natives.get(&ctx.contract) {
            Some(NativeContract::FlRegistry) => execute_registry(ctx, state),
            None => interp::run(ctx, code, state),
        }
    }

    fn execution_fingerprint(&self) -> u64 {
        // MiniVM semantics plus the registered native set: two instances
        // execute identically iff they dispatch the same natives at the same
        // addresses, so fold each (address, kind) pair in order-independently.
        let mut acc: u64 = 0xB10C_FEED_0000_0001;
        for (addr, native) in &self.natives {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in addr.as_bytes() {
                h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let kind = match native {
                NativeContract::FlRegistry => 1u64,
            };
            acc ^= h.wrapping_mul(kind.wrapping_add(0x9E37_79B9_7F4A_7C15));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::registry::{parse_u64, RegistryCall};

    fn addr(n: u8) -> H160 {
        let mut b = [0u8; 20];
        b[0] = n;
        H160::from_bytes(b)
    }

    fn ctx(caller: H160, contract: H160, calldata: Vec<u8>) -> CallContext {
        CallContext {
            caller,
            contract,
            calldata,
            gas_budget: 1_000_000,
            block_number: 1,
            timestamp_ns: 0,
        }
    }

    #[test]
    fn dispatches_native_registry() {
        let mut rt = BlockfedRuntime::new();
        let mut state = State::new();
        let registry = addr(0xEE);
        rt.install_fl_registry(&mut state, registry);
        assert!(rt.is_native(&registry));
        assert_eq!(state.code(&registry), NATIVE_REGISTRY_CODE.to_vec());

        let out = rt.execute(
            &ctx(addr(1), registry, RegistryCall::Register.encode()),
            NATIVE_REGISTRY_CODE,
            &mut state,
        );
        assert!(out.success);
        assert_eq!(parse_u64(&out.output), Some(0));
    }

    #[test]
    fn falls_back_to_minivm_for_plain_contracts() {
        let mut rt = BlockfedRuntime::new();
        let mut state = State::new();
        let contract = addr(0xCD);
        let code = assemble("PUSH8 40\nPUSH8 2\nADD\nPUSH8 1\nRETURN").unwrap();
        let out = rt.execute(&ctx(addr(1), contract, vec![]), &code, &mut state);
        assert!(out.success);
        assert_eq!(out.output[31], 42);
    }

    /// The same "counter" behaviour implemented (a) as MiniVM bytecode and
    /// (b) directly against storage must agree — the semantic cross-check
    /// described in DESIGN.md.
    #[test]
    fn minivm_counter_matches_native_semantics() {
        // Counter: slot 0 += calldata[0..32] (as a word); returns new value.
        let src = "\
PUSH8 0
SLOAD
PUSH8 0
CALLDATALOAD
ADD
DUP1
PUSH8 0
SSTORE
PUSH8 1
RETURN";
        let code = assemble(src).unwrap();
        let mut rt = BlockfedRuntime::new();
        let mut vm_state = State::new();
        let contract = addr(0x77);

        let mut native_counter: u64 = 0;
        for add in [5u64, 10, 1] {
            let mut calldata = vec![0u8; 32];
            calldata[24..].copy_from_slice(&add.to_be_bytes());
            let out = rt.execute(&ctx(addr(1), contract, calldata), &code, &mut vm_state);
            assert!(out.success);
            native_counter += add; // the "native" implementation
            let mut expect = [0u8; 32];
            expect[24..].copy_from_slice(&native_counter.to_be_bytes());
            assert_eq!(out.output, expect.to_vec(), "after adding {add}");
        }
    }

    #[test]
    fn native_address_shadows_bytecode() {
        let mut rt = BlockfedRuntime::new();
        let mut state = State::new();
        let registry = addr(0xEE);
        rt.install_fl_registry(&mut state, registry);
        // Even if someone hands us bytecode for this address, the native wins.
        let bytecode = assemble("PUSH8 1\nPUSH8 1\nRETURN").unwrap();
        let out = rt.execute(
            &ctx(addr(1), registry, RegistryCall::ParticipantCount.encode()),
            &bytecode,
            &mut state,
        );
        assert!(out.success);
        assert_eq!(parse_u64(&out.output), Some(0));
    }
}
